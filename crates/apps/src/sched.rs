//! Online task scheduling (§VI-C, Fig. 6 right).
//!
//! "Each managed resource has a Python-based monitor utilizing the
//! Intel RAPL energy monitor and psutil ... which is then published to
//! Octopus. The scheduler consumes this information to guide subsequent
//! task placement and to train performance prediction models."
//!
//! [`Resource`] models a compute resource with a RAPL-style power curve
//! (idle watts + utilization × dynamic watts); its monitor publishes
//! telemetry events. [`FaasScheduler`] consumes telemetry, keeps EWMA
//! estimates, and places tasks either round-robin (baseline) or
//! energy-aware (pick the resource with the lowest marginal energy
//! estimate and spare capacity).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use octopus_broker::Cluster;
use octopus_sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
use octopus_types::{Event, OctoResult, Timestamp};

/// A telemetry sample, as published by a resource monitor (~1 KB with
/// headers, Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Resource name.
    pub resource: String,
    /// Instantaneous power draw in watts (RAPL).
    pub watts: f64,
    /// CPU utilization in \[0,1\] (psutil-style).
    pub utilization: f64,
    /// Tasks currently running.
    pub running_tasks: u32,
    /// Capacity in concurrent tasks.
    pub capacity: u32,
    /// Sample time.
    pub timestamp_ms: u64,
}

/// A modelled compute resource with a RAPL-like power curve.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Name.
    pub name: String,
    /// Concurrent task capacity.
    pub capacity: u32,
    /// Idle power draw (watts).
    pub idle_watts: f64,
    /// Additional watts at 100% utilization.
    pub dynamic_watts: f64,
    /// Tasks currently running.
    pub running: u32,
}

impl Resource {
    /// A resource with the given power envelope.
    pub fn new(name: &str, capacity: u32, idle_watts: f64, dynamic_watts: f64) -> Self {
        Resource { name: name.to_string(), capacity, idle_watts, dynamic_watts, running: 0 }
    }

    /// Current utilization.
    pub fn utilization(&self) -> f64 {
        self.running as f64 / self.capacity.max(1) as f64
    }

    /// Current power draw per the RAPL-style model.
    pub fn watts(&self) -> f64 {
        self.idle_watts + self.utilization() * self.dynamic_watts
    }

    /// Marginal power of accepting one more task.
    pub fn marginal_watts(&self) -> f64 {
        self.dynamic_watts / self.capacity.max(1) as f64
    }

    /// Sample telemetry at `now`.
    pub fn sample(&self, now: Timestamp) -> Telemetry {
        Telemetry {
            resource: self.name.clone(),
            watts: self.watts(),
            utilization: self.utilization(),
            running_tasks: self.running,
            capacity: self.capacity,
            timestamp_ms: now.as_millis(),
        }
    }
}

/// A resource-side monitor publishing telemetry to the fabric.
pub struct ResourceMonitor {
    producer: Producer,
    topic: String,
}

impl ResourceMonitor {
    /// Publish to `topic` on `cluster`.
    pub fn new(cluster: Cluster, topic: &str) -> Self {
        ResourceMonitor {
            producer: Producer::new(cluster, ProducerConfig::default()),
            topic: topic.to_string(),
        }
    }

    /// Publish one sample, keyed by resource name.
    pub fn publish(&self, t: &Telemetry) -> OctoResult<()> {
        let event = Event::builder().key(t.resource.clone()).json(t)?.build();
        self.producer.send(&self.topic, event)?;
        Ok(())
    }

    /// Flush buffered telemetry.
    pub fn flush(&self) {
        self.producer.flush();
    }
}

/// Placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Rotate placements regardless of telemetry (baseline).
    RoundRobin,
    /// Lowest marginal energy with spare capacity (telemetry-driven).
    EnergyAware,
}

#[derive(Debug, Clone, Default)]
struct ResourceView {
    watts_ewma: f64,
    utilization_ewma: f64,
    running: u32,
    capacity: u32,
    samples: u64,
    marginal_watts: f64,
}

/// The telemetry-consuming FaaS scheduler.
pub struct FaasScheduler {
    consumer: Consumer,
    views: HashMap<String, ResourceView>,
    policy: SchedulingPolicy,
    rr_counter: usize,
    alpha: f64,
}

impl FaasScheduler {
    /// A scheduler consuming `topic` with the given policy.
    pub fn new(cluster: Cluster, topic: &str, policy: SchedulingPolicy) -> OctoResult<Self> {
        let mut consumer = Consumer::new(
            cluster,
            ConsumerConfig { group: "faas-scheduler".into(), ..Default::default() },
        );
        consumer.subscribe(&[topic])?;
        Ok(FaasScheduler {
            consumer,
            views: HashMap::new(),
            policy,
            rr_counter: 0,
            alpha: 0.3,
        })
    }

    /// Ingest new telemetry ("near real-time insight into the ongoing
    /// power usage of distributed resources"). Returns samples read.
    pub fn sync(&mut self) -> OctoResult<usize> {
        let mut n = 0;
        loop {
            let batch = self.consumer.poll()?;
            if batch.is_empty() {
                break;
            }
            for d in batch {
                let t: Telemetry = d.event.parse()?;
                let dynamic = (t.watts
                    - self.views.get(&t.resource).map(|v| v.watts_ewma).unwrap_or(t.watts))
                .abs();
                let _ = dynamic;
                let view = self.views.entry(t.resource.clone()).or_default();
                if view.samples == 0 {
                    view.watts_ewma = t.watts;
                    view.utilization_ewma = t.utilization;
                } else {
                    view.watts_ewma = self.alpha * t.watts + (1.0 - self.alpha) * view.watts_ewma;
                    view.utilization_ewma =
                        self.alpha * t.utilization + (1.0 - self.alpha) * view.utilization_ewma;
                }
                view.running = t.running_tasks;
                view.capacity = t.capacity;
                view.samples += 1;
                // learn the marginal cost online: watts per running task
                if t.running_tasks > 0 {
                    view.marginal_watts = t.watts / t.running_tasks as f64;
                }
                n += 1;
            }
        }
        Ok(n)
    }

    /// Known resources, sorted.
    pub fn resources(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.keys().cloned().collect();
        v.sort();
        v
    }

    /// Place one task; returns the chosen resource name, or `None` when
    /// nothing has spare capacity.
    pub fn place(&mut self) -> Option<String> {
        let mut candidates: Vec<(&String, &ResourceView)> = self
            .views
            .iter()
            .filter(|(_, v)| v.running < v.capacity)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_by(|a, b| a.0.cmp(b.0));
        let chosen = match self.policy {
            SchedulingPolicy::RoundRobin => {
                let i = self.rr_counter % candidates.len();
                self.rr_counter += 1;
                candidates[i].0.clone()
            }
            SchedulingPolicy::EnergyAware => candidates
                .iter()
                .min_by(|a, b| {
                    let ka = a.1.marginal_watts * (1.0 + a.1.utilization_ewma);
                    let kb = b.1.marginal_watts * (1.0 + b.1.utilization_ewma);
                    ka.partial_cmp(&kb).expect("power figures are finite")
                })
                .expect("non-empty")
                .0
                .clone(),
        };
        // optimistic local bookkeeping until the next telemetry round
        if let Some(v) = self.views.get_mut(&chosen) {
            v.running += 1;
        }
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::TopicConfig;

    fn fleet() -> Vec<Resource> {
        vec![
            Resource::new("edge-pi", 4, 5.0, 10.0),       // frugal, tiny
            Resource::new("campus-node", 32, 80.0, 200.0), // mid
            Resource::new("hpc-node", 128, 300.0, 900.0),  // hungry
        ]
    }

    fn setup(policy: SchedulingPolicy) -> (Vec<Resource>, ResourceMonitor, FaasScheduler) {
        let cluster = Cluster::new(2);
        cluster.create_topic("sched.telemetry", TopicConfig::default()).unwrap();
        let monitor = ResourceMonitor::new(cluster.clone(), "sched.telemetry");
        let sched = FaasScheduler::new(cluster, "sched.telemetry", policy).unwrap();
        (fleet(), monitor, sched)
    }

    fn publish_all(resources: &[Resource], monitor: &ResourceMonitor, t: u64) {
        for r in resources {
            monitor.publish(&r.sample(Timestamp::from_millis(t))).unwrap();
        }
        monitor.flush();
    }

    #[test]
    fn rapl_power_model() {
        let mut r = Resource::new("n", 10, 100.0, 50.0);
        assert_eq!(r.watts(), 100.0);
        r.running = 5;
        assert_eq!(r.utilization(), 0.5);
        assert_eq!(r.watts(), 125.0);
        assert_eq!(r.marginal_watts(), 5.0);
    }

    #[test]
    fn scheduler_learns_fleet_from_telemetry() {
        let (resources, monitor, mut sched) = setup(SchedulingPolicy::EnergyAware);
        publish_all(&resources, &monitor, 0);
        assert_eq!(sched.sync().unwrap(), 3);
        assert_eq!(sched.resources(), vec!["campus-node", "edge-pi", "hpc-node"]);
    }

    #[test]
    fn energy_aware_prefers_frugal_resources() {
        let (mut resources, monitor, mut sched) = setup(SchedulingPolicy::EnergyAware);
        // give the scheduler marginal-cost signal: one task running
        for r in &mut resources {
            r.running = 1;
        }
        publish_all(&resources, &monitor, 0);
        sched.sync().unwrap();
        // edge-pi: 15W @ 1 task; campus: 86W; hpc: 307W → edge first
        assert_eq!(sched.place().as_deref(), Some("edge-pi"));
    }

    #[test]
    fn round_robin_ignores_power() {
        let (mut resources, monitor, mut sched) = setup(SchedulingPolicy::RoundRobin);
        for r in &mut resources {
            r.running = 1;
        }
        publish_all(&resources, &monitor, 0);
        sched.sync().unwrap();
        let placements: Vec<String> = (0..3).filter_map(|_| sched.place()).collect();
        let unique: std::collections::HashSet<&String> = placements.iter().collect();
        assert_eq!(unique.len(), 3, "round robin spreads: {placements:?}");
    }

    #[test]
    fn capacity_is_respected() {
        let (mut resources, monitor, mut sched) = setup(SchedulingPolicy::EnergyAware);
        // tiny fleet: only edge-pi, with capacity 4, already 3 running
        resources.truncate(1);
        resources[0].running = 3;
        publish_all(&resources, &monitor, 0);
        sched.sync().unwrap();
        assert!(sched.place().is_some()); // 4th slot
        assert!(sched.place().is_none(), "no capacity left");
    }

    #[test]
    fn energy_aware_beats_round_robin_on_total_watts() {
        // place 8 tasks with each policy and compare modelled power
        let run = |policy| {
            let (mut resources, monitor, mut sched) = setup(policy);
            for r in &mut resources {
                r.running = 1; // seed marginal estimates
            }
            publish_all(&resources, &monitor, 0);
            sched.sync().unwrap();
            for _ in 0..8 {
                if let Some(name) = sched.place() {
                    let r = resources.iter_mut().find(|r| r.name == name).expect("known");
                    r.running += 1;
                }
            }
            resources.iter().map(|r| r.watts()).sum::<f64>()
        };
        let rr = run(SchedulingPolicy::RoundRobin);
        let ea = run(SchedulingPolicy::EnergyAware);
        assert!(ea < rr, "energy-aware {ea}W should beat round-robin {rr}W");
    }

    #[test]
    fn newer_telemetry_updates_views() {
        let (mut resources, monitor, mut sched) = setup(SchedulingPolicy::EnergyAware);
        publish_all(&resources, &monitor, 0);
        sched.sync().unwrap();
        // saturate edge-pi
        resources[0].running = 4;
        publish_all(&resources, &monitor, 1000);
        sched.sync().unwrap();
        // the frugal node is full → placement must go elsewhere
        let choice = sched.place().unwrap();
        assert_ne!(choice, "edge-pi");
    }
}
