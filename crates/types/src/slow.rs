//! A bounded slow-request ring: the slowest N requests per api key.
//!
//! The wire server observes every completed request here; the ring
//! keeps only the slowest `cap` per api key, so an operator asking
//! "what was slow?" gets concrete offenders — correlation id, trace id
//! (when the request carried the frame trace extension), and the
//! wall-clock moment — instead of a histogram tail with no names.
//! Surfaced over OWS as `GET /wire/slow`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// One slow request the ring retained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowRequest {
    /// Api key name (e.g. `"produce"`).
    pub api: String,
    /// Correlation id the client sent (matches client-side logs).
    pub correlation_id: u64,
    /// Trace id from the frame trace extension, when the request
    /// carried one — links the entry to the distributed trace.
    pub trace_id: Option<u64>,
    /// Total server-side handling time (decode→encode), microseconds.
    pub total_us: u64,
    /// Wall-clock nanoseconds when the request completed.
    pub at_ns: u64,
}

/// Default retained entries per api key.
pub const DEFAULT_SLOW_RING_CAP: usize = 8;

/// Bounded per-api-key ring of the slowest requests observed.
///
/// `observe` is O(cap) under one mutex — the wire path it instruments
/// is dominated by socket and dispatch costs, so the lock is not a
/// contention concern. Entries are kept sorted slowest-first.
#[derive(Debug)]
pub struct SlowRequestRing {
    per_api: Mutex<BTreeMap<String, Vec<SlowRequest>>>,
    cap: usize,
}

impl Default for SlowRequestRing {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_RING_CAP)
    }
}

impl SlowRequestRing {
    /// A ring retaining the slowest `cap` requests per api key.
    pub fn new(cap: usize) -> Self {
        SlowRequestRing { per_api: Mutex::new(BTreeMap::new()), cap: cap.max(1) }
    }

    /// Record one completed request; retained only if it ranks among
    /// the slowest `cap` seen for its api key.
    pub fn observe(&self, entry: SlowRequest) {
        let mut map = self.per_api.lock().unwrap_or_else(|e| e.into_inner());
        let ring = map.entry(entry.api.clone()).or_default();
        // fast reject: full ring and slower-than-us tail
        if ring.len() >= self.cap {
            if let Some(tail) = ring.last() {
                if tail.total_us >= entry.total_us {
                    return;
                }
            }
        }
        let at = ring.partition_point(|e| e.total_us >= entry.total_us);
        ring.insert(at, entry);
        ring.truncate(self.cap);
    }

    /// Every retained entry, grouped by api key (keys sorted), each
    /// group slowest-first.
    pub fn snapshot(&self) -> Vec<SlowRequest> {
        let map = self.per_api.lock().unwrap_or_else(|e| e.into_inner());
        map.values().flat_map(|ring| ring.iter().cloned()).collect()
    }

    /// Total retained entries across all api keys.
    pub fn len(&self) -> usize {
        let map = self.per_api.lock().unwrap_or_else(|e| e.into_inner());
        map.values().map(Vec::len).sum()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(api: &str, corr: u64, us: u64) -> SlowRequest {
        SlowRequest {
            api: api.to_string(),
            correlation_id: corr,
            trace_id: None,
            total_us: us,
            at_ns: corr * 10,
        }
    }

    #[test]
    fn keeps_only_the_slowest_per_api() {
        let ring = SlowRequestRing::new(3);
        for (corr, us) in [(1, 50), (2, 10), (3, 90), (4, 70), (5, 5), (6, 80)] {
            ring.observe(req("produce", corr, us));
        }
        let snap = ring.snapshot();
        let us: Vec<u64> = snap.iter().map(|e| e.total_us).collect();
        assert_eq!(us, vec![90, 80, 70], "slowest three, slowest-first");
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn api_keys_are_independent_rings() {
        let ring = SlowRequestRing::new(2);
        ring.observe(req("produce", 1, 100));
        ring.observe(req("produce", 2, 200));
        ring.observe(req("produce", 3, 300));
        ring.observe(req("fetch", 4, 1));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        // BTreeMap ordering: fetch before produce
        assert_eq!(snap[0].api, "fetch");
        assert_eq!(snap[0].total_us, 1, "a fast fetch survives next to slow produces");
        assert_eq!(snap[1].total_us, 300);
        assert_eq!(snap[2].total_us, 200);
    }

    #[test]
    fn trace_ids_survive_the_ring() {
        let ring = SlowRequestRing::default();
        ring.observe(SlowRequest {
            api: "produce".into(),
            correlation_id: 9,
            trace_id: Some(42),
            total_us: 17,
            at_ns: 1,
        });
        let snap = ring.snapshot();
        assert_eq!(snap[0].trace_id, Some(42));
        let json = serde_json::to_string(&snap).unwrap();
        let back: Vec<SlowRequest> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let ring = SlowRequestRing::new(0);
        ring.observe(req("produce", 1, 10));
        ring.observe(req("produce", 2, 20));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot()[0].total_us, 20);
    }
}
