//! The monitoring seam and its two implementations.
//!
//! Fig. 8 compares per-event monitoring overhead of the stock HTEX
//! monitor ("record them in a centralized database") against the
//! Octopus monitor ("improved scalability with Octopus due to its
//! ability to batch events and publish them asynchronously"). The
//! [`Monitor`] trait is called inline by workers, so a slow backend
//! directly extends the makespan — exactly the effect the figure plots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_sdk::{Producer, ProducerConfig};
use octopus_types::{Event, Timestamp};

/// One monitoring record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorEvent {
    /// Workflow run id.
    pub run: String,
    /// Task name.
    pub task: String,
    /// Worker index that executed it.
    pub worker: usize,
    /// Lifecycle phase: `launched`, `running`, `done`, `failed`.
    pub phase: String,
    /// Event time.
    pub timestamp: Timestamp,
}

/// A monitoring backend. Called synchronously by workers.
pub trait Monitor: Send + Sync {
    /// Record one event.
    fn record(&self, event: MonitorEvent);
    /// Events recorded so far.
    fn count(&self) -> u64;
    /// Block until buffered events are durable/visible.
    fn flush(&self) {}
}

/// No-op monitor (for measuring the monitor-free baseline makespan).
#[derive(Default)]
pub struct NullMonitor {
    n: AtomicU64,
}

impl NullMonitor {
    /// A fresh null monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Monitor for NullMonitor {
    fn record(&self, _event: MonitorEvent) {
        self.n.fetch_add(1, Ordering::Relaxed);
    }
    fn count(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}

/// The HTEX baseline: synchronous writes into a centralized, serialized
/// store. `write_cost` models the per-row commit latency of the central
/// database; the global lock models its single write head.
pub struct DbMonitor {
    rows: Mutex<Vec<MonitorEvent>>,
    write_cost: Duration,
    n: AtomicU64,
}

impl DbMonitor {
    /// A database whose commits take `write_cost` each.
    pub fn new(write_cost: Duration) -> Self {
        DbMonitor { rows: Mutex::new(Vec::new()), write_cost, n: AtomicU64::new(0) }
    }

    /// All recorded rows (test inspection).
    pub fn rows(&self) -> Vec<MonitorEvent> {
        self.rows.lock().clone()
    }
}

impl Monitor for DbMonitor {
    fn record(&self, event: MonitorEvent) {
        // the lock is held across the commit: concurrent workers
        // serialize on the central database, the scalability wall the
        // paper attributes to the stock monitor
        let mut rows = self.rows.lock();
        if !self.write_cost.is_zero() {
            std::thread::sleep(self.write_cost);
        }
        rows.push(event);
        self.n.fetch_add(1, Ordering::Relaxed);
    }

    fn count(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}

/// The Octopus monitor: events are handed to a batching producer and
/// published asynchronously; the worker only pays the enqueue cost.
pub struct OctopusMonitor {
    producer: Producer,
    topic: String,
    n: AtomicU64,
}

impl OctopusMonitor {
    /// Publish monitoring events to `topic` on `cluster`.
    pub fn new(cluster: octopus_broker::Cluster, topic: &str) -> Self {
        let producer = Producer::new(
            cluster,
            ProducerConfig {
                linger: Duration::from_millis(2),
                buffer_memory: 4 * 1024 * 1024,
                ..ProducerConfig::default()
            },
        );
        OctopusMonitor { producer, topic: topic.to_string(), n: AtomicU64::new(0) }
    }
}

impl Monitor for OctopusMonitor {
    fn record(&self, event: MonitorEvent) {
        let e = Event::builder()
            .key(event.run.clone())
            .json(&event)
            .expect("monitor events serialize")
            .timestamp(event.timestamp)
            .build();
        // fire-and-forget: delivery reports are dropped; at-least-once
        // delivery comes from producer retries
        let _ = self.producer.send(&self.topic, e);
        self.n.fetch_add(1, Ordering::Relaxed);
    }

    fn count(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }

    fn flush(&self) {
        self.producer.flush();
    }
}

/// Shared-reference alias used by the executor.
pub type SharedMonitor = Arc<dyn Monitor>;

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::{Cluster, TopicConfig};

    fn ev(task: &str) -> MonitorEvent {
        MonitorEvent {
            run: "r1".into(),
            task: task.into(),
            worker: 0,
            phase: "done".into(),
            timestamp: Timestamp::from_millis(1),
        }
    }

    #[test]
    fn null_monitor_counts() {
        let m = NullMonitor::new();
        m.record(ev("a"));
        m.record(ev("b"));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn db_monitor_stores_rows_in_order() {
        let m = DbMonitor::new(Duration::ZERO);
        m.record(ev("a"));
        m.record(ev("b"));
        assert_eq!(m.count(), 2);
        let rows = m.rows();
        assert_eq!(rows[0].task, "a");
        assert_eq!(rows[1].task, "b");
    }

    #[test]
    fn db_monitor_serializes_writers() {
        let m = Arc::new(DbMonitor::new(Duration::from_millis(2)));
        let start = std::time::Instant::now();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    m.record(ev("x"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 20 writes at 2ms, serialized: at least 40ms of wall time
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert_eq!(m.count(), 20);
    }

    #[test]
    fn octopus_monitor_publishes_to_fabric() {
        let cluster = Cluster::new(2);
        cluster.create_topic("parsl.monitoring", TopicConfig::default()).unwrap();
        let m = OctopusMonitor::new(cluster.clone(), "parsl.monitoring");
        for i in 0..10 {
            m.record(ev(&format!("t{i}")));
        }
        m.flush();
        assert_eq!(m.count(), 10);
        let total: usize = (0..2)
            .map(|p| cluster.fetch("parsl.monitoring", p, 0, 100).unwrap().len())
            .sum();
        assert_eq!(total, 10);
    }
}
