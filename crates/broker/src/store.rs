//! The durable storage engine: on-disk segmented logs, flush policies,
//! crash/power-loss recovery, and offset checkpoints.
//!
//! The paper's durability story rests on Kafka/MSK's persistent commit
//! log (§IV): topics are replicated, acks-governed, and configured with
//! retention/compaction, and the event log *outlives process crashes*.
//! This module gives [`crate::PartitionLog`] that property: each
//! partition is persisted as Kafka-style segment files under a data
//! directory, one file per segment, named by base offset
//! (`00000000000000000000.seg`).
//!
//! # On-disk frame format
//!
//! Each record is one self-describing frame:
//!
//! ```text
//! +------+-----------+-----------+------------------+
//! | 0xA7 | len: u32  | crc: u32  | payload (len B)  |
//! +------+-----------+-----------+------------------+
//! ```
//!
//! `crc` is CRC32C over the payload bytes ([`crc32c`], the same
//! Castagnoli checksum Kafka stamps on record batches). The payload is a
//! fixed little-endian encoding of the [`Record`] — offset, timestamps,
//! the record-level CRC, key, value, and headers — so recovery can
//! detect both torn frames (length overruns the file, frame CRC
//! mismatch) and bit rot inside an intact frame (record CRC mismatch).
//!
//! # Recovery
//!
//! [`PartitionStore::recover`] scans segment files in base-offset order
//! and walks frames until the first framing error, CRC mismatch, or
//! offset-monotonicity violation; everything from that point on is
//! truncated (the disk generalisation of
//! [`crate::PartitionLog::verify_and_truncate`]). Later segment files
//! after a truncation point are deleted — once the tail is torn, nothing
//! beyond it can be trusted.
//!
//! # Flush policies
//!
//! Writes always reach the file (a `write(2)` per record as part of the
//! batch append); [`FlushPolicy`] only governs *fsync* — the boundary
//! that matters under power loss. Segment rolls always fsync the closed
//! file, so only the active segment's unflushed suffix is ever at risk.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_types::obs::{AtomicHistogram, Counter, MetricsRegistry};
use octopus_types::{Header, OctoResult, Offset, Timestamp};

use crate::record::{crc32c, ControlMarker, Record, RecordEos};
use bytes::Bytes;
use std::sync::Arc;

/// Frame lead-in byte; anything else at a frame boundary is a torn tail.
const FRAME_MAGIC: u8 = 0xA7;
/// Magic + length + frame CRC.
const FRAME_HEADER: usize = 1 + 4 + 4;
/// Key-length sentinel for records without a key.
const NO_KEY: u32 = u32::MAX;

/// When (not whether) appended records are fsync'd to stable storage.
///
/// Every append is written to the segment file immediately; the policy
/// decides how much of the suffix a power loss may tear off:
///
/// * [`FlushPolicy::PerBatch`] — `fsync` after every produced batch.
///   acks=all records are on stable storage before the producer is
///   acknowledged; power loss loses nothing committed.
/// * [`FlushPolicy::IntervalMs`] — `fsync` at most every `n` ms of
///   appends. Power loss may tear up to one interval's worth of tail.
/// * [`FlushPolicy::OsManaged`] — never fsync explicitly (Kafka's
///   default posture: trust replication, let the OS write back).
///   Power loss may tear the whole unflushed suffix of the active
///   segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushPolicy {
    /// fsync after every appended batch (strongest, slowest).
    #[default]
    PerBatch,
    /// fsync when at least this many milliseconds passed since the last.
    IntervalMs(u64),
    /// Never fsync explicitly; the OS page cache decides (weakest).
    OsManaged,
}

/// Counters and histograms the storage engine publishes to the shared
/// [`MetricsRegistry`] (`octopus_store_*` family).
#[derive(Clone)]
pub struct StoreMetrics {
    flush_ns: Arc<AtomicHistogram>,
    flushes: Arc<Counter>,
    bytes_written: Arc<Counter>,
    records_recovered: Arc<Counter>,
    records_truncated: Arc<Counter>,
    bytes_truncated: Arc<Counter>,
    checkpoints_written: Arc<Counter>,
    checkpoint_offsets_restored: Arc<Counter>,
}

impl StoreMetrics {
    /// Register (or re-attach to) the `octopus_store_*` instruments.
    pub fn new(registry: &MetricsRegistry) -> Self {
        StoreMetrics {
            flush_ns: registry.histogram("octopus_store_flush_ns"),
            flushes: registry.counter("octopus_store_flushes_total"),
            bytes_written: registry.counter("octopus_store_bytes_written_total"),
            records_recovered: registry.counter("octopus_store_records_recovered_total"),
            records_truncated: registry.counter("octopus_store_records_truncated_total"),
            bytes_truncated: registry.counter("octopus_store_bytes_truncated_total"),
            checkpoints_written: registry.counter("octopus_store_checkpoints_written_total"),
            checkpoint_offsets_restored: registry
                .counter("octopus_store_checkpoint_offsets_restored_total"),
        }
    }

    /// Total fsyncs issued by this registry's stores.
    pub fn flush_count(&self) -> u64 {
        self.flushes.get()
    }
}

impl std::fmt::Debug for StoreMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreMetrics").field("flushes", &self.flushes.get()).finish()
    }
}

/// What a recovery scan found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Segment files scanned (surviving files, not deleted ones).
    pub segments_scanned: u64,
    /// Records whose frames were complete and CRC-clean.
    pub records_recovered: u64,
    /// Decodable records dropped because they sat beyond a torn frame
    /// (the undecodable torn tail itself is counted in bytes only).
    pub records_truncated: u64,
    /// Raw bytes removed from disk (torn tails + orphaned segments).
    pub bytes_truncated: u64,
}

impl RecoveryStats {
    /// Accumulate another scan's results into this one.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.segments_scanned += other.segments_scanned;
        self.records_recovered += other.records_recovered;
        self.records_truncated += other.records_truncated;
        self.bytes_truncated += other.bytes_truncated;
    }
}

// ---------------------------------------------------------------------------
// frame codec
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append `rec` to `out` as one framed record.
pub(crate) fn encode_frame(rec: &Record, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(rec.wire_size() + 64);
    put_u64(&mut payload, rec.offset);
    put_u64(&mut payload, rec.append_time.as_millis());
    put_u64(&mut payload, rec.producer_time.as_millis());
    put_u32(&mut payload, rec.crc);
    match &rec.key {
        None => put_u32(&mut payload, NO_KEY),
        Some(k) => {
            put_u32(&mut payload, k.len() as u32);
            payload.extend_from_slice(k);
        }
    }
    put_u32(&mut payload, rec.value.len() as u32);
    payload.extend_from_slice(&rec.value);
    put_u32(&mut payload, rec.headers.len() as u32);
    for h in &rec.headers {
        put_u32(&mut payload, h.key.len() as u32);
        payload.extend_from_slice(h.key.as_bytes());
        put_u32(&mut payload, h.value.len() as u32);
        payload.extend_from_slice(&h.value);
    }
    // Optional trailing EOS section (pid, epoch, seq, flags). Absent for
    // plain records, so frames written before EOS existed — which end
    // exactly at the last header — still decode.
    if let Some(eos) = &rec.eos {
        put_u64(&mut payload, eos.pid);
        put_u32(&mut payload, eos.epoch);
        put_u64(&mut payload, eos.seq);
        let mut flags = 0u8;
        if eos.txn {
            flags |= 0x01;
        }
        match eos.control {
            None => {}
            Some(ControlMarker::Commit) => flags |= 0x02,
            Some(ControlMarker::Abort) => flags |= 0x02 | 0x04,
        }
        payload.push(flags);
    }
    out.push(FRAME_MAGIC);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32c(&payload));
    out.extend_from_slice(&payload);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Decode one frame payload back into a [`Record`]. `None` on any
/// structural mismatch (the caller treats it as a torn tail).
pub(crate) fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let offset = c.u64()?;
    let append_time = Timestamp::from_millis(c.u64()?);
    let producer_time = Timestamp::from_millis(c.u64()?);
    let crc = c.u32()?;
    let key = match c.u32()? {
        NO_KEY => None,
        n => Some(Bytes::copy_from_slice(c.take(n as usize)?)),
    };
    let vlen = c.u32()?;
    let value = Bytes::copy_from_slice(c.take(vlen as usize)?);
    let header_count = c.u32()?;
    let mut headers = Vec::with_capacity(header_count.min(64) as usize);
    for _ in 0..header_count {
        let klen = c.u32()?;
        let hkey = String::from_utf8(c.take(klen as usize)?.to_vec()).ok()?;
        let hvlen = c.u32()?;
        headers.push(Header { key: hkey, value: c.take(hvlen as usize)?.to_vec() });
    }
    // Frames written before EOS existed end exactly at the last header;
    // stamped frames carry a 21-byte trailer (pid, epoch, seq, flags).
    let eos = if c.pos == payload.len() {
        None
    } else {
        let pid = c.u64()?;
        let epoch = c.u32()?;
        let seq = c.u64()?;
        let flags = *c.take(1)?.first()?;
        if c.pos != payload.len() || flags & !0x07 != 0 {
            return None;
        }
        let control = if flags & 0x02 != 0 {
            Some(if flags & 0x04 != 0 { ControlMarker::Abort } else { ControlMarker::Commit })
        } else {
            None
        };
        Some(RecordEos { pid, epoch, seq, txn: flags & 0x01 != 0, control })
    };
    Some(Record { offset, append_time, key, value, headers, producer_time, crc, eos })
}

// ---------------------------------------------------------------------------
// segment scanning
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Frame {
    offset: Offset,
    /// Byte position just past this frame within its segment file.
    end: u64,
}

#[derive(Debug, Clone)]
struct StoreSegment {
    base: Offset,
    frames: Vec<Frame>,
    len: u64,
}

fn seg_path(dir: &Path, base: Offset) -> PathBuf {
    dir.join(format!("{base:020}.seg"))
}

/// Walk frames from the start of `bytes`, stopping at the first framing
/// error, frame-CRC or record-CRC mismatch, or non-increasing offset.
/// Returns the clean frames, their records, and the clean byte length.
fn scan_bytes(bytes: &[u8], mut last_offset: Option<Offset>) -> (Vec<Frame>, Vec<Record>, u64) {
    let mut frames = Vec::new();
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos + FRAME_HEADER > bytes.len() || bytes[pos] != FRAME_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().expect("4 bytes"));
        let Some(end) = pos.checked_add(FRAME_HEADER + len) else { break };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..end];
        if crc32c(payload) != crc {
            break;
        }
        let Some(rec) = decode_payload(payload) else { break };
        if !rec.verify() {
            break;
        }
        if let Some(prev) = last_offset {
            if rec.offset <= prev {
                break;
            }
        }
        last_offset = Some(rec.offset);
        pos = end;
        frames.push(Frame { offset: rec.offset, end: pos as u64 });
        records.push(rec);
    }
    (frames, records, pos as u64)
}

struct Scanned {
    segments: Vec<StoreSegment>,
    records: Vec<(Offset, Vec<Record>)>,
    stats: RecoveryStats,
}

/// Scan a partition directory: delete compaction temp files, walk
/// segment files in base-offset order, truncate the first torn tail in
/// place, and delete every file beyond it.
fn scan_dir(dir: &Path) -> OctoResult<Scanned> {
    let mut bases: Vec<Offset> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("tmp") => fs::remove_file(&path)?,
            Some("seg") => {
                if let Some(base) = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.parse::<Offset>().ok())
                {
                    bases.push(base);
                }
            }
            _ => {}
        }
    }
    bases.sort_unstable();
    let mut out = Scanned { segments: Vec::new(), records: Vec::new(), stats: RecoveryStats::default() };
    let mut last_offset: Option<Offset> = None;
    let mut broken = false;
    for base in bases {
        let path = seg_path(dir, base);
        let bytes = fs::read(&path)?;
        if broken {
            // continuity is already lost: count what was decodable, drop the file
            let (_, recs, _) = scan_bytes(&bytes, None);
            out.stats.records_truncated += recs.len() as u64;
            out.stats.bytes_truncated += bytes.len() as u64;
            fs::remove_file(&path)?;
            continue;
        }
        let (frames, recs, good_len) = scan_bytes(&bytes, last_offset);
        out.stats.segments_scanned += 1;
        out.stats.records_recovered += recs.len() as u64;
        if (good_len as usize) < bytes.len() {
            broken = true;
            out.stats.bytes_truncated += bytes.len() as u64 - good_len;
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(good_len)?;
            f.sync_data()?;
        }
        if let Some(r) = recs.last() {
            last_offset = Some(r.offset);
        }
        out.segments.push(StoreSegment { base, frames, len: good_len });
        out.records.push((base, recs));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// group-commit sync gate
// ---------------------------------------------------------------------------

/// Group-commit gate for one partition's active segment.
///
/// `written` and `synced` are *monotonic* byte counters over the store's
/// whole life: a byte is counted in `written` once its `write(2)` into
/// the active file has returned, and in `synced` once some fsync (or an
/// equivalent durable rewrite) is known to cover it. Segment rolls and
/// truncations settle the counters rather than resetting them, so a
/// ticket's target stays meaningful across segment changes.
///
/// The gate lets any number of waiters share each fsync: the first
/// waiter to arrive while no sync is in flight performs one `sync_data`
/// covering every byte written up to that instant; everyone whose target
/// that covers rides along without issuing their own.
#[derive(Debug)]
struct SyncGate {
    written: AtomicU64,
    synced: AtomicU64,
    state: StdMutex<GateState>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    /// Append handle on the active segment file (lazily opened). Shared
    /// so a waiter can fsync it without holding the store.
    file: Option<Arc<File>>,
    /// Whether some waiter currently has an fsync in flight.
    syncing: bool,
}

impl SyncGate {
    fn new() -> Arc<Self> {
        Arc::new(SyncGate {
            written: AtomicU64::new(0),
            synced: AtomicU64::new(0),
            state: StdMutex::new(GateState::default()),
            done: Condvar::new(),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mark everything written so far as durable and wake waiters. Call
    /// only after the disk state has been made consistent through some
    /// other fsynced path (roll, truncation, rewrite, recovery).
    fn settle(&self) {
        self.synced.fetch_max(self.written.load(Ordering::Acquire), Ordering::AcqRel);
        self.done.notify_all();
    }

    /// Drop the active file handle (segment rolled, truncated, or
    /// rewritten); the next append reopens lazily.
    fn detach_file(&self) {
        self.lock_state().file = None;
    }

    fn unflushed(&self) -> u64 {
        self.written.load(Ordering::Acquire).saturating_sub(self.synced.load(Ordering::Acquire))
    }

    /// Block until every byte up to `target` is on stable storage,
    /// issuing at most one fsync per uncovered window.
    fn sync_to(&self, target: u64, metrics: &StoreMetrics) -> OctoResult<()> {
        if self.synced.load(Ordering::Acquire) >= target {
            return Ok(());
        }
        let mut st = self.lock_state();
        loop {
            if self.synced.load(Ordering::Acquire) >= target {
                return Ok(());
            }
            if st.syncing {
                st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.syncing = true;
            let file = st.file.clone();
            drop(st);
            // Every byte counted in `written` at this point has
            // completed its write into `file` (appends bump the counter
            // only after write_all returns), so one fsync covers all of
            // them — including batches from producers that appended
            // while a previous fsync was in flight.
            let cover = self.written.load(Ordering::Acquire);
            let res: OctoResult<()> = match &file {
                Some(f) => {
                    let t = Instant::now();
                    match f.sync_data() {
                        Ok(()) => {
                            metrics.flush_ns.record(t.elapsed().as_nanos() as u64);
                            metrics.flushes.inc();
                            Ok(())
                        }
                        Err(e) => Err(e.into()),
                    }
                }
                // no file yet: nothing written since the segment was
                // (re)opened, so everything counted is already durable
                None => Ok(()),
            };
            st = self.lock_state();
            st.syncing = false;
            if res.is_ok() {
                self.synced.fetch_max(cover, Ordering::AcqRel);
            }
            self.done.notify_all();
            res?;
        }
    }
}

/// A claim ticket from [`PartitionStore::commit_batch_ticket`]: the
/// batch has been written to the segment file but not yet fsynced.
/// [`SyncTicket::wait`] blocks until an fsync covers it — possibly one
/// issued by a concurrent producer (group commit). Wait *after*
/// releasing the partition lock, or the group collapses back to one
/// fsync per lock holder.
#[derive(Debug)]
pub struct SyncTicket {
    gate: Arc<SyncGate>,
    target: u64,
    metrics: StoreMetrics,
}

impl SyncTicket {
    /// Block until the ticket's batch is on stable storage.
    pub fn wait(&self) -> OctoResult<()> {
        self.gate.sync_to(self.target, &self.metrics)
    }
}

// ---------------------------------------------------------------------------
// PartitionStore
// ---------------------------------------------------------------------------

/// The durable half of one partition: segment files in a directory plus
/// the bookkeeping needed to append, fsync per policy, and recover.
pub struct PartitionStore {
    dir: PathBuf,
    policy: FlushPolicy,
    metrics: StoreMetrics,
    segments: Vec<StoreSegment>,
    /// Active-file handle plus the written/synced ledger shared with
    /// outstanding [`SyncTicket`]s.
    gate: Arc<SyncGate>,
    last_sync: Instant,
    /// Set by [`PartitionStore::power_loss`]; appends are refused until
    /// [`PartitionStore::recover`] has rebuilt state from disk.
    needs_recovery: bool,
}

/// What a recovery scan yields: each surviving segment's records,
/// keyed by the segment's base offset, in offset order.
pub type RecoveredSegments = Vec<(Offset, Vec<Record>)>;

impl std::fmt::Debug for PartitionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionStore")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("segments", &self.segments.len())
            .finish()
    }
}

impl PartitionStore {
    /// Open (creating if needed) the store for one partition, running
    /// recovery on whatever the directory holds. Returns the store, the
    /// recovered segments as `(base_offset, records)`, and scan stats.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FlushPolicy,
        metrics: StoreMetrics,
    ) -> OctoResult<(Self, RecoveredSegments, RecoveryStats)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = PartitionStore {
            dir,
            policy,
            metrics,
            segments: Vec::new(),
            gate: SyncGate::new(),
            last_sync: Instant::now(),
            needs_recovery: false,
        };
        let (records, stats) = store.recover()?;
        Ok((store, records, stats))
    }

    /// The directory this partition persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Re-scan the directory from scratch (crash recovery / reopen).
    /// Truncates the torn tail on disk and returns the surviving
    /// segments plus stats. Clears any power-loss poisoning.
    pub fn recover(&mut self) -> OctoResult<(RecoveredSegments, RecoveryStats)> {
        self.gate.detach_file();
        let scanned = scan_dir(&self.dir)?;
        self.metrics.records_recovered.add(scanned.stats.records_recovered);
        self.metrics.records_truncated.add(scanned.stats.records_truncated);
        self.metrics.bytes_truncated.add(scanned.stats.bytes_truncated);
        self.segments = scanned.segments;
        self.gate.settle();
        self.needs_recovery = false;
        self.last_sync = Instant::now();
        Ok((scanned.records, scanned.stats))
    }

    fn writer(&mut self) -> OctoResult<Arc<File>> {
        let mut st = self.gate.lock_state();
        if st.file.is_none() {
            let base = self.segments.last().expect("active segment exists").base;
            let f = OpenOptions::new()
                .append(true)
                .create(true)
                .open(seg_path(&self.dir, base))?;
            st.file = Some(Arc::new(f));
        }
        Ok(Arc::clone(st.file.as_ref().expect("just opened")))
    }

    /// Start a new segment at `base`, fsyncing and closing the previous
    /// one (closed segments are always durable).
    fn roll_to(&mut self, base: Offset) -> OctoResult<()> {
        if !self.segments.is_empty() {
            self.sync()?;
        }
        self.gate.detach_file();
        self.segments.push(StoreSegment { base, frames: Vec::new(), len: 0 });
        Ok(())
    }

    /// Append one record into the segment whose base offset is
    /// `seg_base` (mirroring the in-memory roll decision).
    pub fn append(&mut self, rec: &Record, seg_base: Offset) -> OctoResult<()> {
        if self.needs_recovery {
            return Err(octopus_types::OctoError::Io(
                "store lost power; recover() before appending".into(),
            ));
        }
        if self.segments.last().map(|s| s.base) != Some(seg_base) {
            self.roll_to(seg_base)?;
        }
        let mut frame = Vec::new();
        encode_frame(rec, &mut frame);
        let file = self.writer()?;
        (&*file).write_all(&frame)?;
        let seg = self.segments.last_mut().expect("rolled above");
        seg.len += frame.len() as u64;
        seg.frames.push(Frame { offset: rec.offset, end: seg.len });
        self.metrics.bytes_written.add(frame.len() as u64);
        // counted only after write_all returned: the gate relies on
        // `written` bytes being in the file before any covering fsync
        self.gate.written.fetch_add(frame.len() as u64, Ordering::AcqRel);
        Ok(())
    }

    /// Apply the flush policy at a batch boundary.
    pub fn commit_batch(&mut self) -> OctoResult<()> {
        match self.policy {
            FlushPolicy::PerBatch => self.sync(),
            FlushPolicy::IntervalMs(ms) => {
                if self.gate.unflushed() > 0 && self.last_sync.elapsed().as_millis() as u64 >= ms {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FlushPolicy::OsManaged => Ok(()),
        }
    }

    /// Like [`PartitionStore::commit_batch`], but under
    /// [`FlushPolicy::PerBatch`] the fsync is deferred to the returned
    /// ticket so the caller can wait for it after releasing the
    /// partition lock — concurrent producers then share fsyncs (group
    /// commit) instead of serializing them. Other policies behave
    /// exactly like `commit_batch` and never return a ticket.
    pub fn commit_batch_ticket(&mut self) -> OctoResult<Option<SyncTicket>> {
        match self.policy {
            FlushPolicy::PerBatch => {
                let target = self.gate.written.load(Ordering::Acquire);
                if self.gate.synced.load(Ordering::Acquire) >= target {
                    return Ok(None);
                }
                Ok(Some(SyncTicket {
                    gate: Arc::clone(&self.gate),
                    target,
                    metrics: self.metrics.clone(),
                }))
            }
            _ => self.commit_batch().map(|()| None),
        }
    }

    /// Force an fsync of the active segment (a no-op when every written
    /// byte is already covered).
    pub fn sync(&mut self) -> OctoResult<()> {
        let target = self.gate.written.load(Ordering::Acquire);
        self.gate.sync_to(target, &self.metrics)?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Drop every frame with `offset >= end` from disk (append
    /// rollback after a write-through failure).
    pub fn truncate_to(&mut self, end: Offset) -> OctoResult<()> {
        let mut changed = false;
        while let Some(seg) = self.segments.last() {
            if seg.base < end {
                break;
            }
            let path = seg_path(&self.dir, seg.base);
            self.gate.detach_file();
            // the file may not exist if the roll never wrote a frame
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            self.segments.pop();
            changed = true;
        }
        if let Some(seg) = self.segments.last_mut() {
            let keep = seg.frames.partition_point(|f| f.offset < end);
            if keep < seg.frames.len() {
                let cut = if keep == 0 { 0 } else { seg.frames[keep - 1].end };
                seg.frames.truncate(keep);
                seg.len = cut;
                self.gate.detach_file();
                let f = OpenOptions::new().write(true).open(seg_path(&self.dir, seg.base))?;
                f.set_len(cut)?;
                f.sync_data()?;
                changed = true;
            }
        }
        if changed {
            // every surviving byte was fsynced (closed segments at roll,
            // the trimmed tail just now); tickets for truncated bytes
            // must not wait for an fsync that will never cover them
            self.gate.settle();
        }
        Ok(())
    }

    /// Delete the frontmost segment file (retention).
    pub fn remove_front_segment(&mut self, base: Offset) -> OctoResult<()> {
        let Some(first) = self.segments.first() else { return Ok(()) };
        if first.base != base {
            return Ok(());
        }
        let path = seg_path(&self.dir, base);
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        self.segments.remove(0);
        if self.segments.is_empty() {
            self.gate.detach_file();
        }
        Ok(())
    }

    /// Atomically rewrite a closed segment with the surviving records
    /// (compaction): write a temp file, fsync, rename over the original.
    pub fn rewrite_segment(&mut self, base: Offset, records: &[Record]) -> OctoResult<()> {
        let Some(idx) = self.segments.iter().position(|s| s.base == base) else {
            return Ok(());
        };
        let mut buf = Vec::new();
        let mut frames = Vec::with_capacity(records.len());
        for rec in records {
            encode_frame(rec, &mut buf);
            frames.push(Frame { offset: rec.offset, end: buf.len() as u64 });
        }
        let tmp = self.dir.join(format!("{base:020}.seg.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, seg_path(&self.dir, base))?;
        let len = buf.len() as u64;
        self.segments[idx] = StoreSegment { base, frames, len };
        if idx + 1 == self.segments.len() {
            self.gate.detach_file();
            self.gate.settle();
        }
        Ok(())
    }

    /// Replace the entire on-disk state with the given segments (ISR
    /// resync adopting a leader snapshot). Every file is written and
    /// fsynced before the old state is considered gone.
    pub fn reset_with<'a>(
        &mut self,
        segments: impl Iterator<Item = (Offset, &'a [Record])>,
    ) -> OctoResult<()> {
        self.gate.detach_file();
        for seg in &self.segments {
            let path = seg_path(&self.dir, seg.base);
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.segments.clear();
        for (base, records) in segments {
            let mut buf = Vec::new();
            let mut frames = Vec::with_capacity(records.len());
            for rec in records {
                encode_frame(rec, &mut buf);
                frames.push(Frame { offset: rec.offset, end: buf.len() as u64 });
            }
            let path = seg_path(&self.dir, base);
            {
                let mut f = File::create(&path)?;
                f.write_all(&buf)?;
                f.sync_data()?;
            }
            self.metrics.bytes_written.add(buf.len() as u64);
            let len = buf.len() as u64;
            self.segments.push(StoreSegment { base, frames, len });
        }
        self.gate.settle();
        self.needs_recovery = false;
        Ok(())
    }

    /// Simulate power loss: the process dies and the unflushed suffix of
    /// the active segment survives only up to an arbitrary byte boundary
    /// chosen by `entropy`. Closed segments (fsynced at roll) and the
    /// synced prefix always survive. Returns the bytes torn off.
    ///
    /// The store is left poisoned — [`PartitionStore::recover`] must run
    /// before it accepts appends again, exactly like a real restart.
    pub fn power_loss(&mut self, entropy: u64) -> OctoResult<u64> {
        self.gate.detach_file();
        self.needs_recovery = true;
        let Some(seg) = self.segments.last() else { return Ok(0) };
        // unflushed bytes all live in the active segment (rolls fsync
        // the closed file), so the durable prefix is len − unflushed
        let synced = seg.len.saturating_sub(self.gate.unflushed());
        let unflushed = seg.len - synced;
        let keep = synced + if unflushed == 0 { 0 } else { entropy % (unflushed + 1) };
        let torn = seg.len - keep;
        if torn > 0 {
            let f = OpenOptions::new().write(true).open(seg_path(&self.dir, seg.base))?;
            f.set_len(keep)?;
            f.sync_data()?;
        }
        Ok(torn)
    }

    /// Bytes of the active segment not yet known to be fsynced.
    pub fn unflushed_bytes(&self) -> u64 {
        if self.segments.is_empty() {
            return 0;
        }
        self.gate.unflushed()
    }
}

impl Drop for PartitionStore {
    fn drop(&mut self) {
        // graceful close: whatever reached the file gets fsynced, so a
        // clean shutdown loses nothing under any flush policy. A
        // power-lost store is left exactly as the outage tore it.
        if !self.needs_recovery {
            let _ = self.sync();
        }
    }
}

// ---------------------------------------------------------------------------
// offset checkpoints
// ---------------------------------------------------------------------------

/// One committed offset in a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffsetEntry {
    /// Consumer group id.
    pub group: String,
    /// Topic name.
    pub topic: String,
    /// Partition id.
    pub partition: u32,
    /// Next offset the group will consume.
    pub offset: u64,
}

/// One producer-id registration in a checkpoint file: the controller's
/// durable record that `name` holds `pid` at `epoch`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerCkptEntry {
    /// Stable client identity (transactional id / client id).
    pub name: String,
    /// Assigned producer id.
    pub pid: u64,
    /// Fencing epoch; a re-registration bumps it and fences the old one.
    pub epoch: u32,
}

/// Idempotent-producer state carried inside the offset checkpoint so pid
/// assignments and fencing epochs survive cold restarts even when
/// `octopus-zoo` state is gone. Dedup windows are deliberately NOT
/// persisted here: the leader's log is the authority and windows are
/// rebuilt by the recovery scan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerCheckpoint {
    /// Next pid the allocator would hand out.
    pub next_pid: u64,
    /// Every known registration.
    pub producers: Vec<ProducerCkptEntry>,
}

/// Versioned checkpoint body (v2). v1 files were a bare
/// `Vec<OffsetEntry>`; `read_file` still accepts them.
#[derive(Serialize, Deserialize)]
struct CheckpointBody {
    version: u32,
    offsets: Vec<OffsetEntry>,
    producers: ProducerCheckpoint,
}

type ProducerSource = Box<dyn Fn() -> ProducerCheckpoint + Send + Sync>;

/// Periodic, atomically-replaced snapshot of every committed group
/// offset (the durable half of the group coordinator), plus the
/// idempotent-producer registry.
///
/// Format: 4-byte little-endian CRC32C over the JSON body, then the
/// body. Written to a temp file and renamed into place, so a crash
/// mid-write leaves the previous checkpoint intact; a corrupt or
/// missing file restores to "no offsets" (consumers re-read, which
/// at-least-once delivery already permits).
pub struct OffsetCheckpoint {
    path: PathBuf,
    every: u64,
    metrics: StoreMetrics,
    pending: Mutex<u64>,
    io: Mutex<()>,
    restored_producers: Mutex<ProducerCheckpoint>,
    producer_source: Mutex<Option<ProducerSource>>,
}

impl std::fmt::Debug for OffsetCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffsetCheckpoint")
            .field("path", &self.path)
            .field("every", &self.every)
            .finish()
    }
}

impl OffsetCheckpoint {
    /// Open a checkpoint at `path`, writing every `every` commits
    /// (clamped to ≥ 1). Returns the checkpoint and whatever offsets the
    /// previous incarnation persisted.
    pub fn open(path: impl Into<PathBuf>, every: u64, metrics: StoreMetrics) -> (Self, Vec<OffsetEntry>) {
        let path = path.into();
        let (restored, producers) = Self::read_file(&path).unwrap_or_default();
        metrics.checkpoint_offsets_restored.add(restored.len() as u64);
        let ckpt = OffsetCheckpoint {
            path,
            every: every.max(1),
            metrics,
            pending: Mutex::new(0),
            io: Mutex::new(()),
            restored_producers: Mutex::new(producers),
            producer_source: Mutex::new(None),
        };
        (ckpt, restored)
    }

    fn read_file(path: &Path) -> Option<(Vec<OffsetEntry>, ProducerCheckpoint)> {
        let bytes = fs::read(path).ok()?;
        if bytes.len() < 4 {
            return None;
        }
        let crc = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        let body = &bytes[4..];
        if crc32c(body) != crc {
            return None;
        }
        if let Ok(v2) = serde_json::from_slice::<CheckpointBody>(body) {
            return Some((v2.offsets, v2.producers));
        }
        // v1 files were a bare offsets array.
        let legacy: Vec<OffsetEntry> = serde_json::from_slice(body).ok()?;
        Some((legacy, ProducerCheckpoint::default()))
    }

    /// Producer registry restored from disk at open. Consumed once by the
    /// cluster builder; later calls return the default (empty) state.
    pub fn take_restored_producers(&self) -> ProducerCheckpoint {
        std::mem::take(&mut self.restored_producers.lock())
    }

    /// Install the callback that supplies the live producer registry for
    /// every subsequent snapshot write.
    pub fn set_producer_source(&self, source: impl Fn() -> ProducerCheckpoint + Send + Sync + 'static) {
        *self.producer_source.lock() = Some(Box::new(source));
    }

    /// Record that a commit happened; every `every`-th commit persists
    /// the full snapshot. Write failures are swallowed (checkpoints are
    /// an optimisation over replaying the log, never a correctness
    /// dependency for acks).
    pub fn note_commit(&self, entries: &[OffsetEntry]) {
        let fire = {
            let mut pending = self.pending.lock();
            *pending += 1;
            if *pending >= self.every {
                *pending = 0;
                true
            } else {
                false
            }
        };
        if fire {
            let _ = self.write_now(entries);
        }
    }

    /// Persist a snapshot immediately (graceful shutdown / flush-all).
    pub fn write_now(&self, entries: &[OffsetEntry]) -> OctoResult<()> {
        let _serialized = self.io.lock();
        let producers = match &*self.producer_source.lock() {
            Some(source) => source(),
            None => ProducerCheckpoint::default(),
        };
        let body = serde_json::to_vec(&CheckpointBody {
            version: 2,
            offsets: entries.to_vec(),
            producers,
        })?;
        let mut out = Vec::with_capacity(body.len() + 4);
        out.extend_from_slice(&crc32c(&body).to_le_bytes());
        out.extend_from_slice(&body);
        let tmp = self.path.with_extension("ckpt.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.metrics.checkpoints_written.inc();
        Ok(())
    }

    /// The file this checkpoint persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// tempdir helper (tests / benches / examples)
// ---------------------------------------------------------------------------

/// A self-deleting scratch directory under the system temp dir.
///
/// Every durable test, bench, and example in the workspace roots its
/// data dir here so CI can assert nothing leaks outside `$TMPDIR`
/// (`scripts/ci.sh` greps for stray `octopus-data-*` directories).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `$TMPDIR/<prefix>-<pid>-<seq>`.
    pub fn new(prefix: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(offset: Offset, value: &[u8], key: Option<&[u8]>) -> Record {
        let mut r = Record {
            offset,
            append_time: Timestamp::from_millis(offset * 10),
            key: key.map(Bytes::copy_from_slice),
            value: Bytes::copy_from_slice(value),
            headers: vec![Header { key: "h".into(), value: b"v".to_vec() }],
            producer_time: Timestamp::from_millis(offset * 10),
            crc: 0,
            eos: None,
        };
        r.crc = r.compute_crc();
        r
    }

    fn metrics() -> StoreMetrics {
        StoreMetrics::new(&MetricsRegistry::new())
    }

    #[test]
    fn frame_roundtrip_preserves_every_field() {
        for r in [rec(0, b"hello", Some(b"k")), rec(7, b"", None), rec(9, &[0xff; 100], Some(b""))]
        {
            let mut buf = Vec::new();
            encode_frame(&r, &mut buf);
            assert_eq!(buf[0], FRAME_MAGIC);
            let (frames, records, len) = scan_bytes(&buf, None);
            assert_eq!(len as usize, buf.len());
            assert_eq!(frames.len(), 1);
            assert_eq!(records, vec![r]);
        }
    }

    #[test]
    fn eos_stamped_frames_roundtrip_and_plain_frames_still_decode() {
        let mut stamped = rec(3, b"payload", Some(b"k"));
        stamped.eos = Some(RecordEos {
            pid: 42,
            epoch: 7,
            seq: 1001,
            txn: true,
            control: Some(ControlMarker::Abort),
        });
        let mut plain_then_stamped = Vec::new();
        encode_frame(&rec(2, b"old", None), &mut plain_then_stamped);
        encode_frame(&stamped, &mut plain_then_stamped);
        let (_, records, len) = scan_bytes(&plain_then_stamped, None);
        assert_eq!(len as usize, plain_then_stamped.len());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].eos, None);
        assert_eq!(records[1], stamped);
        // non-abort control and non-txn data stamps survive too
        for control in [None, Some(ControlMarker::Commit)] {
            let mut r = rec(0, b"x", None);
            r.eos = Some(RecordEos { pid: 1, epoch: 0, seq: 9, txn: false, control });
            let mut buf = Vec::new();
            encode_frame(&r, &mut buf);
            let (_, recs, _) = scan_bytes(&buf, None);
            assert_eq!(recs, vec![r]);
        }
    }

    #[test]
    fn scan_stops_at_frame_crc_mismatch() {
        let mut buf = Vec::new();
        encode_frame(&rec(0, b"aaaa", None), &mut buf);
        let good = buf.len();
        encode_frame(&rec(1, b"bbbb", None), &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01; // corrupt second frame's payload
        let (_, records, len) = scan_bytes(&buf, None);
        assert_eq!(records.len(), 1);
        assert_eq!(len as usize, good);
    }

    #[test]
    fn scan_enforces_offset_monotonicity() {
        let mut buf = Vec::new();
        encode_frame(&rec(5, b"a", None), &mut buf);
        encode_frame(&rec(5, b"b", None), &mut buf); // duplicate offset
        let (_, records, _) = scan_bytes(&buf, None);
        assert_eq!(records.len(), 1);
        // and a prior segment's last offset carries in from the caller
        let mut buf2 = Vec::new();
        encode_frame(&rec(5, b"a", None), &mut buf2);
        let (_, none, _) = scan_bytes(&buf2, Some(9));
        assert!(none.is_empty());
    }

    #[test]
    fn store_append_sync_reopen_roundtrip() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        {
            let (mut store, recovered, _) =
                PartitionStore::open(&dir, FlushPolicy::PerBatch, metrics()).unwrap();
            assert!(recovered.is_empty());
            for i in 0..5u64 {
                store.append(&rec(i, format!("v{i}").as_bytes(), None), 0).unwrap();
            }
            store.commit_batch().unwrap();
            assert_eq!(store.unflushed_bytes(), 0);
        }
        let (_, recovered, stats) =
            PartitionStore::open(&dir, FlushPolicy::PerBatch, metrics()).unwrap();
        assert_eq!(stats.records_recovered, 5);
        assert_eq!(stats.bytes_truncated, 0);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].1.len(), 5);
        assert_eq!(&recovered[0].1[4].value[..], b"v4");
    }

    #[test]
    fn group_commit_shares_one_fsync_across_tickets() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let m = metrics();
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::PerBatch, m.clone()).unwrap();
        store.append(&rec(0, b"a", None), 0).unwrap();
        let t0 = store.commit_batch_ticket().unwrap().expect("unsynced bytes pending");
        store.append(&rec(1, b"b", None), 0).unwrap();
        let t1 = store.commit_batch_ticket().unwrap().expect("unsynced bytes pending");
        let before = m.flush_count();
        t1.wait().unwrap(); // one fsync covering both batches
        t0.wait().unwrap(); // rides the fsync t1 already issued
        assert_eq!(m.flush_count() - before, 1);
        assert_eq!(store.unflushed_bytes(), 0);
        // fully covered: nothing left to wait for
        assert!(store.commit_batch_ticket().unwrap().is_none());
    }

    #[test]
    fn tickets_are_settled_by_segment_rolls() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let m = metrics();
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::PerBatch, m.clone()).unwrap();
        store.append(&rec(0, b"first", None), 0).unwrap();
        let t = store.commit_batch_ticket().unwrap().expect("unsynced bytes pending");
        // rolling to a new segment fsyncs the closed file, covering the
        // ticket without a second fsync
        store.append(&rec(1, b"second", None), 1).unwrap();
        let after_roll = m.flush_count();
        t.wait().unwrap();
        assert_eq!(m.flush_count(), after_roll);
    }

    #[test]
    fn non_perbatch_policies_issue_no_tickets() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::OsManaged, metrics()).unwrap();
        store.append(&rec(0, b"x", None), 0).unwrap();
        assert!(store.commit_batch_ticket().unwrap().is_none());
        assert!(store.unflushed_bytes() > 0);
    }

    #[test]
    fn power_loss_never_tears_synced_prefix() {
        let tmp = TempDir::new("octopus-data");
        let dir = tmp.path().join("p0");
        let (mut store, _, _) =
            PartitionStore::open(&dir, FlushPolicy::OsManaged, metrics()).unwrap();
        store.append(&rec(0, b"durable", None), 0).unwrap();
        store.sync().unwrap();
        store.append(&rec(1, b"at-risk", None), 0).unwrap();
        let torn = store.power_loss(0xDEAD_BEEF).unwrap();
        assert!(store.append(&rec(2, b"x", None), 0).is_err(), "poisoned until recover");
        let (recovered, stats) = store.recover().unwrap();
        assert!(recovered[0].1.iter().any(|r| &r.value[..] == b"durable"));
        if torn > 0 {
            assert_eq!(stats.records_recovered, 1);
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption_safety() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let entries = vec![
            OffsetEntry { group: "g".into(), topic: "t".into(), partition: 0, offset: 41 },
            OffsetEntry { group: "g".into(), topic: "t".into(), partition: 1, offset: 7 },
        ];
        let (ckpt, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert!(restored.is_empty());
        ckpt.note_commit(&entries);
        let (_, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert_eq!(restored, entries);
        // corrupt the body: restore degrades to empty, never to garbage
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (_, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert!(restored.is_empty());
    }

    #[test]
    fn checkpoint_persists_and_restores_producer_registry() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let producers = ProducerCheckpoint {
            next_pid: 3,
            producers: vec![
                ProducerCkptEntry { name: "txn-a".into(), pid: 1, epoch: 4 },
                ProducerCkptEntry { name: "client-b".into(), pid: 2, epoch: 0 },
            ],
        };
        let offsets =
            vec![OffsetEntry { group: "g".into(), topic: "t".into(), partition: 0, offset: 5 }];
        {
            let (ckpt, _) = OffsetCheckpoint::open(&path, 1, metrics());
            let snapshot = producers.clone();
            ckpt.set_producer_source(move || snapshot.clone());
            ckpt.write_now(&offsets).unwrap();
        }
        let (ckpt, restored_offsets) = OffsetCheckpoint::open(&path, 1, metrics());
        assert_eq!(restored_offsets, offsets);
        assert_eq!(ckpt.take_restored_producers(), producers);
        // take is a one-shot: subsequent calls see the default
        assert_eq!(ckpt.take_restored_producers(), ProducerCheckpoint::default());
    }

    #[test]
    fn checkpoint_reads_legacy_v1_offsets_array() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let entries =
            vec![OffsetEntry { group: "g".into(), topic: "t".into(), partition: 2, offset: 11 }];
        let body = serde_json::to_vec(&entries).unwrap();
        let mut out = crc32c(&body).to_le_bytes().to_vec();
        out.extend_from_slice(&body);
        fs::write(&path, &out).unwrap();
        let (ckpt, restored) = OffsetCheckpoint::open(&path, 1, metrics());
        assert_eq!(restored, entries);
        assert_eq!(ckpt.take_restored_producers(), ProducerCheckpoint::default());
    }

    #[test]
    fn checkpoint_cadence_batches_writes() {
        let tmp = TempDir::new("octopus-data");
        let path = tmp.path().join("offsets.ckpt");
        let (ckpt, _) = OffsetCheckpoint::open(&path, 3, metrics());
        let e = vec![OffsetEntry { group: "g".into(), topic: "t".into(), partition: 0, offset: 1 }];
        ckpt.note_commit(&e);
        ckpt.note_commit(&e);
        assert!(!path.exists(), "not yet at cadence");
        ckpt.note_commit(&e);
        assert!(path.exists());
    }

    #[test]
    fn tempdir_cleans_up_after_itself() {
        let path = {
            let tmp = TempDir::new("octopus-data");
            assert!(tmp.path().exists());
            tmp.path().to_path_buf()
        };
        assert!(!path.exists());
    }
}
