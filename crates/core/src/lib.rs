//! # Octopus — a hybrid event-driven architecture for distributed scientific computing
//!
//! This crate is the front door of the Octopus reproduction: it
//! re-exports every subsystem and provides [`Octopus`], a one-call local
//! deployment that wires together the coordination service, the
//! authorization stack, the event fabric, the web service, and the
//! trigger runtime — the in-process equivalent of the paper's
//! cloud-hosted deployment (§IV, Fig. 2).
//!
//! ```
//! use octopus::prelude::*;
//!
//! // deploy the platform and register a user
//! let octo = Octopus::launch().unwrap();
//! octo.register_user("alice@uchicago.edu", "password").unwrap();
//! let session = octo.login("alice@uchicago.edu", "password").unwrap();
//!
//! // provision a topic through the web service and publish an event
//! session.client().register_topic("sdl.actions", serde_json::json!({"partitions": 2})).unwrap();
//! let producer = session.producer();
//! producer.send_sync("sdl.actions", Event::from_json(&serde_json::json!({
//!     "event_type": "experiment_started", "experiment": "exp-001"
//! })).unwrap()).unwrap();
//!
//! // consume it back
//! let mut consumer = session.consumer("quickstart");
//! consumer.subscribe(&["sdl.actions"]).unwrap();
//! let events = consumer.poll().unwrap();
//! assert_eq!(events.len(), 1);
//! ```

pub mod deployment;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::deployment::{Octopus, OctopusBuilder, UserSession};
    pub use octopus_broker::{AckLevel, CleanupPolicy, Cluster, TopicConfig};
    pub use octopus_chaos::{ChaosHarness, FaultKind, FaultPlan};
    pub use octopus_pattern::Pattern;
    pub use octopus_sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
    pub use octopus_trigger::{FunctionConfig, TriggerSpec};
    pub use octopus_types::{DeliveredEvent, Event, OctoError, OctoResult, Timestamp, Uid};
}

pub use deployment::{Octopus, OctopusBuilder, UserSession};

// Re-export the subsystem crates under stable names.
pub use octopus_apps as apps;
pub use octopus_auth as auth;
pub use octopus_broker as broker;
pub use octopus_chaos as chaos;
pub use octopus_fabric as fabric;
pub use octopus_flow as flow;
pub use octopus_fsmon as fsmon;
pub use octopus_ows as ows;
pub use octopus_pattern as pattern;
pub use octopus_sdk as sdk;
pub use octopus_sim as sim;
pub use octopus_trigger as trigger;
pub use octopus_types as types;
pub use octopus_wire as wire;
pub use octopus_zoo as zoo;
