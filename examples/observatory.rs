//! Fleet observatory: watch a deployment degrade and recover.
//!
//! Runs live traffic through a broker kill, printing what an operator
//! would see on each pane of the observatory — the Green/Yellow/Red
//! health rollup with its transition timeline, per-group consumer lag,
//! the SLO burn-rate page firing and resolving, and the Prometheus
//! scrape — then exports the sampled causal spans as a Chrome trace to
//! `results/trace.json` (load it at <https://ui.perfetto.dev>).
//!
//! Run with: `cargo run --example observatory`

use std::sync::Arc;
use std::time::Duration;

use octopus::broker::{AckLevel, BrokerId, HealthStatus};
use octopus::prelude::*;
use octopus::types::{AlertState, SloMonitor, SloSpec, SpanSink};

const TICK_NS: u64 = 1_000;

fn main() -> OctoResult<()> {
    // Sample every trace; real deployments would use SpanSink::new(100).
    let sink = Arc::new(SpanSink::new(1));
    let octo = Octopus::builder().brokers(3).spans(Arc::clone(&sink)).build()?;
    octo.register_provider("uchicago.edu", "University of Chicago");
    octo.register_user("ops@uchicago.edu", "pw")?;
    let session = octo.login("ops@uchicago.edu", "pw")?;

    // A replicated work topic and a frail rf=1 topic pinned to broker 0.
    session.client().register_topic(
        "sdl.work",
        serde_json::json!({"partitions": 1, "replication_factor": 3, "min_insync_replicas": 2}),
    )?;
    session
        .client()
        .register_topic("sdl.frail", serde_json::json!({"partitions": 1, "replication_factor": 1}))?;

    let cluster = octo.cluster();
    let good = cluster.metrics().counter("observatory_produce_good_total");
    let total = cluster.metrics().counter("observatory_produce_attempts_total");
    let mut slo = SloMonitor::new();
    slo.add(
        SloSpec::availability(
            "produce-availability",
            "observatory_produce_good_total",
            "observatory_produce_attempts_total",
            0.99,
        )
        .windows(5 * TICK_NS, 20 * TICK_NS),
    );
    let mut now = 0u64;

    let producer = session.producer_with(ProducerConfig {
        acks: AckLevel::All,
        linger: Duration::ZERO,
        ..ProducerConfig::default()
    });
    let frail = session.producer_with(ProducerConfig {
        linger: Duration::ZERO,
        retries: 0,
        ..ProducerConfig::default()
    });

    println!("health: {}", cluster.health_report().status);

    // Healthy traffic; the observer group drains to lag 0.
    for i in 0..10u8 {
        producer.send_sync("sdl.work", Event::from_bytes(vec![i]))?;
        frail.send_sync("sdl.frail", Event::from_bytes(vec![i]))?;
        good.add(2);
        total.add(2);
        now += TICK_NS;
        slo.observe(now, &cluster.metrics().snapshot());
    }
    let mut consumer = session.consumer("observers");
    consumer.subscribe(&["sdl.work"])?;
    let mut drained = 0;
    while drained < 10 {
        drained += consumer.poll()?.len();
    }
    consumer.commit_sync()?;
    println!("observers lag after drain: {}", cluster.lag_report("observers")?.total);

    // Kill the frail topic's only replica: Red, lag climbs, SLO pages.
    cluster.kill_broker(BrokerId(0))?;
    println!("health after kill_broker(0): {}", cluster.health_status());
    for i in 0..20u8 {
        producer.send_sync("sdl.work", Event::from_bytes(vec![i]))?;
        good.inc();
        total.inc();
        if frail.send_sync("sdl.frail", Event::from_bytes(vec![i])).is_err() {
            total.inc(); // failed attempt burns error budget
        }
        now += TICK_NS;
        for alert in slo.observe(now, &cluster.metrics().snapshot()) {
            println!(
                "ALERT {:?}: {} (fast burn {:.1}x, slow burn {:.1}x)",
                alert.state, alert.slo, alert.fast_burn, alert.slow_burn
            );
        }
    }
    println!("observers lag mid-fault: {}", cluster.lag_report("observers")?.total);

    // Heal; the page resolves and lag converges back to zero.
    cluster.restart_broker(BrokerId(0))?;
    cluster.resync_broker(BrokerId(0))?;
    println!("health after heal: {}", cluster.health_status());
    // fresh client: the outage tripped the old producer's breaker
    let frail = session.producer_with(ProducerConfig {
        linger: Duration::ZERO,
        retries: 0,
        ..ProducerConfig::default()
    });
    for i in 0..40u8 {
        frail.send_sync("sdl.frail", Event::from_bytes(vec![i]))?;
        good.inc();
        total.inc();
        now += TICK_NS;
        for alert in slo.observe(now, &cluster.metrics().snapshot()) {
            if alert.state == AlertState::Resolved {
                println!("RESOLVED: {}", alert.slo);
            }
        }
    }
    let mut drained = 0;
    while drained < 20 {
        drained += consumer.poll()?.len();
    }
    consumer.commit_sync()?;
    println!("observers lag after recovery: {}", cluster.lag_report("observers")?.total);

    // The operator's panes.
    let report = cluster.health_report();
    assert_eq!(report.status, HealthStatus::Green);
    println!("\nhealth timeline:");
    for t in &report.timeline {
        println!("  {} -> {}  ({})", t.from, t.to, t.reason);
    }
    let scrape = cluster.metrics().render_text();
    println!("\nscrape excerpt:");
    for line in scrape.lines().filter(|l| l.contains("octopus_cluster") || l.contains("consumer_lag")) {
        println!("  {line}");
    }

    let out = std::path::Path::new("results/trace.json");
    sink.write_chrome_trace(out).map_err(|e| OctoError::Internal(e.to_string()))?;
    println!(
        "\nwrote {} spans to {} ({} dropped) — open it at https://ui.perfetto.dev",
        sink.len(),
        out.display(),
        sink.dropped()
    );
    Ok(())
}
