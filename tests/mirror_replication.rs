//! Cross-cluster mirroring (§IV-F: "fault tolerance can be improved by
//! replicating the cluster across regions. Topics may be replicated and
//! synchronized by using the Kafka MirrorMaker tool").

use std::time::Duration;

use octopus::broker::{AckLevel, BrokerId, MirrorMaker};
use octopus::prelude::*;

fn ev(s: &str) -> Event {
    Event::from_bytes(s.as_bytes().to_vec())
}

#[test]
fn region_replica_converges_and_serves_after_primary_loss() {
    let primary = Cluster::new(2);
    let standby = Cluster::new(2);
    primary.create_topic("science.events", TopicConfig::default().with_partitions(2)).unwrap();
    for i in 0..40 {
        primary.produce("science.events", ev(&format!("{i}")), AckLevel::Leader).unwrap();
    }
    let mut mm = MirrorMaker::new(
        primary.clone(),
        standby.clone(),
        vec!["science.events".into()],
    );
    assert_eq!(mm.run_once().unwrap(), 40);

    // primary region goes dark
    primary.kill_broker(BrokerId(0)).unwrap();
    primary.kill_broker(BrokerId(1)).unwrap();

    // the standby still serves every event
    let total: usize = (0..2)
        .map(|p| standby.fetch("science.events", p, 0, 1000).unwrap().len())
        .sum();
    assert_eq!(total, 40);
}

#[test]
fn background_mirror_keeps_up_with_a_live_producer() {
    let primary = Cluster::new(2);
    let standby = Cluster::new(1);
    primary.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    let mm = MirrorMaker::new(primary.clone(), standby.clone(), vec!["t".into()]);
    let handle = mm.start(Duration::from_millis(3));
    for i in 0..100 {
        primary.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
    }
    // wait for convergence
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mirrored =
            standby.topic_exists("t").then(|| standby.fetch("t", 0, 0, 1000).unwrap().len());
        if mirrored == Some(100) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "mirror lagged: {mirrored:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.stop();
    // order is preserved
    let values: Vec<String> = standby
        .fetch("t", 0, 0, 1000)
        .unwrap()
        .iter()
        .map(|r| String::from_utf8_lossy(&r.value).into_owned())
        .collect();
    let expected: Vec<String> = (0..100).map(|i| i.to_string()).collect();
    assert_eq!(values, expected);
}

#[test]
fn mirrored_consumers_resume_from_their_own_offsets() {
    use octopus::sdk::{Consumer, ConsumerConfig};
    let primary = Cluster::new(2);
    let standby = Cluster::new(2);
    primary.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    for i in 0..30 {
        primary.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
    }
    let mut mm = MirrorMaker::new(primary, standby.clone(), vec!["t".into()]);
    mm.run_once().unwrap();
    // a consumer on the standby region reads everything independently
    let mut c = Consumer::new(
        standby,
        ConsumerConfig { group: "dr-reader".into(), auto_commit_interval: None, ..Default::default() },
    );
    c.subscribe(&["t"]).unwrap();
    let mut seen = 0;
    loop {
        let batch = c.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        seen += batch.len();
    }
    assert_eq!(seen, 30);
}
