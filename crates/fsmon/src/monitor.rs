//! FSMon: publishes filesystem events to a local broker topic.
//!
//! "One instance of this monitor per FS publishes events to a local
//! Kafka topic" (§VI-B). In the hierarchical architecture the local
//! cluster absorbs the raw event firehose; only the aggregator's
//! distillate reaches the cloud fabric.

use octopus_broker::{AckLevel, Cluster, TopicConfig};
use octopus_types::{Event, OctoResult};

use crate::fs::FsEvent;

/// A filesystem monitor bound to a local cluster topic.
pub struct FsMonitor {
    local: Cluster,
    topic: String,
    published: u64,
}

impl FsMonitor {
    /// Create the monitor and its backing topic (idempotent).
    pub fn new(local: Cluster, topic: &str) -> OctoResult<Self> {
        let brokers = local.broker_count() as u32;
        local.create_topic(
            topic,
            TopicConfig::default()
                .with_partitions(4)
                .with_replication(brokers.min(2))
                .with_min_insync(1),
        )?;
        Ok(FsMonitor { local, topic: topic.to_string(), published: 0 })
    }

    /// The local topic raw events land in.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Publish a batch of filesystem events, keyed by path so each
    /// file's history stays ordered.
    pub fn publish(&mut self, events: &[FsEvent]) -> OctoResult<usize> {
        for e in events {
            let event = Event::builder()
                .key(e.path.clone())
                .json(&e.to_json())?
                .header("source", b"fsmon")
                .timestamp(e.timestamp)
                .build();
            self.local.produce(&self.topic, event, AckLevel::Leader)?;
        }
        self.published += events.len() as u64;
        Ok(events.len())
    }

    /// Events published so far.
    pub fn published(&self) -> u64 {
        self.published
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{SyntheticFs, WorkloadProfile};
    use octopus_types::Timestamp;

    #[test]
    fn raw_events_land_in_local_topic() {
        let local = Cluster::new(2);
        let mut mon = FsMonitor::new(local.clone(), "fsmon.pfs0").unwrap();
        let mut fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), 1);
        let burst = fs.job_burst(Timestamp::from_millis(0));
        let n = mon.publish(&burst).unwrap();
        assert_eq!(n, burst.len());
        assert_eq!(mon.published(), burst.len() as u64);
        let total: usize = (0..4)
            .map(|p| local.fetch("fsmon.pfs0", p, 0, 100_000).unwrap().len())
            .sum();
        assert_eq!(total, burst.len());
    }

    #[test]
    fn events_for_one_path_share_a_partition() {
        let local = Cluster::new(2);
        let mut mon = FsMonitor::new(local.clone(), "fsmon.pfs0").unwrap();
        let mut fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), 2);
        mon.publish(&fs.job_burst(Timestamp::from_millis(0))).unwrap();
        // each path's events must be in exactly one partition
        let mut path_partition = std::collections::HashMap::new();
        for p in 0..4u32 {
            for r in local.fetch("fsmon.pfs0", p, 0, 100_000).unwrap() {
                let key = String::from_utf8(r.key.clone().unwrap().to_vec()).unwrap();
                let prev = path_partition.insert(key.clone(), p);
                if let Some(prev) = prev {
                    assert_eq!(prev, p, "path {key} split across partitions");
                }
            }
        }
    }

    #[test]
    fn monitor_creation_is_idempotent() {
        let local = Cluster::new(2);
        FsMonitor::new(local.clone(), "t").unwrap();
        FsMonitor::new(local, "t").unwrap();
    }
}
