//! Regenerates **Fig. 3**: median and 99th-percentile producer latency
//! vs throughput for configurations 1–6 on the baseline cluster with
//! remote producers (20–100 producers per curve).
//!
//! `cargo run --release -p octopus-bench --bin fig3 [-- seed]`

use octopus_bench::{bar, figure_header, human_rate};
use octopus_fabric::experiments::fig3;
use octopus_fabric::Calibration;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    figure_header(
        "FIG. 3 — Latency vs throughput, configurations 1-6, remote producers",
        "Each curve sweeps 20, 40, 60, 80, 100 producers on the baseline cluster.",
    );
    let labels = [
        "cfg 1: 32B  acks=0 p=2",
        "cfg 2: 1KB  acks=0 p=2",
        "cfg 3: 1KB  acks=1 p=2",
        "cfg 4: 1KB  acks=all p=2",
        "cfg 5: 4KB  acks=0 p=2",
        "cfg 6: 1KB  acks=0 p=4",
    ];
    let curves = fig3(Calibration::default(), seed);
    let max_p99 = curves
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.p99_ms))
        .fold(0.0f64, f64::max);
    for (idx, points) in &curves {
        println!("\n{}", labels[(*idx - 1) as usize]);
        println!("{:>6} {:>12} {:>9} {:>9}  p99", "prods", "thru (ev/s)", "med ms", "p99 ms");
        for p in points {
            println!(
                "{:>6} {:>12} {:>9.1} {:>9.1}  {}",
                p.producers,
                human_rate(p.throughput_eps),
                p.median_ms,
                p.p99_ms,
                bar(p.p99_ms, max_p99, 30)
            );
        }
    }
    println!("\nreading: latency rises toward saturation; 32B events reach ~100x the 1KB event rate;");
    println!("acks=all shifts the whole curve up; extra partitions shift the knee right.");
}
