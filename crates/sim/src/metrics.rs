//! Measurement primitives: counters, HDR-style histograms, time series.
//!
//! The paper reports median and 99th-percentile producer latencies
//! (Table III, Fig. 3) and time series of trigger concurrency (Fig. 4)
//! and topic backlogs (Fig. 7). [`Histogram`] is a log-linear bucketed
//! histogram (2 decimal digits of relative precision) like HdrHistogram;
//! [`TimeSeries`] records (time, value) pairs for figure regeneration.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per power of two ≈ 1.6% error

/// Log-linear histogram of `u64` values (e.g. latency in nanoseconds).
///
/// Values are bucketed into 64 linear sub-buckets per power of two,
/// bounding relative quantile error at ~1/64. Recording is O(1); memory
/// is a few KB regardless of value range.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: Vec::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket_index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUB_BUCKET_BITS {
            v as usize
        } else {
            let shift = msb - SUB_BUCKET_BITS;
            let sub = (v >> shift) as usize; // in [2^6, 2^7)
            ((shift as usize + 1) << SUB_BUCKET_BITS) + (sub - (1 << SUB_BUCKET_BITS))
        }
    }

    fn bucket_value(index: usize) -> u64 {
        if index < (1 << SUB_BUCKET_BITS) {
            index as u64
        } else {
            let shift = (index >> SUB_BUCKET_BITS) - 1;
            let sub = (index & ((1 << SUB_BUCKET_BITS) - 1)) + (1 << SUB_BUCKET_BITS);
            // representative: midpoint of the bucket
            ((sub as u64) << shift) + (1u64 << shift) / 2
        }
    }

    /// Record a value.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in \[0,1\]. Returns 0 for an empty histogram.
    /// Result is exact to within the bucket width (~1.6% relative).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median, i.e. `quantile(0.5)`.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// A recorded (time, value) series for regenerating the paper's figures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point; times must be non-decreasing.
    pub fn record(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries must be recorded in time order");
        }
        self.points.push((t, v));
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest value in the series.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Rebucket into fixed windows of `window_secs`, averaging values in
    /// each window — handy for printing figure-sized summaries.
    pub fn downsample(&self, window_secs: f64) -> Vec<(f64, f64)> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut win = 0usize;
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.points {
            let w = (t.as_secs_f64() / window_secs) as usize;
            if w != win && n > 0 {
                out.push(((win as f64 + 0.5) * window_secs, sum / n as f64));
                sum = 0.0;
                n = 0;
            }
            win = w;
            sum += v;
            n += 1;
        }
        if n > 0 {
            out.push(((win as f64 + 0.5) * window_secs, sum / n as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.median(), 3);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn histogram_quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let med = h.median() as f64;
        assert!((med - 50_000.0).abs() / 50_000.0 < 0.02, "median {med}");
        let p99 = h.p99() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.02, "p99 {p99}");
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.median(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v * 1000); // force different bucket ranges
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100_000);
    }

    #[test]
    fn quantile_bounded_by_min_max() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.quantile(0.0), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.median(), 1_000_000);
    }

    #[test]
    fn timeseries_downsample() {
        let mut ts = TimeSeries::new();
        for i in 0..100u64 {
            ts.record(SimTime(i * 100_000_000), i as f64); // every 0.1s
        }
        let ds = ts.downsample(1.0);
        assert_eq!(ds.len(), 10);
        // first window averages 0..9 = 4.5
        assert!((ds[0].1 - 4.5).abs() < 1e-9);
        assert_eq!(ts.max_value(), 99.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn timeseries_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime(10), 1.0);
        ts.record(SimTime(5), 2.0);
    }
}
