//! The §VI-E pipeline end to end: a Parsl-like workflow publishes
//! monitoring through the fabric, the dashboard folds it, and healing
//! signals (stragglers, failures, slow workers) come out the far side.

use std::sync::Arc;
use std::time::Duration;

use octopus::apps::WorkflowDashboard;
use octopus::flow::{
    fig8, HealingPolicy, HtexConfig, HtexExecutor, OctopusMonitor, TaskGraph,
};
use octopus::flow::experiments::MonitorKind;
use octopus::prelude::*;

#[test]
fn monitored_workflow_feeds_the_dashboard() {
    let cluster = Cluster::new(2);
    cluster.create_topic("parsl.monitoring", TopicConfig::default()).unwrap();
    let monitor = Arc::new(OctopusMonitor::new(cluster.clone(), "parsl.monitoring"));

    let mut b = TaskGraph::builder();
    let stage1: Vec<_> = (0..8)
        .map(|i| {
            b.add(&format!("fetch-{i}"), &[], |_| {
                std::thread::sleep(Duration::from_millis(3));
                Ok(serde_json::json!(1))
            })
        })
        .collect();
    let reduce = b.add("reduce", &stage1, |inputs| {
        Ok(serde_json::json!(inputs.len()))
    });
    let graph = b.build().unwrap();

    let report = HtexExecutor::new(HtexConfig::new(4), monitor).run(&graph);
    assert!(report.failures.is_empty());
    assert_eq!(report.outputs[&reduce], serde_json::json!(8));

    let mut dash = WorkflowDashboard::new(cluster, "parsl.monitoring").unwrap();
    dash.sync().unwrap();
    assert_eq!(dash.events_seen, 27); // 9 tasks x 3 phases
    assert_eq!(dash.state_counts().get("done"), Some(&9));
}

#[test]
fn failure_events_flow_to_the_dashboard_and_healing_recovers() {
    let cluster = Cluster::new(2);
    cluster.create_topic("parsl.monitoring", TopicConfig::default()).unwrap();
    let monitor = Arc::new(OctopusMonitor::new(cluster.clone(), "parsl.monitoring"));

    // run WITHOUT healing: the bad worker loses tasks, dashboard sees it
    let mut cfg = HtexConfig::new(4);
    cfg.fault_injector = Some(Arc::new(|w, _| w == 0));
    let g = octopus::flow::dag::independent_tasks(20, |_| Ok(serde_json::json!(1)));
    let broken = HtexExecutor::new(cfg.clone(), monitor.clone()).run(&g);
    assert!(!broken.failures.is_empty());

    let mut dash = WorkflowDashboard::new(cluster, "parsl.monitoring").unwrap();
    dash.sync().unwrap();
    assert!(!dash.failures().is_empty(), "dashboard surfaces the failures");
    assert!(dash.failures().iter().all(|a| a.worker == 0), "all failures on worker 0");

    // now with the healing policy: everything recovers, worker 0 is out
    cfg.healing = Some(HealingPolicy::aggressive());
    let healed =
        HtexExecutor::new(cfg, Arc::new(octopus::flow::NullMonitor::new())).run(&g);
    assert!(healed.failures.is_empty());
    assert_eq!(healed.blacklisted_workers, vec![0]);
}

#[test]
fn fig8_shape_octopus_beats_db_and_overhead_falls_with_workers() {
    // a scaled-down Fig. 8 grid (full grid runs in the bench binary)
    let rows = fig8(&[2, 8], &[0]);
    let cell = |kind, workers| {
        rows.iter()
            .find(|r| r.monitor == kind && r.workers == workers)
            .expect("cell present")
            .clone()
    };
    let db2 = cell(MonitorKind::HtexDb, 2);
    let db8 = cell(MonitorKind::HtexDb, 8);
    let oc8 = cell(MonitorKind::Octopus, 8);
    // Octopus's async batched monitor beats synchronous DB writes
    assert!(
        oc8.overhead_us_per_event < db8.overhead_us_per_event,
        "octopus {} < db {}",
        oc8.overhead_us_per_event,
        db8.overhead_us_per_event
    );
    // the paper's headline: per-event overhead decreases as workers grow
    assert!(
        db8.overhead_us_per_event < db2.overhead_us_per_event * 1.2,
        "db per-event overhead should not grow with workers: {} vs {}",
        db8.overhead_us_per_event,
        db2.overhead_us_per_event
    );
}
