//! Cross-layer resilience: the paper's fault-tolerance story (§IV-F)
//! exercised end to end — coordination-replica failures during
//! provisioning, broker failures during live traffic, and the
//! timer-driven periodic triggers of §VI-D.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use octopus::prelude::*;
use octopus::trigger::TimerSource;

#[test]
fn ows_provisioning_survives_coordination_replica_failures() {
    let octo = Octopus::builder().zoo_replicas(3).build().unwrap();
    octo.register_provider("uchicago.edu", "UChicago");
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();

    session.client().register_topic("before", serde_json::Value::Null).unwrap();

    // kill the coordination leader: OWS keeps working through failover
    let leader = octo.zoo().leader_index();
    octo.zoo().kill_replica(leader);
    session.client().register_topic("during", serde_json::Value::Null).unwrap();
    assert!(octo.zoo().exists("/octopus/owners/during").unwrap());

    // restart and keep going
    octo.zoo().restart_replica(leader).unwrap();
    session.client().register_topic("after", serde_json::Value::Null).unwrap();
    let mut topics = session.client().list_topics().unwrap();
    topics.sort();
    assert_eq!(topics, vec!["after", "before", "during"]);
}

#[test]
fn ows_is_unavailable_without_coordination_quorum_then_heals() {
    let octo = Octopus::builder().zoo_replicas(3).build().unwrap();
    octo.register_provider("uchicago.edu", "UChicago");
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();

    octo.zoo().kill_replica(0);
    octo.zoo().kill_replica(1);
    // no quorum: provisioning fails loudly (503-class), not silently
    let err = session.client().register_topic("nope", serde_json::Value::Null).unwrap_err();
    assert!(matches!(err, OctoError::Unavailable(_)), "got {err}");

    // healing restores service, and the failed call can simply be retried
    octo.zoo().restart_replica(0).unwrap();
    session.client().register_topic("nope", serde_json::Value::Null).unwrap();
    assert!(session.client().list_topics().unwrap().contains(&"nope".to_string()));
}

#[test]
fn consumers_ride_through_broker_failover_mid_stream() {
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();
    session
        .client()
        .register_topic("stream", serde_json::json!({"partitions": 1}))
        .unwrap();

    let producer = session.producer();
    for i in 0..50 {
        producer
            .send_sync("stream", Event::from_bytes(format!("{i}").into_bytes()))
            .unwrap();
    }
    let mut consumer = session.consumer("rider");
    consumer.subscribe(&["stream"]).unwrap();
    let mut seen = consumer.poll().unwrap().len();

    // the partition leader dies mid-stream
    let leader = octo.cluster().leader_broker("stream", 0).unwrap();
    octo.cluster().kill_broker(leader).unwrap();
    for i in 50..80 {
        producer
            .send_sync("stream", Event::from_bytes(format!("{i}").into_bytes()))
            .unwrap();
    }
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        seen += batch.len();
    }
    assert_eq!(seen, 80, "no events lost across leader failover");

    // the dead broker returns and catches back up
    octo.cluster().restart_broker(leader).unwrap();
    assert_eq!(octo.cluster().isr_of("stream", 0).unwrap().len(), 2);
}

#[test]
fn timer_driven_trigger_ingests_periodically() {
    // §VI-D: "timer-based events to retrieve updates periodically from
    // the various data sources"
    let octo = Octopus::launch().unwrap();
    octo.register_user("epi@uchicago.edu", "pw").unwrap();
    let session = octo.login("epi@uchicago.edu", "pw").unwrap();
    session.client().register_topic("epi.timers", serde_json::Value::Null).unwrap();

    let ingests = Arc::new(AtomicUsize::new(0));
    let ingests2 = ingests.clone();
    octo.registry().register("ingest-sources", move |_ctx, batch| {
        ingests2.fetch_add(batch.len(), Ordering::SeqCst);
        Ok(())
    });
    session
        .client()
        .deploy_trigger(serde_json::json!({
            "name": "periodic-ingest",
            "topic": "epi.timers",
            "function": "ingest-sources",
            "pattern": {"event_type": ["timer_tick"]},
        }))
        .unwrap();

    let timer = TimerSource::new(octo.cluster().clone(), "epi.timers", "hourly");
    for _ in 0..5 {
        timer.fire_once().unwrap();
        octo.triggers().poll_once("periodic-ingest").unwrap();
    }
    assert_eq!(ingests.load(Ordering::SeqCst), 5);
}

#[test]
fn maintenance_runs_while_clients_are_active() {
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();
    session
        .client()
        .register_topic("churn", serde_json::json!({"partitions": 2, "retention_ms": 0}))
        .unwrap();
    // shrink segments so retention has something to reap
    let mut cfg = octo.cluster().topic_config("churn").unwrap();
    cfg.segment_bytes = 128;
    octo.cluster().update_topic_config("churn", cfg).unwrap();

    let producer = session.producer();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let cluster = octo.cluster().clone();
    let janitor = std::thread::spawn(move || {
        let mut reaped = 0;
        while !stop2.load(Ordering::Acquire) {
            reaped += cluster.run_maintenance();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        reaped
    });
    for i in 0..500 {
        producer
            .send_sync("churn", Event::from_bytes(format!("event-{i:06}").into_bytes()))
            .unwrap();
    }
    stop.store(true, Ordering::Release);
    let reaped = janitor.join().unwrap();
    assert!(reaped > 0, "retention reclaimed records concurrently with producers");
    // the log tail is still consistent
    for p in 0..2 {
        let start = octo.cluster().earliest_offset("churn", p).unwrap();
        let records = octo.cluster().fetch("churn", p, start, 10_000).unwrap();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.offset, start + i as u64);
        }
    }
}
