//! Epidemic modeling and response (§VI-D, Fig. 6 middle).
//!
//! "This system monitors various web-based data sources (e.g., public
//! health data), and when data are updated, it ingests, cleans, and
//! validates the data. Prediction models are regularly retrained and
//! run, and data and model results are published for decision makers."
//!
//! The platform wires: synthetic **data sources** (daily case counts
//! with reporting noise, gaps, and corrections) → a **source monitor**
//! publishing update events → a **trigger** running the ingest/clean/
//! validate pipeline and refitting the transmission model (an R-number
//! estimate from exponential growth) → **alerts** to a decision-maker
//! topic when the estimate crosses 1.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use octopus_broker::{AckLevel, Cluster, TopicConfig};
use octopus_pattern::Pattern;
use octopus_trigger::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
use octopus_types::{Event, OctoResult, Uid};

/// One raw report from a public-health data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// Source name (e.g. a health department feed).
    pub source: String,
    /// Day index of the report.
    pub day: u32,
    /// Reported new cases. May be negative (corrections) or absurd
    /// (data entry errors) — cleaning handles both.
    pub new_cases: i64,
}

/// A synthetic epidemic data source: SIR-flavoured daily counts with
/// reporting noise and occasional bad rows.
pub struct DataSource {
    name: String,
    rng: SmallRng,
    /// Daily growth factor of the underlying outbreak.
    pub growth: f64,
    current: f64,
    day: u32,
}

impl DataSource {
    /// A source whose underlying outbreak grows by `growth` per day.
    pub fn new(name: &str, initial_cases: f64, growth: f64, seed: u64) -> Self {
        DataSource {
            name: name.to_string(),
            rng: SmallRng::seed_from_u64(seed),
            growth,
            current: initial_cases,
            day: 0,
        }
    }

    /// Produce the next day's report (noisy; ~2% of rows are garbage).
    pub fn next_report(&mut self) -> CaseReport {
        let day = self.day;
        self.day += 1;
        self.current *= self.growth;
        let noise = 1.0 + (self.rng.gen::<f64>() - 0.5) * 0.2;
        let mut cases = (self.current * noise) as i64;
        if self.rng.gen::<f64>() < 0.02 {
            // data-entry error: sign flip or 100x blowup
            cases = if self.rng.gen() { -cases } else { cases * 100 };
        }
        CaseReport { source: self.name.clone(), day, new_cases: cases }
    }
}

/// Cleaned, validated time series + R-number estimation.
#[derive(Debug, Default, Clone)]
pub struct EpidemicModel {
    /// (day, cases) after cleaning, in day order.
    pub series: Vec<(u32, f64)>,
}

/// Serial interval used to map growth to a reproduction number
/// (days between successive infections; ~5 for COVID-like pathogens).
const SERIAL_INTERVAL_DAYS: f64 = 5.0;

impl EpidemicModel {
    /// Ingest a report: cleaning drops negative counts and >20x jumps
    /// (the validation step of §VI-D).
    pub fn ingest(&mut self, report: &CaseReport) -> bool {
        if report.new_cases < 0 {
            return false;
        }
        let cases = report.new_cases as f64;
        if let Some(&(_, prev)) = self.series.last() {
            if prev > 0.0 && cases > prev * 20.0 {
                return false; // implausible jump
            }
        }
        self.series.push((report.day, cases));
        true
    }

    /// Estimate the effective reproduction number R from the recent
    /// growth rate: fit log-linear growth over the last `window` days,
    /// then R = exp(r · serial_interval).
    pub fn estimate_r(&self, window: usize) -> Option<f64> {
        if self.series.len() < 2 {
            return None;
        }
        let tail = &self.series[self.series.len().saturating_sub(window)..];
        let pts: Vec<(f64, f64)> = tail
            .iter()
            .filter(|(_, c)| *c > 0.0)
            .map(|(d, c)| (*d as f64, c.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        // least-squares slope of ln(cases) over days
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|(x, _)| x).sum();
        let sy: f64 = pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let r_growth = (n * sxy - sx * sy) / denom;
        Some((r_growth * SERIAL_INTERVAL_DAYS).exp())
    }
}

/// The assembled platform.
pub struct EpidemicPlatform {
    cluster: Cluster,
    triggers: TriggerRuntime,
    model: Arc<Mutex<EpidemicModel>>,
    rejected: Arc<Mutex<u64>>,
}

/// Topic for raw source-update events.
pub const SOURCES_TOPIC: &str = "epi.sources";
/// Topic for decision-maker alerts.
pub const ALERTS_TOPIC: &str = "epi.alerts";

impl EpidemicPlatform {
    /// Build the platform on a fabric cluster: topics, model trigger,
    /// alerting.
    pub fn new(cluster: Cluster) -> OctoResult<Self> {
        cluster.create_topic(SOURCES_TOPIC, TopicConfig::default())?;
        cluster.create_topic(ALERTS_TOPIC, TopicConfig::default())?;
        let triggers = TriggerRuntime::new(cluster.clone());
        let model = Arc::new(Mutex::new(EpidemicModel::default()));
        let rejected = Arc::new(Mutex::new(0u64));
        let m = model.clone();
        let rej = rejected.clone();
        let alert_cluster = cluster.clone();
        triggers.deploy(TriggerSpec {
            name: "epi-model".into(),
            topic: SOURCES_TOPIC.into(),
            // only data updates retrain the model; heartbeats etc. skip
            pattern: Some(
                Pattern::parse(&serde_json::json!({"event_type": ["data_update"]}))
                    .expect("static pattern"),
            ),
            config: FunctionConfig::default(),
            function: Arc::new(move |_ctx, batch| {
                let mut model = m.lock();
                for d in batch {
                    let report: CaseReport = serde_json::from_value(
                        d.json().map_err(|e| e.to_string())?["report"].clone(),
                    )
                    .map_err(|e| e.to_string())?;
                    if !model.ingest(&report) {
                        *rej.lock() += 1;
                        continue;
                    }
                    // retrain + alert on threshold crossing
                    if let Some(r) = model.estimate_r(14) {
                        if r > 1.0 && model.series.len() >= 5 {
                            let alert = Event::from_json(&serde_json::json!({
                                "event_type": "r_alert",
                                "r_estimate": r,
                                "day": report.day,
                            }))
                            .map_err(|e| e.to_string())?;
                            alert_cluster
                                .produce(ALERTS_TOPIC, alert, AckLevel::Leader)
                                .map_err(|e| e.to_string())?;
                        }
                    }
                }
                Ok(())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })?;
        Ok(EpidemicPlatform { cluster, triggers, model, rejected })
    }

    /// Publish one source report as a `data_update` event.
    pub fn publish_report(&self, report: &CaseReport) -> OctoResult<()> {
        let event = Event::builder()
            .key(report.source.clone())
            .json(&serde_json::json!({"event_type": "data_update", "report": report}))?
            .build();
        self.cluster.produce(SOURCES_TOPIC, event, AckLevel::Leader)?;
        Ok(())
    }

    /// Process pending updates through the model trigger.
    pub fn process(&self) -> OctoResult<usize> {
        self.triggers.poll_once("epi-model")
    }

    /// Current R estimate over the last 14 days.
    pub fn current_r(&self) -> Option<f64> {
        self.model.lock().estimate_r(14)
    }

    /// Reports rejected by cleaning/validation.
    pub fn rejected_reports(&self) -> u64 {
        *self.rejected.lock()
    }

    /// Alerts published so far.
    pub fn alert_count(&self) -> OctoResult<u64> {
        let mut n = 0;
        for p in 0..self.cluster.partition_count(ALERTS_TOPIC)? {
            n += self.cluster.latest_offset(ALERTS_TOPIC, p)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growing_outbreak_estimates_r_above_1() {
        let mut model = EpidemicModel::default();
        let mut src = DataSource::new("cdph", 100.0, 1.15, 3);
        for _ in 0..20 {
            model.ingest(&src.next_report());
        }
        let r = model.estimate_r(14).unwrap();
        // growth 1.15/day, serial interval 5 → R ≈ 1.15^5 ≈ 2.0
        assert!((1.4..=2.8).contains(&r), "R estimate {r}");
    }

    #[test]
    fn shrinking_outbreak_estimates_r_below_1() {
        let mut model = EpidemicModel::default();
        let mut src = DataSource::new("cdph", 100_000.0, 0.9, 3);
        for _ in 0..20 {
            model.ingest(&src.next_report());
        }
        let r = model.estimate_r(14).unwrap();
        assert!(r < 1.0, "R estimate {r}");
    }

    #[test]
    fn cleaning_rejects_garbage() {
        let mut model = EpidemicModel::default();
        assert!(model.ingest(&CaseReport { source: "s".into(), day: 0, new_cases: 100 }));
        assert!(!model.ingest(&CaseReport { source: "s".into(), day: 1, new_cases: -50 }));
        assert!(!model.ingest(&CaseReport { source: "s".into(), day: 1, new_cases: 100_000 }));
        assert!(model.ingest(&CaseReport { source: "s".into(), day: 1, new_cases: 120 }));
        assert_eq!(model.series.len(), 2);
    }

    #[test]
    fn r_needs_enough_data() {
        let model = EpidemicModel::default();
        assert!(model.estimate_r(14).is_none());
    }

    #[test]
    fn platform_end_to_end_alerts_on_growth() {
        let platform = EpidemicPlatform::new(Cluster::new(2)).unwrap();
        let mut src = DataSource::new("cdph", 100.0, 1.2, 5);
        for _ in 0..15 {
            platform.publish_report(&src.next_report()).unwrap();
        }
        platform.process().unwrap();
        let r = platform.current_r().unwrap();
        assert!(r > 1.0, "R {r}");
        assert!(platform.alert_count().unwrap() > 0, "decision makers notified");
    }

    #[test]
    fn platform_stays_quiet_when_outbreak_recedes() {
        let platform = EpidemicPlatform::new(Cluster::new(2)).unwrap();
        let mut src = DataSource::new("cdph", 100_000.0, 0.85, 5);
        for _ in 0..15 {
            platform.publish_report(&src.next_report()).unwrap();
        }
        platform.process().unwrap();
        assert!(platform.current_r().unwrap() < 1.0);
        assert_eq!(platform.alert_count().unwrap(), 0);
    }

    #[test]
    fn platform_counts_rejected_rows() {
        let platform = EpidemicPlatform::new(Cluster::new(2)).unwrap();
        platform
            .publish_report(&CaseReport { source: "s".into(), day: 0, new_cases: 100 })
            .unwrap();
        platform
            .publish_report(&CaseReport { source: "s".into(), day: 1, new_cases: -1 })
            .unwrap();
        platform.process().unwrap();
        assert_eq!(platform.rejected_reports(), 1);
    }
}
