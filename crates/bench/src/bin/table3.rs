//! Regenerates **Table III**: baseline performance and scalability of
//! the fabric across message sizes, acks, partitions, and cluster
//! shapes, for local and remote clients — via the calibrated DES model.
//!
//! `cargo run --release -p octopus-bench --bin table3 [-- seed]`

use octopus_bench::{figure_header, human_rate};
use octopus_fabric::{table3, Calibration};

/// The paper's Table III values for side-by-side comparison:
/// (local produce, local consume, remote produce, remote consume).
const PAPER: [(f64, f64, f64, f64); 9] = [
    (4_289_000.0, 9_840_000.0, 4_202_000.0, 9_646_000.0),
    (195_000.0, 356_000.0, 174_000.0, 367_000.0),
    (161_000.0, 356_000.0, 143_000.0, 367_000.0),
    (65_000.0, 356_000.0, 65_000.0, 367_000.0),
    (43_000.0, 91_000.0, 39_000.0, 94_000.0),
    (202_000.0, 374_000.0, 179_000.0, 389_000.0),
    (238_000.0, 751_000.0, 184_000.0, 597_000.0),
    (319_000.0, 785_000.0, 303_000.0, 813_000.0),
    (246_000.0, 777_000.0, 235_000.0, 806_000.0),
];

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    figure_header(
        "TABLE III — Baseline performance and scalability (DES model)",
        "Producer/consumer throughput in events/sec; latency in ms. \
         `paper` columns show the published measurements for comparison.",
    );
    println!("Table II cluster shapes: Baseline 2x kafka.m5.large (2 vCPU/8GB), \
              Scale-up 2x kafka.m5.xlarge (4 vCPU/16GB), Scale-out 4x kafka.m5.large\n");
    println!(
        "{:>3} {:<9} {:>3} {:>5} {:>4} {:>5} | {:>9} {:>9} {:>6} {:>6} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "#", "Cluster", "Rep", "Parts", "Acks", "Size",
        "L-Prod", "paper", "L-Med", "L-p99", "L-Cons", "paper",
        "R-Prod", "paper", "R-Cons", "paper"
    );
    let rows = table3(Calibration::default(), seed);
    for row in &rows {
        let p = PAPER[(row.index - 1) as usize];
        println!(
            "{:>3} {:<9} {:>3} {:>5} {:>4} {:>4}B | {:>9} {:>9} {:>6.0} {:>6.0} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
            row.index,
            row.cluster,
            row.replication,
            row.partitions,
            row.acks,
            row.event_size,
            human_rate(row.local_produce.0),
            human_rate(p.0),
            row.local_produce.1,
            row.local_produce.2,
            human_rate(row.local_consume),
            human_rate(p.1),
            human_rate(row.remote_produce.0),
            human_rate(p.2),
            human_rate(row.remote_consume),
            human_rate(p.3),
        );
    }
    println!("\nshape checks:");
    println!("  32B ≫ 1KB ≫ 4KB event rates:        {}", rows[0].local_produce.0 > rows[1].local_produce.0 && rows[1].local_produce.0 > rows[4].local_produce.0);
    println!("  acks=all ≪ acks=1 ≤ acks=0:          {}", rows[3].local_produce.0 < rows[2].local_produce.0 * 0.6);
    println!("  consume ≈ 2x produce (1KB):          {:.2}x", rows[1].local_consume / rows[1].local_produce.0);
    println!("  scale-out > scale-up > baseline:     {}", rows[7].local_produce.0 > rows[6].local_produce.0 && rows[6].local_produce.0 > rows[5].local_produce.0);
    println!("  rep 4 cuts writes, not reads:        {} / {:.2}x", rows[8].local_produce.0 < rows[7].local_produce.0, rows[8].local_consume / rows[7].local_consume);
}
