//! The znode tree: ZooKeeper's hierarchical, versioned namespace.
//!
//! Paths are `/`-separated absolute strings. Nodes carry data bytes, a
//! [`Stat`] with creation/modification transaction ids and versions, and
//! a [`CreateMode`]. Sequential nodes get a zero-padded monotone counter
//! appended by the parent. Ephemeral nodes are owned by a session and
//! removed when it ends.
//!
//! The tree is a *deterministic state machine*: all mutation goes through
//! [`ZnodeTree::apply`] with an explicit transaction id (`zxid`), which is
//! what lets the ZAB layer replicate it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use octopus_types::{OctoError, OctoResult};

/// How a znode is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CreateMode {
    /// Survives until explicitly deleted.
    Persistent,
    /// Persistent, with a sequence counter appended to the name.
    PersistentSequential,
    /// Deleted automatically when the owning session ends.
    Ephemeral,
    /// Ephemeral and sequential.
    EphemeralSequential,
}

impl CreateMode {
    /// Whether the node is removed on session end.
    pub fn is_ephemeral(self) -> bool {
        matches!(self, CreateMode::Ephemeral | CreateMode::EphemeralSequential)
    }

    /// Whether a sequence suffix is appended.
    pub fn is_sequential(self) -> bool {
        matches!(self, CreateMode::PersistentSequential | CreateMode::EphemeralSequential)
    }
}

/// Metadata of a znode (a subset of ZooKeeper's Stat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stat {
    /// zxid of the transaction that created the node.
    pub czxid: u64,
    /// zxid of the transaction that last modified the node's data.
    pub mzxid: u64,
    /// Number of data changes.
    pub version: u32,
    /// Number of child-list changes.
    pub cversion: u32,
    /// Owning session for ephemeral nodes (0 for persistent).
    pub ephemeral_owner: u64,
    /// Number of children.
    pub num_children: u32,
}

/// A node in the tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Znode {
    /// Node payload.
    pub data: Vec<u8>,
    /// Node metadata.
    pub stat: Stat,
    /// Creation mode.
    pub mode: CreateMode,
}

/// A replicated transaction against the tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Txn {
    /// Create a node. For sequential modes the stored path gains a
    /// 10-digit counter suffix; the result reports the final path.
    Create {
        /// Requested path (parent must exist).
        path: String,
        /// Initial data.
        data: Vec<u8>,
        /// Creation mode.
        mode: CreateMode,
        /// Owning session (used for ephemerals; 0 = none).
        session: u64,
    },
    /// Set a node's data. `expected_version` of `None` means
    /// unconditional; `Some(v)` is a compare-and-set.
    SetData {
        /// Target path.
        path: String,
        /// New data.
        data: Vec<u8>,
        /// Optional version guard.
        expected_version: Option<u32>,
    },
    /// Delete a node (must have no children).
    Delete {
        /// Target path.
        path: String,
        /// Optional version guard.
        expected_version: Option<u32>,
    },
    /// Remove every ephemeral node owned by a session (session close).
    CloseSession {
        /// The closing session.
        session: u64,
    },
}

/// Result of applying a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnResult {
    /// Node created at the (possibly sequence-suffixed) path.
    Created(String),
    /// Data set; new version reported.
    Set(u32),
    /// Node deleted.
    Deleted,
    /// Session closed; paths of removed ephemerals.
    SessionClosed(Vec<String>),
    /// The transaction failed (failures are deterministic, so replicas
    /// agree on them too).
    Error(String),
}

/// The deterministic znode tree.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ZnodeTree {
    nodes: BTreeMap<String, Znode>,
    /// Per-parent sequence counters for sequential creates.
    seq_counters: BTreeMap<String, u64>,
    last_applied_zxid: u64,
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

fn validate_path(path: &str) -> OctoResult<()> {
    if !path.starts_with('/') {
        return Err(OctoError::Invalid(format!("path must be absolute: {path}")));
    }
    if path != "/" && path.ends_with('/') {
        return Err(OctoError::Invalid(format!("path must not end with '/': {path}")));
    }
    if path.contains("//") {
        return Err(OctoError::Invalid(format!("empty path segment: {path}")));
    }
    Ok(())
}

impl ZnodeTree {
    /// A tree containing only the root node `/`.
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            "/".to_string(),
            Znode {
                data: Vec::new(),
                stat: Stat {
                    czxid: 0,
                    mzxid: 0,
                    version: 0,
                    cversion: 0,
                    ephemeral_owner: 0,
                    num_children: 0,
                },
                mode: CreateMode::Persistent,
            },
        );
        ZnodeTree { nodes, seq_counters: BTreeMap::new(), last_applied_zxid: 0 }
    }

    /// zxid of the last applied transaction.
    pub fn last_applied_zxid(&self) -> u64 {
        self.last_applied_zxid
    }

    /// Apply a transaction at `zxid`. Deterministic: identical trees fed
    /// identical (zxid, txn) sequences remain identical.
    pub fn apply(&mut self, zxid: u64, txn: &Txn) -> TxnResult {
        debug_assert!(zxid > self.last_applied_zxid, "zxids must be applied in order");
        self.last_applied_zxid = zxid;
        match txn {
            Txn::Create { path, data, mode, session } => {
                self.apply_create(zxid, path, data, *mode, *session)
            }
            Txn::SetData { path, data, expected_version } => {
                self.apply_set(zxid, path, data, *expected_version)
            }
            Txn::Delete { path, expected_version } => {
                self.apply_delete(zxid, path, *expected_version)
            }
            Txn::CloseSession { session } => self.apply_close_session(zxid, *session),
        }
    }

    fn apply_create(
        &mut self,
        zxid: u64,
        path: &str,
        data: &[u8],
        mode: CreateMode,
        session: u64,
    ) -> TxnResult {
        if let Err(e) = validate_path(path) {
            return TxnResult::Error(e.to_string());
        }
        if path == "/" {
            return TxnResult::Error("cannot create the root".into());
        }
        let parent = match parent_of(path) {
            Some(p) => p.to_string(),
            None => return TxnResult::Error(format!("malformed path: {path}")),
        };
        match self.nodes.get(&parent) {
            None => return TxnResult::Error(format!("parent does not exist: {parent}")),
            Some(p) if p.mode.is_ephemeral() => {
                return TxnResult::Error("ephemeral nodes cannot have children".into())
            }
            Some(_) => {}
        }
        let final_path = if mode.is_sequential() {
            let ctr = self.seq_counters.entry(parent.clone()).or_insert(0);
            let p = format!("{path}{:010}", *ctr);
            *ctr += 1;
            p
        } else {
            path.to_string()
        };
        if self.nodes.contains_key(&final_path) {
            return TxnResult::Error(format!("node exists: {final_path}"));
        }
        if mode.is_ephemeral() && session == 0 {
            return TxnResult::Error("ephemeral create requires a session".into());
        }
        self.nodes.insert(
            final_path.clone(),
            Znode {
                data: data.to_vec(),
                stat: Stat {
                    czxid: zxid,
                    mzxid: zxid,
                    version: 0,
                    cversion: 0,
                    ephemeral_owner: if mode.is_ephemeral() { session } else { 0 },
                    num_children: 0,
                },
                mode,
            },
        );
        // Re-look the parent up rather than trusting the earlier check:
        // should a future refactor let a delete interleave (the
        // historical panic path), the create rolls back and reports a
        // typed error instead of crashing the service.
        let Some(parent_node) = self.nodes.get_mut(&parent) else {
            self.nodes.remove(&final_path);
            return TxnResult::Error(format!("parent does not exist: {parent}"));
        };
        parent_node.stat.cversion += 1;
        parent_node.stat.num_children += 1;
        TxnResult::Created(final_path)
    }

    fn apply_set(
        &mut self,
        zxid: u64,
        path: &str,
        data: &[u8],
        expected_version: Option<u32>,
    ) -> TxnResult {
        match self.nodes.get_mut(path) {
            None => TxnResult::Error(format!("no node at {path}")),
            Some(node) => {
                if let Some(v) = expected_version {
                    if node.stat.version != v {
                        return TxnResult::Error(format!(
                            "version mismatch at {path}: expected {v}, found {}",
                            node.stat.version
                        ));
                    }
                }
                node.data = data.to_vec();
                node.stat.version += 1;
                node.stat.mzxid = zxid;
                TxnResult::Set(node.stat.version)
            }
        }
    }

    fn apply_delete(&mut self, _zxid: u64, path: &str, expected_version: Option<u32>) -> TxnResult {
        if path == "/" {
            return TxnResult::Error("cannot delete the root".into());
        }
        let Some(node) = self.nodes.get(path) else {
            return TxnResult::Error(format!("no node at {path}"));
        };
        if node.stat.num_children > 0 {
            return TxnResult::Error(format!("node {path} has children"));
        }
        if let Some(v) = expected_version {
            if node.stat.version != v {
                return TxnResult::Error(format!(
                    "version mismatch at {path}: expected {v}, found {}",
                    node.stat.version
                ));
            }
        }
        self.nodes.remove(path);
        if let Some(parent) = parent_of(path) {
            let parent = parent.to_string();
            if let Some(p) = self.nodes.get_mut(&parent) {
                p.stat.cversion += 1;
                p.stat.num_children -= 1;
            }
        }
        TxnResult::Deleted
    }

    fn apply_close_session(&mut self, _zxid: u64, session: u64) -> TxnResult {
        // Collect deepest-first so children go before parents.
        let mut doomed: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.stat.ephemeral_owner == session)
            .map(|(p, _)| p.clone())
            .collect();
        doomed.sort_by_key(|p| std::cmp::Reverse(p.len()));
        for path in &doomed {
            self.nodes.remove(path);
            if let Some(parent) = parent_of(path) {
                let parent = parent.to_string();
                if let Some(p) = self.nodes.get_mut(&parent) {
                    p.stat.cversion += 1;
                    p.stat.num_children -= 1;
                }
            }
        }
        doomed.sort();
        TxnResult::SessionClosed(doomed)
    }

    // ----- reads (not replicated; served from any replica) -----

    /// Get a node.
    pub fn get(&self, path: &str) -> OctoResult<&Znode> {
        self.nodes.get(path).ok_or_else(|| OctoError::NotFound(format!("znode {path}")))
    }

    /// Whether a node exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Names (not full paths) of the children of `path`, sorted.
    pub fn children(&self, path: &str) -> OctoResult<Vec<String>> {
        if !self.nodes.contains_key(path) {
            return Err(OctoError::NotFound(format!("znode {path}")));
        }
        let prefix = if path == "/" { "/".to_string() } else { format!("{path}/") };
        let mut out = Vec::new();
        for candidate in self.nodes.range(prefix.clone()..) {
            let (p, _) = candidate;
            if !p.starts_with(&prefix) {
                break;
            }
            let rest = &p[prefix.len()..];
            if !rest.is_empty() && !rest.contains('/') {
                out.push(rest.to_string());
            }
        }
        Ok(out)
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create(tree: &mut ZnodeTree, zxid: u64, path: &str) -> TxnResult {
        tree.apply(
            zxid,
            &Txn::Create {
                path: path.into(),
                data: b"x".to_vec(),
                mode: CreateMode::Persistent,
                session: 0,
            },
        )
    }

    #[test]
    fn create_get_children() {
        let mut t = ZnodeTree::new();
        assert_eq!(create(&mut t, 1, "/topics"), TxnResult::Created("/topics".into()));
        assert_eq!(create(&mut t, 2, "/topics/sdl"), TxnResult::Created("/topics/sdl".into()));
        assert_eq!(create(&mut t, 3, "/topics/epi"), TxnResult::Created("/topics/epi".into()));
        assert_eq!(t.children("/topics").unwrap(), vec!["epi", "sdl"]);
        assert_eq!(t.children("/").unwrap(), vec!["topics"]);
        assert_eq!(t.get("/topics/sdl").unwrap().data, b"x");
        assert_eq!(t.get("/topics").unwrap().stat.num_children, 2);
        assert_eq!(t.get("/topics").unwrap().stat.cversion, 2);
    }

    #[test]
    fn create_requires_parent_and_uniqueness() {
        let mut t = ZnodeTree::new();
        assert!(matches!(create(&mut t, 1, "/a/b"), TxnResult::Error(_)));
        create(&mut t, 2, "/a");
        assert!(matches!(create(&mut t, 3, "/a"), TxnResult::Error(_)));
    }

    #[test]
    fn create_racing_delete_returns_error_not_panic() {
        // Regression: the create path used `.expect("checked")` on the
        // parent lookup, so a delete ordered between a parent's
        // creation and its child's would panic the service instead of
        // answering "no node". Both lookups are typed errors now.
        let mut t = ZnodeTree::new();
        create(&mut t, 1, "/a");
        assert_eq!(
            t.apply(2, &Txn::Delete { path: "/a".into(), expected_version: None }),
            TxnResult::Deleted
        );
        match create(&mut t, 3, "/a/b") {
            TxnResult::Error(msg) => assert!(msg.contains("parent does not exist")),
            other => panic!("expected typed error, got {other:?}"),
        }
        // an ephemeral parent is likewise a typed refusal
        t.apply(
            4,
            &Txn::Create {
                path: "/e".into(),
                data: vec![],
                mode: CreateMode::Ephemeral,
                session: 7,
            },
        );
        assert!(matches!(create(&mut t, 5, "/e/child"), TxnResult::Error(_)));
    }

    #[test]
    fn path_validation() {
        let mut t = ZnodeTree::new();
        assert!(matches!(create(&mut t, 1, "relative"), TxnResult::Error(_)));
        assert!(matches!(create(&mut t, 2, "/a/"), TxnResult::Error(_)));
        assert!(matches!(create(&mut t, 3, "/a//b"), TxnResult::Error(_)));
        assert!(matches!(create(&mut t, 4, "/"), TxnResult::Error(_)));
    }

    #[test]
    fn set_with_version_guard() {
        let mut t = ZnodeTree::new();
        create(&mut t, 1, "/cfg");
        let r = t.apply(
            2,
            &Txn::SetData { path: "/cfg".into(), data: b"v1".to_vec(), expected_version: Some(0) },
        );
        assert_eq!(r, TxnResult::Set(1));
        // stale CAS fails
        let r = t.apply(
            3,
            &Txn::SetData { path: "/cfg".into(), data: b"v2".to_vec(), expected_version: Some(0) },
        );
        assert!(matches!(r, TxnResult::Error(_)));
        assert_eq!(t.get("/cfg").unwrap().data, b"v1");
        // unconditional set succeeds
        let r = t.apply(
            4,
            &Txn::SetData { path: "/cfg".into(), data: b"v2".to_vec(), expected_version: None },
        );
        assert_eq!(r, TxnResult::Set(2));
        assert_eq!(t.get("/cfg").unwrap().stat.mzxid, 4);
        assert_eq!(t.get("/cfg").unwrap().stat.czxid, 1);
    }

    #[test]
    fn delete_rules() {
        let mut t = ZnodeTree::new();
        create(&mut t, 1, "/a");
        create(&mut t, 2, "/a/b");
        // parent with children cannot be deleted
        assert!(matches!(
            t.apply(3, &Txn::Delete { path: "/a".into(), expected_version: None }),
            TxnResult::Error(_)
        ));
        assert_eq!(
            t.apply(4, &Txn::Delete { path: "/a/b".into(), expected_version: None }),
            TxnResult::Deleted
        );
        assert_eq!(
            t.apply(5, &Txn::Delete { path: "/a".into(), expected_version: None }),
            TxnResult::Deleted
        );
        assert!(matches!(
            t.apply(6, &Txn::Delete { path: "/a".into(), expected_version: None }),
            TxnResult::Error(_)
        ));
        assert!(matches!(
            t.apply(7, &Txn::Delete { path: "/".into(), expected_version: None }),
            TxnResult::Error(_)
        ));
    }

    #[test]
    fn sequential_nodes_count_up() {
        let mut t = ZnodeTree::new();
        create(&mut t, 1, "/locks");
        for (i, zxid) in (2..5).enumerate() {
            let r = t.apply(
                zxid,
                &Txn::Create {
                    path: "/locks/lock-".into(),
                    data: vec![],
                    mode: CreateMode::PersistentSequential,
                    session: 0,
                },
            );
            assert_eq!(r, TxnResult::Created(format!("/locks/lock-{i:010}")));
        }
        assert_eq!(
            t.children("/locks").unwrap(),
            vec!["lock-0000000000", "lock-0000000001", "lock-0000000002"]
        );
    }

    #[test]
    fn ephemeral_lifecycle() {
        let mut t = ZnodeTree::new();
        create(&mut t, 1, "/brokers");
        // ephemeral without session is an error
        assert!(matches!(
            t.apply(
                2,
                &Txn::Create {
                    path: "/brokers/b0".into(),
                    data: vec![],
                    mode: CreateMode::Ephemeral,
                    session: 0,
                }
            ),
            TxnResult::Error(_)
        ));
        for (i, zxid) in [(0u64, 3u64), (1, 4)] {
            t.apply(
                zxid,
                &Txn::Create {
                    path: format!("/brokers/b{i}"),
                    data: vec![],
                    mode: CreateMode::Ephemeral,
                    session: 100 + i,
                },
            );
        }
        assert_eq!(t.children("/brokers").unwrap().len(), 2);
        // ephemerals cannot have children
        assert!(matches!(create(&mut t, 5, "/brokers/b0/x"), TxnResult::Error(_)));
        // closing session 100 removes only b0
        let r = t.apply(6, &Txn::CloseSession { session: 100 });
        assert_eq!(r, TxnResult::SessionClosed(vec!["/brokers/b0".into()]));
        assert_eq!(t.children("/brokers").unwrap(), vec!["b1"]);
        assert_eq!(t.get("/brokers").unwrap().stat.num_children, 1);
    }

    #[test]
    fn determinism_across_replicas() {
        let txns: Vec<Txn> = vec![
            Txn::Create { path: "/t".into(), data: b"a".to_vec(), mode: CreateMode::Persistent, session: 0 },
            Txn::Create { path: "/t/q-".into(), data: vec![], mode: CreateMode::PersistentSequential, session: 0 },
            Txn::SetData { path: "/t".into(), data: b"b".to_vec(), expected_version: Some(0) },
            Txn::Create { path: "/t/e".into(), data: vec![], mode: CreateMode::Ephemeral, session: 9 },
            Txn::Delete { path: "/t/q-0000000000".into(), expected_version: None },
            Txn::CloseSession { session: 9 },
            Txn::Delete { path: "/bogus".into(), expected_version: None }, // error, deterministically
        ];
        let mut a = ZnodeTree::new();
        let mut b = ZnodeTree::new();
        for (i, txn) in txns.iter().enumerate() {
            let ra = a.apply((i + 1) as u64, txn);
            let rb = b.apply((i + 1) as u64, txn);
            assert_eq!(ra, rb);
        }
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn children_of_missing_node_errors() {
        let t = ZnodeTree::new();
        assert!(t.children("/missing").is_err());
        assert!(t.get("/missing").is_err());
        assert!(!t.exists("/missing"));
        assert!(t.exists("/"));
        assert!(t.is_empty());
    }

    #[test]
    fn children_listing_does_not_include_grandchildren() {
        let mut t = ZnodeTree::new();
        create(&mut t, 1, "/a");
        create(&mut t, 2, "/a/b");
        create(&mut t, 3, "/a/b/c");
        create(&mut t, 4, "/ab"); // sibling with prefix-overlapping name
        assert_eq!(t.children("/a").unwrap(), vec!["b"]);
        assert_eq!(t.children("/").unwrap(), vec!["a", "ab"]);
        assert_eq!(t.len(), 5);
    }
}
