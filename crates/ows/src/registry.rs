//! The trigger function registry.
//!
//! In the paper a trigger's function is an AWS Lambda the user deploys;
//! here functions are Rust closures registered under a name, and
//! `PUT /trigger/` references that name (the moral equivalent of the
//! Lambda ARN).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use octopus_trigger::TriggerFunction;
use octopus_types::{OctoError, OctoResult};

/// Named functions deployable as triggers.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    functions: Arc<RwLock<HashMap<String, TriggerFunction>>>,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a function under `name`.
    pub fn register(
        &self,
        name: &str,
        f: impl Fn(&octopus_trigger::FunctionContext, &[octopus_types::DeliveredEvent]) -> Result<(), String>
            + Send
            + Sync
            + 'static,
    ) {
        self.functions.write().insert(name.to_string(), Arc::new(f));
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> OctoResult<TriggerFunction> {
        self.functions
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| OctoError::NotFound(format!("function {name}")))
    }

    /// Registered function names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.functions.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = FunctionRegistry::new();
        reg.register("noop", |_ctx, _batch| Ok(()));
        reg.register("fail", |_ctx, _batch| Err("nope".into()));
        assert_eq!(reg.names(), vec!["fail", "noop"]);
        assert!(reg.get("noop").is_ok());
        assert!(matches!(reg.get("ghost"), Err(OctoError::NotFound(_))));
    }

    #[test]
    fn replace_updates_function() {
        let reg = FunctionRegistry::new();
        reg.register("f", |_ctx, _b| Err("v1".into()));
        reg.register("f", |_ctx, _b| Ok(()));
        let f = reg.get("f").unwrap();
        let ctx = octopus_trigger::FunctionContext {
            trigger: "t".into(),
            acting_as: octopus_types::Uid(1),
            invocation: 0,
            attempt: 0,
        };
        assert!(f(&ctx, &[]).is_ok());
    }
}
