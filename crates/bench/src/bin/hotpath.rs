//! Hot-path benchmark: the broker data plane under concurrency.
//!
//! Five probes, each exercising one lever of the paper's Table III /
//! Fig. 3 shapes:
//!
//! 1. **Produce latency** by ack level × replication factor (p50/p99
//!    per produce, aggregate events/s) with concurrent producers — the
//!    acks=all × rf=3 row is dominated by replication fan-out, so it is
//!    the one parallel ISR replication must move.
//! 2. **Fetch throughput while a producer is appending** — measures
//!    reader/writer contention on the partition log (snapshot reads
//!    must keep fetchers off the append mutex).
//! 3. **CRC32C throughput** — MB/s of the record checksum kernel.
//! 4. **Group-commit fsync** — concurrent acks=all producers on a
//!    durable `FlushPolicy::PerBatch` cluster; reports latency and the
//!    fsyncs-per-batch ratio (group commit drives it below 1).
//! 5. **Exactly-once overhead** — the acks=all × rf=3 sweep repeated
//!    with producer stamps on every batch, so the leader runs the
//!    dedup-window check inside its append lock; reports the cost of
//!    idempotence relative to the unstamped baseline.
//! 6. **Network tax** — the same produce/fetch workload driven twice
//!    through the [`Transport`] abstraction: once in-process, once over
//!    a real loopback TCP socket (wire frames, CRC, a server round
//!    trip). Reports throughput and p99 for both so the cost of the
//!    networked data plane is tracked across PRs.
//!
//! Results land in `results/hotpath.txt` (human) and
//! `BENCH_hotpath.json` at the repo root (machine readable, consumed
//! by `scripts/ci.sh` and tracked across PRs). The run doubles as a
//! correctness smoke: every probe verifies its invariants (dense
//! offsets, no lost acks=all record, intact ISR) and the process exits
//! non-zero on any violation.
//!
//! `cargo run --release -p octopus-bench --bin hotpath [-- --smoke]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use octopus_bench::{figure_header, human_rate, write_result};
use octopus_broker::log::PartitionLog;
use octopus_broker::{
    crc32c, AckLevel, Cluster, Compression, FlushPolicy, FsColdStore, ProducerStamp, RecordBatch,
    SeekMode, StoreMetrics, StoreOptions, TempDir, TopicConfig,
};
use octopus_types::obs::{labeled, TraceContext};
use octopus_types::{AtomicHistogram, Event, MetricsRegistry, SpanSink};
use octopus_wire::{
    Authenticator, InProcessTransport, TcpTransport, TcpTransportConfig, Transport, WireServer,
    WireServerConfig,
};

struct Scale {
    smoke: bool,
    /// Batches per producer thread in the produce sweeps.
    batches: usize,
    /// Events per batch.
    batch_events: usize,
    /// Concurrent producer threads.
    producers: usize,
    /// Fetcher threads in the contention probe.
    fetchers: usize,
    /// Records the contention probe's producer appends.
    fetch_records: usize,
    /// Bytes hashed per CRC pass.
    crc_bytes: usize,
    /// CRC passes.
    crc_passes: usize,
    /// Batches per producer in the group-commit probe.
    durable_batches: usize,
    /// Batches pushed through each transport in the network probe.
    net_batches: usize,
    /// Batches appended into the storage probe's partition store.
    storage_batches: usize,
    /// Timed read repetitions per seek mode in the deep-fetch probe.
    storage_read_iters: usize,
    /// Batches per codec side in the compression probe.
    compress_batches: usize,
}

impl Scale {
    fn new(smoke: bool) -> Self {
        if smoke {
            Scale {
                smoke,
                batches: 150,
                batch_events: 16,
                producers: 3,
                fetchers: 2,
                fetch_records: 4_000,
                crc_bytes: 1 << 20,
                crc_passes: 16,
                durable_batches: 40,
                net_batches: 150,
                storage_batches: 128,
                storage_read_iters: 30,
                compress_batches: 96,
            }
        } else {
            Scale {
                smoke,
                batches: 1_500,
                batch_events: 32,
                producers: 4,
                fetchers: 4,
                fetch_records: 40_000,
                crc_bytes: 4 << 20,
                crc_passes: 64,
                durable_batches: 300,
                net_batches: 1_000,
                storage_batches: 512,
                storage_read_iters: 100,
                compress_batches: 400,
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("hotpath invariant violated: {msg}");
    std::process::exit(1);
}

fn check(cond: bool, msg: &str) {
    if !cond {
        die(msg);
    }
}

struct ProduceRow {
    acks: &'static str,
    rf: u32,
    p50_us: f64,
    p99_us: f64,
    events_per_sec: f64,
}

/// Concurrent produce sweep on a volatile 3-broker cluster; verifies
/// that every acked batch is fetchable and offsets are dense.
fn produce_sweep(acks: AckLevel, rf: u32, scale: &Scale) -> ProduceRow {
    let cluster = Cluster::new(3);
    let min_isr = if acks == AckLevel::All { rf.min(2) } else { 1 };
    cluster
        .create_topic(
            "hot",
            TopicConfig::default()
                .with_partitions(1)
                .with_replication(rf)
                .with_min_insync(min_isr),
        )
        .expect("topic");
    let hist = Arc::new(AtomicHistogram::new());
    let payload = vec![0xA5u8; 128];
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..scale.producers {
        let cluster = cluster.clone();
        let hist = Arc::clone(&hist);
        let payload = payload.clone();
        let batches = scale.batches;
        let batch_events = scale.batch_events;
        handles.push(std::thread::spawn(move || {
            for _ in 0..batches {
                let events: Vec<Event> =
                    (0..batch_events).map(|_| Event::from_bytes(payload.clone())).collect();
                let batch = RecordBatch::new(events);
                let t = Instant::now();
                cluster.produce_batch("hot", 0, batch, acks).expect("produce");
                hist.record(t.elapsed().as_nanos() as u64);
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total_events = (scale.producers * scale.batches * scale.batch_events) as u64;

    // invariants: every acked record is present, offsets dense, ISR intact
    check(
        cluster.latest_offset("hot", 0).expect("latest") == total_events,
        "acked records missing from the leader log",
    );
    let mut offset = 0u64;
    while offset < total_events {
        let recs = cluster.fetch("hot", 0, offset, 10_000).expect("fetch back");
        check(!recs.is_empty(), "fetch returned empty mid-log");
        for r in &recs {
            check(r.offset == offset, "offsets not dense");
            offset += 1;
        }
    }
    check(
        cluster.isr_of("hot", 0).expect("isr").len() as u32 == rf,
        "ISR shrank under a healthy cluster",
    );

    let snap = hist.snapshot();
    ProduceRow {
        acks: match acks {
            AckLevel::None => "0",
            AckLevel::Leader => "1",
            AckLevel::All => "all",
        },
        rf,
        p50_us: snap.median() as f64 / 1e3,
        p99_us: snap.p99() as f64 / 1e3,
        events_per_sec: total_events as f64 / elapsed,
    }
}

struct FetchResult {
    records_per_sec: f64,
    produce_p99_us: f64,
}

/// Fetch throughput with a live concurrent producer: fetchers replay
/// the log start-to-end in a loop while the producer appends.
fn fetch_contention(scale: &Scale) -> FetchResult {
    let cluster = Cluster::new(2);
    cluster
        .create_topic("feed", TopicConfig::default().with_partitions(1).with_replication(2))
        .expect("topic");
    // pre-fill so fetchers have a log to chew on from the start
    let payload = vec![0x5Au8; 128];
    let pre = scale.fetch_records / 2;
    for _ in 0..pre / 8 {
        let events: Vec<Event> = (0..8).map(|_| Event::from_bytes(payload.clone())).collect();
        cluster.produce_batch("feed", 0, RecordBatch::new(events), AckLevel::Leader).expect("pre");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let fetched = Arc::new(AtomicU64::new(0));
    let mut fetchers = Vec::new();
    for _ in 0..scale.fetchers {
        let cluster = cluster.clone();
        let stop = Arc::clone(&stop);
        let fetched = Arc::clone(&fetched);
        fetchers.push(std::thread::spawn(move || {
            let mut offset = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match cluster.fetch("feed", 0, offset, 500) {
                    Ok(recs) if recs.is_empty() => offset = 0, // caught up: replay
                    Ok(recs) => {
                        for r in &recs {
                            if r.offset != offset {
                                die("fetch offsets not dense under concurrency");
                            }
                            offset += 1;
                        }
                        fetched.fetch_add(recs.len() as u64, Ordering::Relaxed);
                    }
                    Err(_) => offset = 0, // retention/trim race in theory; restart
                }
            }
        }));
    }
    // producer appends the second half while fetchers run
    let produce_hist = AtomicHistogram::new();
    let t0 = Instant::now();
    for _ in 0..(scale.fetch_records - pre) / 8 {
        let events: Vec<Event> = (0..8).map(|_| Event::from_bytes(payload.clone())).collect();
        let t = Instant::now();
        cluster
            .produce_batch("feed", 0, RecordBatch::new(events), AckLevel::Leader)
            .expect("live produce");
        produce_hist.record(t.elapsed().as_nanos() as u64);
    }
    // keep fetchers running a beat longer so the window is fetch-bound
    while t0.elapsed().as_millis() < if scale.smoke { 250 } else { 1_500 } {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed().as_secs_f64();
    for f in fetchers {
        f.join().expect("fetcher thread");
    }
    FetchResult {
        records_per_sec: fetched.load(Ordering::Relaxed) as f64 / elapsed,
        produce_p99_us: produce_hist.snapshot().p99() as f64 / 1e3,
    }
}

/// CRC32C kernel throughput in MB/s.
fn crc_throughput(scale: &Scale) -> f64 {
    let buf: Vec<u8> = (0..scale.crc_bytes).map(|i| (i * 31 + 7) as u8).collect();
    // warm-up + sanity: the kernel must agree with itself across calls
    let first = crc32c(&buf);
    check(crc32c(&buf) == first, "crc32c not deterministic");
    let t0 = Instant::now();
    let mut acc = 0u32;
    for _ in 0..scale.crc_passes {
        acc ^= crc32c(&buf);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    (scale.crc_bytes * scale.crc_passes) as f64 / 1e6 / secs
}

struct DurableResult {
    p50_us: f64,
    p99_us: f64,
    batches: u64,
    flushes: u64,
}

/// Concurrent acks=all producers against a durable PerBatch cluster:
/// group commit should amortize fsyncs below one per batch.
fn durable_group_commit(scale: &Scale) -> DurableResult {
    let tmp = TempDir::new("octopus-data-hotpath");
    let cluster = Cluster::builder(2)
        .data_dir(tmp.path())
        .flush_policy(FlushPolicy::PerBatch)
        .build();
    cluster
        .create_topic("dur", TopicConfig::default().with_partitions(1).with_replication(2))
        .expect("topic");
    let hist = Arc::new(AtomicHistogram::new());
    let payload = vec![0x3Cu8; 256];
    let mut handles = Vec::new();
    for _ in 0..scale.producers {
        let cluster = cluster.clone();
        let hist = Arc::clone(&hist);
        let payload = payload.clone();
        let batches = scale.durable_batches;
        handles.push(std::thread::spawn(move || {
            for _ in 0..batches {
                let batch = RecordBatch::new(vec![Event::from_bytes(payload.clone())]);
                let t = Instant::now();
                cluster.produce_batch("dur", 0, batch, AckLevel::All).expect("durable produce");
                hist.record(t.elapsed().as_nanos() as u64);
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    let total = (scale.producers * scale.durable_batches) as u64;
    check(
        cluster.latest_offset("dur", 0).expect("latest") == total,
        "durable log lost acked records",
    );
    let flushes = cluster
        .metrics()
        .snapshot()
        .counters
        .get("octopus_store_flushes_total")
        .copied()
        .unwrap_or(0);
    let snap = hist.snapshot();
    DurableResult {
        p50_us: snap.median() as f64 / 1e3,
        p99_us: snap.p99() as f64 / 1e3,
        batches: total,
        flushes,
    }
}

struct EosRow {
    p50_us: f64,
    p99_us: f64,
    events_per_sec: f64,
}

/// Exactly-once overhead probe: the acks=all × rf=3 sweep with and
/// without producer stamps. Stamped runs pay for pid registration,
/// the per-batch sequence bookkeeping, and the broker's dedup-window
/// check + record inside the leader append lock.
fn eos_overhead(idempotent: bool, scale: &Scale) -> EosRow {
    let cluster = Cluster::new(3);
    cluster
        .create_topic(
            "eos",
            TopicConfig::default().with_partitions(1).with_replication(3).with_min_insync(2),
        )
        .expect("topic");
    let hist = Arc::new(AtomicHistogram::new());
    let payload = vec![0xE0u8; 128];
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for tid in 0..scale.producers {
        let cluster = cluster.clone();
        let hist = Arc::clone(&hist);
        let payload = payload.clone();
        let batches = scale.batches;
        let batch_events = scale.batch_events;
        handles.push(std::thread::spawn(move || {
            // one pid per thread: dedup windows are per (pid, partition),
            // so threads must not interleave sequences under a shared pid
            let identity = if idempotent {
                Some(cluster.register_producer(&format!("bench-eos-{tid}")).expect("pid"))
            } else {
                None
            };
            let mut seq = 0u64;
            for _ in 0..batches {
                let events: Vec<Event> =
                    (0..batch_events).map(|_| Event::from_bytes(payload.clone())).collect();
                let mut batch = RecordBatch::new(events);
                if let Some(id) = identity {
                    batch = batch.with_producer(
                        ProducerStamp { pid: id.pid, epoch: id.epoch, seq },
                        false,
                    );
                    seq += batch_events as u64;
                }
                let t = Instant::now();
                let receipt =
                    cluster.produce_batch("eos", 0, batch, AckLevel::All).expect("produce");
                check(!receipt.deduplicated, "healthy run must never hit the dedup window");
                hist.record(t.elapsed().as_nanos() as u64);
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total_events = (scale.producers * scale.batches * scale.batch_events) as u64;
    check(
        cluster.latest_offset("eos", 0).expect("latest") == total_events,
        "eos sweep lost acked records",
    );
    let snap = hist.snapshot();
    EosRow {
        p50_us: snap.median() as f64 / 1e3,
        p99_us: snap.p99() as f64 / 1e3,
        events_per_sec: total_events as f64 / elapsed,
    }
}

struct ReassignResult {
    steady_p99_us: f64,
    during_move_p99_us: f64,
    moved_records: u64,
    throttle_bytes_per_sec: u64,
    /// Produce p99 during the move stayed within 3x of steady state
    /// (with a 2ms floor so microsecond-scale noise can't fail a run).
    within_3x: bool,
}

/// Reassignment-impact probe: produce p99 against a partition while a
/// throttled learner is catching up + the assignment commits, compared
/// to the same workload in steady state. The mover shares the leader's
/// log (chunked copy reads, then the commit's brief lock hold), so
/// this measures exactly what an online move costs the hot path.
fn reassignment_probe(scale: &Scale) -> ReassignResult {
    let cluster = Cluster::new(3);
    cluster
        .create_topic(
            "mov",
            TopicConfig::default().with_partitions(1).with_replication(3).with_min_insync(2),
        )
        .expect("topic");
    let payload = vec![0x4Du8; 128];
    // backlog for the learner to copy, so the move spans the window
    let pre_records = scale.fetch_records / 2;
    for _ in 0..pre_records / 16 {
        let events: Vec<Event> = (0..16).map(|_| Event::from_bytes(payload.clone())).collect();
        cluster.produce_batch("mov", 0, RecordBatch::new(events), AckLevel::All).expect("pre");
    }

    // steady-state produce p99
    let steady_hist = AtomicHistogram::new();
    for _ in 0..scale.batches {
        let events: Vec<Event> =
            (0..scale.batch_events).map(|_| Event::from_bytes(payload.clone())).collect();
        let t = Instant::now();
        cluster.produce_batch("mov", 0, RecordBatch::new(events), AckLevel::All).expect("steady");
        steady_hist.record(t.elapsed().as_nanos() as u64);
    }

    // throttle sized so the catch-up takes on the order of a second
    let backlog_bytes = (pre_records as u64) * 160;
    let rate = backlog_bytes.max(64 * 1024);
    let to = cluster.add_broker().expect("add broker");
    let leader = cluster.leader_broker("mov", 0).expect("leader");
    let from = cluster
        .replicas_of("mov", 0)
        .expect("replicas")
        .into_iter()
        .find(|r| *r != leader)
        .expect("follower replica");
    let done = Arc::new(AtomicBool::new(false));
    let mover = {
        let cluster = cluster.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let throttle = octopus_broker::MoveThrottle::new(rate);
            let res = cluster.alter_partition_assignment("mov", 0, from, to, &throttle);
            done.store(true, Ordering::Release);
            res
        })
    };

    // produce while the move is in flight (bounded; at least a quarter
    // of the steady window even if the move commits early)
    let during_hist = AtomicHistogram::new();
    let min_batches = scale.batches / 4;
    let cap = scale.batches * 20;
    let mut n = 0usize;
    while (!done.load(Ordering::Acquire) || n < min_batches) && n < cap {
        let events: Vec<Event> =
            (0..scale.batch_events).map(|_| Event::from_bytes(payload.clone())).collect();
        let t = Instant::now();
        cluster.produce_batch("mov", 0, RecordBatch::new(events), AckLevel::All).expect("during");
        during_hist.record(t.elapsed().as_nanos() as u64);
        n += 1;
    }
    mover.join().expect("mover thread").expect("reassignment");

    // the move really happened: the new broker serves the partition in
    // a full ISR and the old follower is gone from the assignment
    let replicas = cluster.replicas_of("mov", 0).expect("replicas");
    check(replicas.contains(&to), "reassignment did not land on the new broker");
    check(!replicas.contains(&from), "reassignment left the old replica in place");
    check(
        cluster.isr_of("mov", 0).expect("isr").len() == 3,
        "ISR not full after the reassignment",
    );
    let moved_records = cluster
        .reassignments()
        .iter()
        .find(|r| r.topic == "mov")
        .map(|r| r.copied)
        .unwrap_or(0);
    check(moved_records > 0, "reassignment tracker recorded no copied records");

    let steady_p99_us = steady_hist.snapshot().p99() as f64 / 1e3;
    let during_move_p99_us = during_hist.snapshot().p99() as f64 / 1e3;
    ReassignResult {
        steady_p99_us,
        during_move_p99_us,
        moved_records,
        throttle_bytes_per_sec: rate,
        within_3x: during_move_p99_us <= (steady_p99_us * 3.0).max(2_000.0),
    }
}

struct NetSide {
    produce_p50_us: f64,
    produce_p99_us: f64,
    produce_events_per_sec: f64,
    fetch_records_per_sec: f64,
    fetch_p99_us: f64,
}

/// Drive the produce→fetch workload through one [`Transport`]: the
/// same calls the SDK makes, so the in-process and TCP numbers differ
/// only by the wire (framing, CRC, socket, server dispatch).
fn net_side(transport: &dyn Transport, scale: &Scale, traced: bool) -> NetSide {
    let payload = vec![0x71u8; 128];
    let hist = AtomicHistogram::new();
    let t0 = Instant::now();
    for _ in 0..scale.net_batches {
        let events: Vec<Event> = (0..scale.batch_events)
            .map(|_| {
                let mut e = Event::from_bytes(payload.clone());
                if traced {
                    e.headers.push(TraceContext::fresh().to_header());
                }
                e
            })
            .collect();
        let batch = RecordBatch::new(events);
        let t = Instant::now();
        transport.produce_batch("net", 0, batch, AckLevel::Leader).expect("net produce");
        hist.record(t.elapsed().as_nanos() as u64);
    }
    let produce_secs = t0.elapsed().as_secs_f64();
    let total = (scale.net_batches * scale.batch_events) as u64;
    check(
        transport.latest_offset("net", 0).expect("net latest") == total,
        "network probe lost acked records",
    );

    let fetch_hist = AtomicHistogram::new();
    let t1 = Instant::now();
    let mut offset = 0u64;
    while offset < total {
        let t = Instant::now();
        let recs = transport.fetch("net", 0, offset, 500, None).expect("net fetch");
        fetch_hist.record(t.elapsed().as_nanos() as u64);
        check(!recs.is_empty(), "network probe fetch returned empty mid-log");
        for r in &recs {
            check(r.offset == offset, "network probe offsets not dense");
            offset += 1;
        }
    }
    let fetch_secs = t1.elapsed().as_secs_f64();

    let snap = hist.snapshot();
    NetSide {
        produce_p50_us: snap.median() as f64 / 1e3,
        produce_p99_us: snap.p99() as f64 / 1e3,
        produce_events_per_sec: total as f64 / produce_secs,
        fetch_records_per_sec: total as f64 / fetch_secs,
        fetch_p99_us: fetch_hist.snapshot().p99() as f64 / 1e3,
    }
}

struct NetResult {
    in_process: NetSide,
    tcp: NetSide,
    /// The TCP side repeated with every produce carrying a trace
    /// context (wire-frame trace extension + broker span recording).
    tcp_traced: NetSide,
    /// Per-api p99 from the *server's* own request histograms
    /// (`octopus_wire_request_ns{api=...}`), in µs — the broker-side
    /// view of the same workload the client timed.
    server_produce_p99_us: f64,
    server_fetch_p99_us: f64,
}

/// Network-tax probe: identical workloads through the in-process
/// transport and over a real loopback socket against a `WireServer` —
/// the socket leg twice, tracing off then on, so the wire-trace
/// extension's cost is tracked across PRs. Each side gets its own
/// fresh single-partition topic on a shared volatile cluster.
fn net_probe(scale: &Scale) -> NetResult {
    let cluster = Cluster::builder(2).spans(Arc::new(SpanSink::new(1))).build();
    let topic_config = TopicConfig::default().with_partitions(1).with_replication(2);

    cluster.create_topic("net", topic_config.clone()).expect("topic");
    let inproc = InProcessTransport::new(cluster.clone());
    let in_process = net_side(&inproc, scale, false);
    cluster.delete_topic("net").expect("reset topic");

    cluster.create_topic("net", topic_config.clone()).expect("topic");
    let serving = cluster.clone();
    let server = WireServer::bind(
        cluster,
        Authenticator::open(),
        "127.0.0.1:0",
        WireServerConfig::default(),
    )
    .expect("bind wire server");
    let tcp_transport = TcpTransport::connect(
        server.local_addr().to_string(),
        TcpTransportConfig::default(),
    );
    tcp_transport.ensure_connected().expect("connect");
    let tcp = net_side(&tcp_transport, scale, false);

    // Same socket workload again, now with a trace context stamped on
    // every event and the client sampling every trace.
    serving.delete_topic("net").expect("reset topic");
    serving.create_topic("net", topic_config).expect("topic");
    let traced_transport = TcpTransport::connect(
        server.local_addr().to_string(),
        TcpTransportConfig { trace_sample_every: 1, ..Default::default() },
    );
    traced_transport.ensure_connected().expect("connect traced");
    let tcp_traced = net_side(&traced_transport, scale, true);
    check(
        !serving.span_sink().snapshot().is_empty(),
        "traced network run recorded no broker spans",
    );

    // The broker's own per-api request histograms, recorded by the
    // wire server across both TCP legs.
    let snap = serving.metrics().snapshot();
    let server_p99_us = |api: &str| {
        snap.histograms
            .get(&labeled("octopus_wire_request_ns", &[("api", api)]))
            .map(|h| h.p99() as f64 / 1e3)
            .unwrap_or(0.0)
    };
    NetResult {
        in_process,
        tcp,
        tcp_traced,
        server_produce_p99_us: server_p99_us("produce"),
        server_fetch_p99_us: server_p99_us("fetch"),
    }
}

struct StorageResult {
    segments: u64,
    records: u64,
    deep_fetch_indexed_us: f64,
    deep_fetch_linear_us: f64,
    deep_fetch_speedup: f64,
    compression_ratio: f64,
    compression_overhead_pct: f64,
    compressed_raw_bytes: u64,
    compressed_stored_bytes: u64,
    cold_offloads: u64,
    cold_hydrations: u64,
    reopen_sealed_skips: u64,
    reopen_scanned: u64,
}

fn store_metrics() -> StoreMetrics {
    StoreMetrics::new(&MetricsRegistry::new())
}

/// A JSON-shaped telemetry payload: repeated keys and a narrow value
/// vocabulary, like the sensor events the paper's fabric carries.
fn telemetry_payload(i: usize) -> Vec<u8> {
    format!(
        "{{\"device\":\"sensor-{:04}\",\"site\":\"uchicago-maroon\",\"reading\":{}.{:03},\
         \"unit\":\"kelvin\",\"status\":\"nominal\",\"firmware\":\"v2.4.1\"}}",
        i % 100,
        200 + i % 70,
        i % 1000,
    )
    .into_bytes()
}

/// Storage-at-scale probe: the PR-10 engine end to end.
///
/// 1. **Deep fetch** — a multi-segment store read near its end,
///    sparse-index seeks vs the linear-scan baseline (same results are
///    asserted; the speedup is what the index buys).
/// 2. **Compression** — identical telemetry appended under
///    `Compression::None` and `Lz4`: on-disk ratio from the store's
///    own counters, append-path overhead from wall time.
/// 3. **Cold tier** — sealed segments offloaded, then a read through
///    the cold range (must hydrate transparently).
/// 4. **Reopen** — the tiered store reopened from disk: sealed
///    segments adopt from their index footers instead of full scans.
fn storage_probe(scale: &Scale) -> StorageResult {
    let tmp = TempDir::new("octopus-data-hotpath");
    let cold_tmp = TempDir::new("octopus-cold-hotpath");
    let dir = tmp.path().join("p0");
    let opts = StoreOptions {
        index_interval_bytes: 4096,
        compression: Compression::None,
        cold: Some(Arc::new(FsColdStore::new(cold_tmp.path()))),
        cold_after_bytes: None, // offload explicitly below
    };
    let segment_bytes = 256 * 1024;
    let batch_events = 32usize;
    let metrics = store_metrics();
    let (mut log, _) = PartitionLog::open_durable_with(
        segment_bytes,
        &dir,
        FlushPolicy::OsManaged,
        metrics.clone(),
        opts.clone(),
    )
    .expect("open storage probe log");
    for b in 0..scale.storage_batches {
        let events: Vec<Event> = (0..batch_events)
            .map(|i| Event::from_bytes(vec![0xB7u8; 192 + (b * batch_events + i) % 64]))
            .collect();
        log.append(&RecordBatch::new(events), octopus_types::Timestamp::now())
            .expect("storage append");
    }
    log.sync_store().expect("storage sync");
    let total = (scale.storage_batches * batch_events) as u64;
    let target = total - 8; // deep: the tail of the last segment

    // deep-fetch timing: index seek vs linear baseline
    let store = log.store().expect("durable log has a store");
    let mut indexed_last = Vec::new();
    let t0 = Instant::now();
    for _ in 0..scale.storage_read_iters {
        indexed_last = store.read_records(target, 16, SeekMode::Indexed).expect("indexed read");
    }
    let indexed_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut linear_last = Vec::new();
    for _ in 0..scale.storage_read_iters {
        linear_last = store.read_records(target, 16, SeekMode::LinearScan).expect("linear read");
    }
    let linear_secs = t1.elapsed().as_secs_f64();
    check(indexed_last == linear_last, "seek modes disagree on the deep fetch");
    check(
        indexed_last.first().map(|r| r.offset) == Some(target),
        "deep fetch missed its target offset",
    );

    // cold tier: offload every sealed segment, then read through it
    let offloads = log.offload_cold().expect("offload");
    check(offloads >= 1, "no sealed segment offloaded to the cold tier");
    let store = log.store().expect("store");
    let hydrate_probe = store.read_records(5, 16, SeekMode::Indexed).expect("cold read");
    check(hydrate_probe.first().map(|r| r.offset) == Some(5), "cold read missed its offset");
    let hydrations = metrics.tier_hydration_count();
    check(hydrations >= 1, "cold read did not hydrate");
    let segments = metrics.tier_offload_count() + 1; // sealed + the active tail

    // reopen: sealed segments (one re-hydrated, the rest cold) must
    // adopt from footers, not full scans
    drop(log);
    let reopen_metrics = store_metrics();
    let (reopened, stats) = PartitionLog::open_durable_with(
        segment_bytes,
        &dir,
        FlushPolicy::OsManaged,
        reopen_metrics.clone(),
        opts,
    )
    .expect("reopen storage probe log");
    check(reopened.end_offset() == total, "reopen lost records");
    check(stats.segments_sealed >= 1, "reopen adopted no sealed segment from its footer");
    drop(reopened);

    // compression: the same telemetry appended under None and Lz4, on
    // the product's default durable policy (PerBatch) so the overhead
    // is the codec's share of a real acked append, not codec CPU vs a
    // bare write(). The two logs are driven *interleaved*, one batch
    // each, so ambient noise (CPU frequency, page cache, a background
    // flush) lands on both sides equally; per-side medians then drop
    // the fsync outliers.
    let mut logs = Vec::new();
    let lz4_metrics = store_metrics();
    for (side, codec) in [(0usize, Compression::None), (1, Compression::Lz4)] {
        let m = if side == 1 { lz4_metrics.clone() } else { store_metrics() };
        let (clog, _) = PartitionLog::open_durable_with(
            segment_bytes,
            tmp.path().join(format!("codec-{side}")),
            FlushPolicy::PerBatch,
            m,
            StoreOptions { compression: codec, ..StoreOptions::default() },
        )
        .expect("open codec log");
        logs.push(clog);
    }
    let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for b in 0..scale.compress_batches {
        // alternate which side goes first within the pair so ordering
        // effects (cache residency after the previous append) cancel
        let order = if b % 2 == 0 { [0usize, 1] } else { [1, 0] };
        for side in order {
            let events: Vec<Event> = (0..batch_events)
                .map(|i| Event::from_bytes(telemetry_payload(b * batch_events + i)))
                .collect();
            let batch = RecordBatch::new(events);
            let t = Instant::now();
            logs[side].append(&batch, octopus_types::Timestamp::now()).expect("codec append");
            samples[side].push(t.elapsed().as_secs_f64());
        }
    }
    for clog in &mut logs {
        clog.sync_store().expect("codec sync");
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        v[v.len() / 2]
    };
    let secs = [median(&mut samples[0]), median(&mut samples[1])];
    check(lz4_metrics.compressed_batch_count() > 0, "lz4 side compressed nothing");
    let raw = lz4_metrics.compressed_raw_bytes_total();
    let stored = lz4_metrics.compressed_stored_bytes_total();
    let overhead_pct = (secs[1] / secs[0] - 1.0) * 100.0;
    let ratio = raw as f64 / stored.max(1) as f64;

    StorageResult {
        segments,
        records: total,
        deep_fetch_indexed_us: indexed_secs * 1e6 / scale.storage_read_iters as f64,
        deep_fetch_linear_us: linear_secs * 1e6 / scale.storage_read_iters as f64,
        deep_fetch_speedup: linear_secs / indexed_secs.max(1e-9),
        compression_ratio: ratio,
        compression_overhead_pct: overhead_pct,
        compressed_raw_bytes: raw,
        compressed_stored_bytes: stored,
        cold_offloads: offloads,
        cold_hydrations: hydrations,
        reopen_sealed_skips: stats.segments_sealed,
        reopen_scanned: stats.segments_scanned,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::new(smoke);
    figure_header(
        "HOT PATH — produce latency, fetch contention, crc kernel, group commit",
        "3 brokers volatile (produce/fetch), 2 brokers durable PerBatch (group commit)",
    );

    let sweeps = [
        (AckLevel::Leader, 1u32),
        (AckLevel::Leader, 3),
        (AckLevel::All, 1),
        (AckLevel::All, 3),
    ];
    let rows: Vec<ProduceRow> = sweeps.iter().map(|(a, rf)| produce_sweep(*a, *rf, &scale)).collect();

    let mut txt = String::new();
    txt.push_str(&format!(
        "{:<10} {:>4} {:>12} {:>12} {:>14}\n",
        "acks", "rf", "p50 us", "p99 us", "events/s"
    ));
    for r in &rows {
        txt.push_str(&format!(
            "{:<10} {:>4} {:>12.1} {:>12.1} {:>14}\n",
            r.acks,
            r.rf,
            r.p50_us,
            r.p99_us,
            human_rate(r.events_per_sec)
        ));
    }

    let fetch = fetch_contention(&scale);
    txt.push_str(&format!(
        "\nfetch under live producer: {} records/s ({} fetchers), produce p99 {:.1} us\n",
        human_rate(fetch.records_per_sec),
        scale.fetchers,
        fetch.produce_p99_us,
    ));

    let crc_mb_s = crc_throughput(&scale);
    txt.push_str(&format!("crc32c kernel: {crc_mb_s:.0} MB/s\n"));

    let dur = durable_group_commit(&scale);
    txt.push_str(&format!(
        "group commit (PerBatch, {} producers, acks=all): p50 {:.1} us, p99 {:.1} us, \
         {:.2} fsyncs/batch ({} fsyncs / {} batches)\n",
        scale.producers,
        dur.p50_us,
        dur.p99_us,
        dur.flushes as f64 / dur.batches as f64,
        dur.flushes,
        dur.batches,
    ));

    let eos_off = eos_overhead(false, &scale);
    let eos_on = eos_overhead(true, &scale);
    let eos_overhead_pct = (eos_off.events_per_sec / eos_on.events_per_sec - 1.0) * 100.0;
    txt.push_str(&format!(
        "exactly-once produce (acks=all, rf=3): idempotence off {} events/s \
         (p50 {:.1} us, p99 {:.1} us) vs on {} events/s (p50 {:.1} us, p99 {:.1} us), \
         throughput overhead {:.1}%\n",
        human_rate(eos_off.events_per_sec),
        eos_off.p50_us,
        eos_off.p99_us,
        human_rate(eos_on.events_per_sec),
        eos_on.p50_us,
        eos_on.p99_us,
        eos_overhead_pct,
    ));

    let reassign = reassignment_probe(&scale);
    txt.push_str(&format!(
        "reassignment impact (acks=all, rf=3, throttled learner): steady p99 {:.1} us vs \
         during-move p99 {:.1} us ({} records copied at {} B/s)\n",
        reassign.steady_p99_us,
        reassign.during_move_p99_us,
        reassign.moved_records,
        reassign.throttle_bytes_per_sec,
    ));
    check(
        reassign.within_3x,
        "produce p99 during an active move exceeded 3x the steady-state p99",
    );

    let storage = storage_probe(&scale);
    txt.push_str(&format!(
        "storage at scale ({} records, {} segments): deep fetch indexed {:.1} us vs linear \
         {:.1} us ({:.1}x); lz4 ratio {:.2}x ({} -> {} bytes), append overhead {:.1}%; \
         cold tier {} offloads / {} hydrations; reopen adopted {} sealed footers \
         ({} full-scanned)\n",
        storage.records,
        storage.segments,
        storage.deep_fetch_indexed_us,
        storage.deep_fetch_linear_us,
        storage.deep_fetch_speedup,
        storage.compression_ratio,
        storage.compressed_raw_bytes,
        storage.compressed_stored_bytes,
        storage.compression_overhead_pct,
        storage.cold_offloads,
        storage.cold_hydrations,
        storage.reopen_sealed_skips,
        storage.reopen_scanned,
    ));

    let net = net_probe(&scale);
    txt.push_str(&format!(
        "network tax (acks=1, rf=2, single client): in-process {} events/s produce \
         (p99 {:.1} us) / {} records/s fetch vs loopback TCP {} events/s produce \
         (p99 {:.1} us) / {} records/s fetch\n",
        human_rate(net.in_process.produce_events_per_sec),
        net.in_process.produce_p99_us,
        human_rate(net.in_process.fetch_records_per_sec),
        human_rate(net.tcp.produce_events_per_sec),
        net.tcp.produce_p99_us,
        human_rate(net.tcp.fetch_records_per_sec),
    ));
    let trace_overhead_pct =
        (net.tcp.produce_events_per_sec / net.tcp_traced.produce_events_per_sec - 1.0) * 100.0;
    txt.push_str(&format!(
        "wire tracing (sample_every=1): off {} events/s (p99 {:.1} us) vs on {} events/s \
         (p99 {:.1} us), throughput overhead {:.1}%; server-side p99 produce {:.1} us / \
         fetch {:.1} us\n",
        human_rate(net.tcp.produce_events_per_sec),
        net.tcp.produce_p99_us,
        human_rate(net.tcp_traced.produce_events_per_sec),
        net.tcp_traced.produce_p99_us,
        trace_overhead_pct,
        net.server_produce_p99_us,
        net.server_fetch_p99_us,
    ));

    print!("{txt}");
    let path = write_result("hotpath.txt", &txt).expect("write hotpath.txt");
    println!("wrote {}", path.display());

    // machine-readable trajectory file at the repo root
    let json = serde_json::json!({
        "schema": "octopus-hotpath-v1",
        "smoke": smoke,
        "produce": rows.iter().map(|r| serde_json::json!({
            "acks": r.acks,
            "rf": r.rf,
            "producers": scale.producers,
            "batches_per_producer": scale.batches,
            "batch_events": scale.batch_events,
            "p50_us": r.p50_us,
            "p99_us": r.p99_us,
            "events_per_sec": r.events_per_sec,
        })).collect::<Vec<_>>(),
        "fetch": {
            "fetchers": scale.fetchers,
            "concurrent_producer": true,
            "records_per_sec": fetch.records_per_sec,
            "produce_p99_us": fetch.produce_p99_us,
        },
        "crc": { "mb_per_sec": crc_mb_s },
        "group_commit": {
            "policy": "PerBatch",
            "producers": scale.producers,
            "acks": "all",
            "p50_us": dur.p50_us,
            "p99_us": dur.p99_us,
            "batches": dur.batches,
            "flushes": dur.flushes,
            "fsyncs_per_batch": dur.flushes as f64 / dur.batches as f64,
        },
        "eos": {
            "acks": "all",
            "rf": 3,
            "producers": scale.producers,
            "idempotent_off": {
                "p50_us": eos_off.p50_us,
                "p99_us": eos_off.p99_us,
                "events_per_sec": eos_off.events_per_sec,
            },
            "idempotent_on": {
                "p50_us": eos_on.p50_us,
                "p99_us": eos_on.p99_us,
                "events_per_sec": eos_on.events_per_sec,
            },
            "throughput_overhead_pct": eos_overhead_pct,
        },
        "reassignment": {
            "acks": "all",
            "rf": 3,
            "steady_p99_us": reassign.steady_p99_us,
            "during_move_p99_us": reassign.during_move_p99_us,
            "p99_ratio": reassign.during_move_p99_us / reassign.steady_p99_us.max(0.001),
            "moved_records": reassign.moved_records,
            "throttle_bytes_per_sec": reassign.throttle_bytes_per_sec,
            "within_3x": reassign.within_3x,
        },
        "storage": {
            "segment_bytes": 256 * 1024,
            "index_interval_bytes": 4096,
            "records": storage.records,
            "segments": storage.segments,
            "deep_fetch": {
                "indexed_us": storage.deep_fetch_indexed_us,
                "linear_us": storage.deep_fetch_linear_us,
                "speedup": storage.deep_fetch_speedup,
            },
            "compression": {
                "codec": "lz4",
                "ratio": storage.compression_ratio,
                "overhead_pct": storage.compression_overhead_pct,
                "raw_bytes": storage.compressed_raw_bytes,
                "stored_bytes": storage.compressed_stored_bytes,
            },
            "cold": {
                "offloads": storage.cold_offloads,
                "hydrations": storage.cold_hydrations,
            },
            "reopen": {
                "sealed_skips": storage.reopen_sealed_skips,
                "segments_scanned": storage.reopen_scanned,
            },
        },
        "net": {
            "acks": "1",
            "rf": 2,
            "batches": scale.net_batches,
            "batch_events": scale.batch_events,
            "in_process": {
                "produce_p50_us": net.in_process.produce_p50_us,
                "produce_p99_us": net.in_process.produce_p99_us,
                "produce_events_per_sec": net.in_process.produce_events_per_sec,
                "fetch_records_per_sec": net.in_process.fetch_records_per_sec,
                "fetch_p99_us": net.in_process.fetch_p99_us,
            },
            "tcp": {
                "produce_p50_us": net.tcp.produce_p50_us,
                "produce_p99_us": net.tcp.produce_p99_us,
                "produce_events_per_sec": net.tcp.produce_events_per_sec,
                "fetch_records_per_sec": net.tcp.fetch_records_per_sec,
                "fetch_p99_us": net.tcp.fetch_p99_us,
            },
            "tracing": {
                "sample_every": 1,
                "off": {
                    "produce_p99_us": net.tcp.produce_p99_us,
                    "produce_events_per_sec": net.tcp.produce_events_per_sec,
                },
                "on": {
                    "produce_p99_us": net.tcp_traced.produce_p99_us,
                    "produce_events_per_sec": net.tcp_traced.produce_events_per_sec,
                },
                "produce_p99_delta_us":
                    net.tcp_traced.produce_p99_us - net.tcp.produce_p99_us,
                "throughput_overhead_pct": trace_overhead_pct,
            },
            "per_api_p99_us": {
                "produce": net.server_produce_p99_us,
                "fetch": net.server_fetch_p99_us,
            },
        },
    });
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let json_path = root.join("BENCH_hotpath.json");
    let body = serde_json::to_string_pretty(&json).expect("serialize bench json");
    std::fs::write(&json_path, &body).expect("write BENCH_hotpath.json");
    // self-check: the file must parse back (the CI gate reads it)
    let reread: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json_path).expect("reread"))
            .expect("BENCH_hotpath.json must be valid JSON");
    check(reread["schema"] == "octopus-hotpath-v1", "bench json schema marker missing");
    check(
        reread["produce"].as_array().map(|a| a.len()) == Some(4),
        "bench json produce sweep incomplete",
    );
    check(
        reread["eos"]["idempotent_on"]["events_per_sec"].as_f64().unwrap_or(0.0) > 0.0,
        "bench json eos section incomplete",
    );
    check(
        reread["net"]["tcp"]["produce_events_per_sec"].as_f64().unwrap_or(0.0) > 0.0,
        "bench json net section incomplete",
    );
    check(
        reread["net"]["per_api_p99_us"]["produce"].as_f64().unwrap_or(0.0) > 0.0,
        "bench json net per-api p99 missing",
    );
    check(
        reread["net"]["tracing"]["on"]["produce_events_per_sec"].as_f64().unwrap_or(0.0) > 0.0,
        "bench json net tracing section incomplete",
    );
    check(
        reread["reassignment"]["within_3x"].as_bool() == Some(true)
            && reread["reassignment"]["moved_records"].as_u64().unwrap_or(0) > 0,
        "bench json reassignment section incomplete",
    );
    check(
        reread["storage"]["deep_fetch"]["speedup"].as_f64().unwrap_or(0.0) > 0.0
            && reread["storage"]["compression"]["ratio"].as_f64().unwrap_or(0.0) > 0.0
            && reread["storage"]["cold"]["hydrations"].as_u64().unwrap_or(0) > 0
            && reread["storage"]["reopen"]["sealed_skips"].as_u64().unwrap_or(0) > 0,
        "bench json storage section incomplete",
    );
    println!("wrote {}", json_path.display());
}
