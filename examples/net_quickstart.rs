//! Networked quickstart: a produce→fetch round trip between **two
//! separate OS processes** over loopback TCP with SCRAM auth.
//!
//! The binary is dual-mode: invoked with `--serve <addr-file>` it
//! becomes the broker process (cluster + `WireServer`, address written
//! to the file); invoked bare it spawns that server as a child
//! process, dials it with [`TcpTransport`], and drives the SDK
//! producer/consumer across the real socket. The run prints a JSON
//! summary that `scripts/ci.sh` gates on.
//!
//! Run with: `cargo run --example net_quickstart`

use std::io::Read;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus::auth::scram::ScramStore;
use octopus::prelude::*;
use octopus::sdk::Consumer;
use octopus::wire::{
    Authenticator, Credentials, TcpTransport, TcpTransportConfig, Transport, WireServer,
    WireServerConfig,
};

const USER: &str = "ada";
const PASSWORD: &str = "correct horse battery staple";
const TOPIC: &str = "sdl.actions";
const COUNT: usize = 12;

/// Child mode: host the cluster behind a wire server until the parent
/// goes away (detected as EOF on stdin).
fn serve(addr_file: &str) {
    let cluster = Cluster::new(2);
    cluster.create_topic(TOPIC, TopicConfig::default().with_partitions(2)).unwrap();
    let scram = Arc::new(ScramStore::new());
    scram.add_user(USER, PASSWORD, Uid(7));
    let server = WireServer::bind(
        cluster,
        Authenticator::closed().with_scram(scram),
        "127.0.0.1:0",
        WireServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    // atomic publish: write to a temp name, then rename into place
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, &addr).unwrap();
    std::fs::rename(&tmp, addr_file).unwrap();
    // Block until the parent closes our stdin (exit or kill) so an
    // orphaned server never outlives the demo.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--serve" {
        return serve(&args[2]);
    }

    let addr_file = std::env::temp_dir()
        .join(format!("octopus-net-quickstart-{}.addr", std::process::id()));
    let addr_file_str = addr_file.to_string_lossy().to_string();
    let _ = std::fs::remove_file(&addr_file);

    // Process #1: the broker, in its own OS process.
    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["--serve", &addr_file_str])
        .stdin(Stdio::piped())
        .spawn()
        .expect("spawn server process");

    // Wait for the server to publish its listen address.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            break addr;
        }
        assert!(Instant::now() < deadline, "server process never published an address");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Process #2 (this one): SCRAM-authenticated SDK clients over TCP.
    let transport = Arc::new(TcpTransport::connect(
        addr.clone(),
        TcpTransportConfig {
            credentials: Credentials::Scram {
                username: USER.into(),
                password: PASSWORD.into(),
            },
            ..Default::default()
        },
    ));
    transport.ensure_connected().expect("SCRAM handshake");
    let principal = transport.principal().unwrap();

    let producer = Producer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ProducerConfig::default(),
        None,
    );
    for i in 0..COUNT {
        producer
            .send_sync(
                TOPIC,
                Event::builder()
                    .key(format!("run-{}", i % 3))
                    .payload(format!("action-{i}").into_bytes())
                    .build(),
            )
            .expect("produce over TCP");
    }

    let mut consumer = Consumer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ConsumerConfig { group: "net-quickstart".into(), ..Default::default() },
        None,
    );
    consumer.subscribe(&[TOPIC]).unwrap();
    let mut consumed = 0usize;
    let deadline = Instant::now() + Duration::from_secs(10);
    while consumed < COUNT && Instant::now() < deadline {
        consumed += consumer.poll().expect("fetch over TCP").len();
    }

    drop(child.stdin.take()); // EOF → server exits
    let _ = child.wait();
    let _ = std::fs::remove_file(&addr_file);

    let report = serde_json::json!({
        "transport": "tcp",
        "addr": addr,
        "processes": 2,
        "scram_principal": principal.map(|u| u.to_string()),
        "produced": COUNT,
        "consumed": consumed,
        "ok": consumed == COUNT && principal == Some(Uid(7)),
    });
    println!("{}", serde_json::to_string_pretty(&report).unwrap());
    assert!(report["ok"].as_bool().unwrap(), "round trip failed");
}
