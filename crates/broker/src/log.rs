//! The segmented partition log.
//!
//! A partition is an append-only sequence of records with dense offsets,
//! stored as a list of *segments* (Kafka's on-disk layout, kept in
//! memory here). Segments bound the granularity of retention: time- and
//! size-based retention drop whole segments from the front; compaction
//! rewrites closed segments keeping only the latest record per key
//! (§IV-F: "Users can also configure the compaction and retention
//! policy").

use std::collections::HashMap;

use bytes::Bytes;
use octopus_types::{OctoError, OctoResult, Offset, Timestamp};

use crate::config::{CleanupPolicy, RetentionConfig};
use crate::record::{Record, RecordBatch};

/// Default maximum segment size before rolling (1 MiB here; Kafka's
/// default is 1 GiB — scaled down for in-memory use).
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

#[derive(Debug, Clone)]
struct Segment {
    base_offset: Offset,
    records: Vec<Record>,
    size_bytes: usize,
    max_timestamp: Timestamp,
}

impl Segment {
    fn new(base_offset: Offset) -> Self {
        Segment {
            base_offset,
            records: Vec::new(),
            size_bytes: 0,
            max_timestamp: Timestamp::from_millis(0),
        }
    }

    fn next_offset(&self) -> Offset {
        self.base_offset + self.records.len() as u64
    }
}

/// An in-memory segmented log for one partition.
#[derive(Debug, Clone)]
pub struct PartitionLog {
    segments: Vec<Segment>,
    segment_bytes: usize,
    /// Offset of the first retained record.
    log_start: Offset,
    total_bytes: usize,
}

impl Default for PartitionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionLog {
    /// Empty log with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }

    /// Empty log with a custom segment roll size (small values make
    /// retention tests cheap).
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        PartitionLog {
            segments: vec![Segment::new(0)],
            segment_bytes: segment_bytes.max(1),
            log_start: 0,
            total_bytes: 0,
        }
    }

    /// Change the segment roll size for future appends (topic config
    /// updates propagate here). Existing segments are untouched.
    pub fn set_segment_bytes(&mut self, segment_bytes: usize) {
        self.segment_bytes = segment_bytes.max(1);
    }

    /// Offset the next appended record will get.
    pub fn end_offset(&self) -> Offset {
        self.segments.last().map(|s| s.next_offset()).unwrap_or(self.log_start)
    }

    /// Offset of the earliest retained record.
    pub fn start_offset(&self) -> Offset {
        self.log_start
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.records.len()).sum()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained bytes.
    pub fn size_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Append a verified batch at `now`; returns the base offset
    /// assigned to the first record.
    pub fn append(&mut self, batch: &RecordBatch, now: Timestamp) -> OctoResult<Offset> {
        if !batch.verify() {
            return Err(OctoError::Invalid("record batch failed CRC check".into()));
        }
        let base = self.end_offset();
        for (i, event) in batch.events.iter().enumerate() {
            let mut rec = Record {
                offset: base + i as u64,
                append_time: now,
                key: event.key.clone(),
                value: event.payload.clone(),
                headers: event.headers.clone(),
                producer_time: event.timestamp,
                crc: 0,
            };
            rec.crc = rec.compute_crc();
            let size = rec.wire_size();
            let roll = {
                let seg = self.segments.last().expect("log always has a segment");
                !seg.records.is_empty() && seg.size_bytes + size > self.segment_bytes
            };
            if roll {
                let next = self.segments.last().expect("nonempty").next_offset();
                self.segments.push(Segment::new(next));
            }
            let seg = self.segments.last_mut().expect("nonempty");
            seg.size_bytes += size;
            seg.max_timestamp = seg.max_timestamp.max(rec.append_time);
            seg.records.push(rec);
            self.total_bytes += size;
        }
        Ok(base)
    }

    /// Read up to `max_records` records starting at `offset`.
    ///
    /// `offset == end_offset()` returns an empty vec (caller is caught
    /// up); offsets below `start_offset` or above the end are
    /// `OffsetOutOfRange`, matching Kafka's fetch semantics.
    pub fn read(&self, offset: Offset, max_records: usize) -> OctoResult<Vec<Record>> {
        let end = self.end_offset();
        if offset == end {
            return Ok(Vec::new());
        }
        if offset < self.log_start || offset > end {
            return Err(OctoError::OffsetOutOfRange {
                requested: offset,
                earliest: self.log_start,
                latest: end,
            });
        }
        let mut out = Vec::new();
        // binary search for the segment containing `offset`
        let seg_idx = match self
            .segments
            .binary_search_by(|s| s.base_offset.cmp(&offset))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        'outer: for seg in &self.segments[seg_idx..] {
            for rec in &seg.records {
                if rec.offset < offset {
                    continue;
                }
                if out.len() >= max_records {
                    break 'outer;
                }
                out.push(rec.clone());
            }
        }
        Ok(out)
    }

    /// The smallest offset whose append time is `>= ts` (the
    /// "consume after a certain timestamp" mode of §IV-F), or the end
    /// offset if no such record is retained.
    pub fn offset_for_timestamp(&self, ts: Timestamp) -> Offset {
        for seg in &self.segments {
            if seg.max_timestamp < ts {
                continue;
            }
            for rec in &seg.records {
                if rec.append_time >= ts {
                    return rec.offset;
                }
            }
        }
        self.end_offset()
    }

    /// Apply retention at `now`: drop whole closed segments older than
    /// `retention.ms` or beyond `retention.bytes`. The active (last)
    /// segment is never dropped. Returns the number of records removed.
    pub fn enforce_retention(&mut self, retention: &RetentionConfig, now: Timestamp) -> usize {
        let mut removed = 0usize;
        // time-based: drop closed segments whose newest record is older
        // than the retention window
        while self.segments.len() > 1 {
            let seg = &self.segments[0];
            let expired = retention
                .retention_ms
                .map(|ms| now.since(seg.max_timestamp).as_millis() as u64 > ms)
                .unwrap_or(false);
            let over_size = retention
                .retention_bytes
                .map(|limit| self.total_bytes as u64 > limit)
                .unwrap_or(false);
            if !(expired || over_size) {
                break;
            }
            let seg = self.segments.remove(0);
            removed += seg.records.len();
            self.total_bytes -= seg.size_bytes;
            self.log_start = self.segments[0].base_offset;
        }
        removed
    }

    /// Compact closed segments: keep only the newest record per key
    /// (records without a key are always kept, as in Kafka, where
    /// compaction requires keyed topics — unkeyed records cannot be
    /// superseded). The active segment is left alone. Offsets are
    /// preserved (compaction never renumbers). Returns records removed.
    pub fn compact(&mut self) -> usize {
        if self.segments.len() <= 1 {
            return 0;
        }
        // newest offset per key across *all* retained records (later
        // segments supersede earlier ones)
        let mut newest: HashMap<Bytes, Offset> = HashMap::new();
        for seg in &self.segments {
            for rec in &seg.records {
                if let Some(k) = &rec.key {
                    newest.insert(k.clone(), rec.offset);
                }
            }
        }
        let mut removed = 0usize;
        let last = self.segments.len() - 1;
        for seg in &mut self.segments[..last] {
            let before = seg.records.len();
            seg.records.retain(|rec| match &rec.key {
                Some(k) => newest.get(k) == Some(&rec.offset),
                None => true,
            });
            removed += before - seg.records.len();
            let new_size: usize = seg.records.iter().map(|r| r.wire_size()).sum();
            self.total_bytes -= seg.size_bytes - new_size;
            seg.size_bytes = new_size;
        }
        removed
    }

    /// Corrupt the payload bytes of the last `n` retained records
    /// *without* updating their checksums — the shape a torn or
    /// bit-rotted tail write leaves on disk. Fault-injection only.
    /// Returns how many records were actually corrupted.
    pub fn corrupt_tail(&mut self, n: usize) -> usize {
        let mut corrupted = 0usize;
        'outer: for seg in self.segments.iter_mut().rev() {
            for rec in seg.records.iter_mut().rev() {
                if corrupted >= n {
                    break 'outer;
                }
                let mut bytes = rec.value.to_vec();
                if bytes.is_empty() {
                    bytes.push(0xff);
                } else {
                    let last = bytes.len() - 1;
                    bytes[last] ^= 0xa5;
                }
                rec.value = Bytes::from(bytes);
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Log recovery: scan records in offset order and truncate
    /// everything from the first CRC mismatch onward (a corrupt record
    /// makes the rest of the tail untrustworthy, as in Kafka's
    /// restart-time log recovery). Returns the number of records
    /// dropped.
    pub fn verify_and_truncate(&mut self) -> usize {
        let mut bad: Option<(usize, usize)> = None;
        'scan: for (si, seg) in self.segments.iter().enumerate() {
            for (ri, rec) in seg.records.iter().enumerate() {
                if !rec.verify() {
                    bad = Some((si, ri));
                    break 'scan;
                }
            }
        }
        let Some((si, ri)) = bad else { return 0 };
        let mut removed = 0usize;
        for seg in self.segments.drain(si + 1..) {
            removed += seg.records.len();
            self.total_bytes -= seg.size_bytes;
        }
        let seg = &mut self.segments[si];
        removed += seg.records.len() - ri;
        for rec in seg.records.drain(ri..) {
            let size = rec.wire_size();
            seg.size_bytes -= size;
            self.total_bytes -= size;
        }
        removed
    }

    /// Run the configured cleanup policy.
    pub fn cleanup(&mut self, policy: &CleanupPolicy, retention: &RetentionConfig, now: Timestamp) -> usize {
        match policy {
            CleanupPolicy::Delete => self.enforce_retention(retention, now),
            CleanupPolicy::Compact => self.compact(),
            CleanupPolicy::CompactAndDelete => {
                self.compact() + self.enforce_retention(retention, now)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::Event;

    fn ev(payload: &str) -> Event {
        Event::from_bytes(payload.as_bytes().to_vec())
    }

    fn kev(key: &str, payload: &str) -> Event {
        Event::builder().key(key).payload(payload.as_bytes().to_vec()).build()
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn offsets_are_dense_and_increasing() {
        let mut log = PartitionLog::new();
        let b0 = log.append(&RecordBatch::new(vec![ev("a"), ev("b")]), t(1)).unwrap();
        let b1 = log.append(&RecordBatch::new(vec![ev("c")]), t(2)).unwrap();
        assert_eq!(b0, 0);
        assert_eq!(b1, 2);
        assert_eq!(log.end_offset(), 3);
        let recs = log.read(0, 100).unwrap();
        assert_eq!(recs.iter().map(|r| r.offset).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(&recs[2].value[..], b"c");
    }

    #[test]
    fn read_semantics_at_boundaries() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a"), ev("b"), ev("c")]), t(1)).unwrap();
        // caught-up read is empty, not an error
        assert!(log.read(3, 10).unwrap().is_empty());
        // beyond the end errors
        assert!(matches!(log.read(4, 10), Err(OctoError::OffsetOutOfRange { .. })));
        // max_records respected
        assert_eq!(log.read(0, 2).unwrap().len(), 2);
        // mid-log read
        assert_eq!(log.read(1, 10).unwrap()[0].offset, 1);
    }

    #[test]
    fn corrupt_batch_rejected() {
        let mut log = PartitionLog::new();
        let mut batch = RecordBatch::new(vec![ev("a")]);
        batch.crc ^= 1;
        assert!(matches!(log.append(&batch, t(1)), Err(OctoError::Invalid(_))));
        assert!(log.is_empty());
    }

    #[test]
    fn segments_roll_by_size() {
        let mut log = PartitionLog::with_segment_bytes(10);
        for i in 0..10 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i)).unwrap();
        }
        // 6-byte records, 10-byte segments -> one record rolls the next
        assert!(log.segments.len() >= 5, "got {} segments", log.segments.len());
        // reads still span segments seamlessly
        let recs = log.read(0, 100).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[9].offset, 9);
    }

    #[test]
    fn time_retention_drops_old_segments() {
        let mut log = PartitionLog::with_segment_bytes(8);
        for i in 0..8u64 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i * 1000)).unwrap();
        }
        let retention =
            RetentionConfig { retention_ms: Some(3_000), retention_bytes: None };
        let removed = log.enforce_retention(&retention, t(8_000));
        assert!(removed > 0);
        assert!(log.start_offset() > 0);
        // old offsets now out of range
        assert!(matches!(log.read(0, 10), Err(OctoError::OffsetOutOfRange { .. })));
        // newest data still readable
        assert_eq!(log.read(log.start_offset(), 100).unwrap().len(), log.len());
        // the active segment survives even if expired
        let removed_again = log.enforce_retention(
            &RetentionConfig { retention_ms: Some(0), retention_bytes: None },
            t(1_000_000),
        );
        assert!(!log.is_empty(), "active segment never dropped (removed {removed_again})");
    }

    #[test]
    fn size_retention_bounds_total_bytes() {
        let mut log = PartitionLog::with_segment_bytes(100);
        for i in 0..100 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:050}"))]), t(i)).unwrap();
        }
        let retention = RetentionConfig { retention_ms: None, retention_bytes: Some(500) };
        log.enforce_retention(&retention, t(1000));
        assert!(log.size_bytes() <= 600, "size {} not bounded", log.size_bytes());
    }

    #[test]
    fn offset_for_timestamp_lookup() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a")]), t(100)).unwrap();
        log.append(&RecordBatch::new(vec![ev("b")]), t(200)).unwrap();
        log.append(&RecordBatch::new(vec![ev("c")]), t(300)).unwrap();
        assert_eq!(log.offset_for_timestamp(t(0)), 0);
        assert_eq!(log.offset_for_timestamp(t(150)), 1);
        assert_eq!(log.offset_for_timestamp(t(200)), 1);
        assert_eq!(log.offset_for_timestamp(t(201)), 2);
        assert_eq!(log.offset_for_timestamp(t(999)), 3); // end offset
    }

    #[test]
    fn compaction_keeps_latest_per_key() {
        let mut log = PartitionLog::with_segment_bytes(4);
        log.append(&RecordBatch::new(vec![kev("k1", "v1")]), t(1)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k2", "v1")]), t(2)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k1", "v2")]), t(3)).unwrap();
        log.append(&RecordBatch::new(vec![ev("nk")]), t(4)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k1", "v3")]), t(5)).unwrap();
        let removed = log.compact();
        assert_eq!(removed, 2, "k1@0 and k1@2 removed");
        let recs = log.read(log.start_offset(), 100).unwrap();
        let k1: Vec<&Record> =
            recs.iter().filter(|r| r.key.as_deref() == Some(&b"k1"[..])).collect();
        assert_eq!(k1.len(), 1);
        assert_eq!(&k1[0].value[..], b"v3");
        // unkeyed record survives
        assert!(recs.iter().any(|r| r.key.is_none()));
        // offsets preserved (no renumbering)
        assert_eq!(k1[0].offset, 4);
    }

    #[test]
    fn tail_corruption_detected_and_truncated() {
        let mut log = PartitionLog::with_segment_bytes(12);
        for i in 0..6u64 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i)).unwrap();
        }
        let bytes_before = log.size_bytes();
        assert_eq!(log.corrupt_tail(2), 2);
        // reads still serve the corrupt records (the fabric trusts the
        // page cache while running) — recovery happens on restart
        assert_eq!(log.read(0, 100).unwrap().len(), 6);
        let dropped = log.verify_and_truncate();
        assert_eq!(dropped, 2);
        assert_eq!(log.end_offset(), 4);
        assert_eq!(log.len(), 4);
        assert!(log.size_bytes() < bytes_before);
        // surviving prefix is intact and re-appendable
        assert!(log.read(0, 100).unwrap().iter().all(|r| r.verify()));
        let next = log.append(&RecordBatch::new(vec![ev("fresh!")]), t(10)).unwrap();
        assert_eq!(next, 4);
    }

    #[test]
    fn verify_and_truncate_is_noop_on_clean_log() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a"), ev("b")]), t(1)).unwrap();
        assert_eq!(log.verify_and_truncate(), 0);
        assert_eq!(log.len(), 2);
        assert_eq!(PartitionLog::new().verify_and_truncate(), 0);
    }

    #[test]
    fn cleanup_policy_dispatch() {
        let retention = RetentionConfig { retention_ms: Some(10), retention_bytes: None };
        let mut log = PartitionLog::with_segment_bytes(4);
        for i in 0..5u64 {
            log.append(&RecordBatch::new(vec![kev("k", &format!("v{i}"))]), t(i)).unwrap();
        }
        let mut l2 = log.clone();
        assert!(log.cleanup(&CleanupPolicy::Compact, &retention, t(100)) > 0);
        assert!(l2.cleanup(&CleanupPolicy::CompactAndDelete, &retention, t(100)) > 0);
    }
}
