//! Compiled pattern representation.

use serde_json::Value;

use crate::cidr::Cidr;

/// A compiled, validated event pattern. Construct with
/// [`Pattern::parse`]; test events with [`Pattern::matches`].
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    pub(crate) root: Node,
    pub(crate) source: Value,
}

impl Pattern {
    /// The original JSON form of the pattern.
    pub fn source(&self) -> &Value {
        &self.source
    }

    /// The compiled tree (exposed for tooling/diagnostics).
    pub fn root(&self) -> &Node {
        &self.root
    }
}

/// A node of the compiled pattern tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// All listed fields must match the corresponding event fields.
    Object(Vec<(String, Node)>),
    /// Leaf: the event value must satisfy at least one matcher.
    Leaf(Vec<Matcher>),
    /// `$or`: at least one alternative must match.
    Or(Vec<Node>),
}

/// Comparison operators for `numeric` matchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate `lhs OP rhs`.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Parse the EventBridge operator token.
    pub fn parse(tok: &str) -> Option<Self> {
        Some(match tok {
            "=" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// One alternative within a leaf rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Matcher {
    /// Exact equality with a JSON scalar (string/number/bool/null).
    Exact(Value),
    /// String prefix.
    Prefix(String),
    /// String suffix.
    Suffix(String),
    /// Case-insensitive string equality.
    EqualsIgnoreCase(String),
    /// None of the listed scalars equals the value.
    AnythingBut(Vec<Value>),
    /// The value is a string that does *not* start with the prefix.
    AnythingButPrefix(String),
    /// Conjunction of numeric comparisons, e.g. `> 0 AND <= 5`.
    Numeric(Vec<(CmpOp, f64)>),
    /// Field presence (`true`) or absence (`false`).
    Exists(bool),
    /// Glob with `*` (any run, including empty) and `?` (single char).
    Wildcard(String),
    /// IPv4 CIDR block containing the value (a dotted-quad string).
    Cidr(Cidr),
}
