//! Criterion benches for the trigger runtime: end-to-end dispatch cost
//! per event (consume + filter + invoke + commit) with and without
//! pattern filtering, and by batch size — the §V-D cost structure.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde_json::json;

use octopus_broker::{AckLevel, Cluster, TopicConfig};
use octopus_pattern::Pattern;
use octopus_trigger::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
use octopus_types::{Event, Uid};

fn spec(name: &str, pattern: Option<Pattern>, batch_size: usize) -> TriggerSpec {
    TriggerSpec {
        name: name.into(),
        topic: "events".into(),
        pattern,
        config: FunctionConfig { batch_size, ..Default::default() },
        function: Arc::new(|_ctx, _batch| Ok(())),
        acting_as: Uid(1),
        autoscaler: AutoscalerConfig::default(),
    }
}

fn fill(cluster: &Cluster, n: usize) {
    let e = Event::from_json(&json!({"event_type": "created", "size": 1024})).unwrap();
    for _ in 0..n {
        cluster.produce("events", e.clone(), AckLevel::Leader).unwrap();
    }
}

fn dispatch_per_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger_dispatch");
    group.throughput(Throughput::Elements(1000));
    for (name, with_pattern) in [("unfiltered", false), ("filtered", true)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_with_setup(
                || {
                    let cluster = Cluster::new(2);
                    cluster
                        .create_topic("events", TopicConfig::default().with_partitions(2))
                        .unwrap();
                    fill(&cluster, 1000);
                    let rt = TriggerRuntime::new(cluster);
                    let pattern = with_pattern
                        .then(|| Pattern::parse(&json!({"event_type": ["created"]})).unwrap());
                    rt.deploy(spec("t", pattern, 100)).unwrap();
                    rt
                },
                |rt| rt.poll_once("t").unwrap(),
            );
        });
    }
    group.finish();
}

fn dispatch_by_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger_batch_size");
    group.throughput(Throughput::Elements(1000));
    for batch in [1usize, 10, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_with_setup(
                || {
                    let cluster = Cluster::new(2);
                    cluster
                        .create_topic("events", TopicConfig::default().with_partitions(2))
                        .unwrap();
                    fill(&cluster, 1000);
                    let rt = TriggerRuntime::new(cluster);
                    rt.deploy(spec("t", None, batch)).unwrap();
                    rt
                },
                |rt| rt.poll_once("t").unwrap(),
            );
        });
    }
    group.finish();
}

criterion_group!(benches, dispatch_per_event, dispatch_by_batch_size);
criterion_main!(benches);
