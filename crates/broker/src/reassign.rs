//! Online partition reassignment plumbing: the bandwidth throttle a
//! mover pays while a learner catches up, and the tracker behind
//! `DescribeReassignments` / the ops surfaces (DESIGN.md §15).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

use crate::broker::BrokerId;
use octopus_types::PartitionId;

/// At most this many reassignment entries are retained (completed and
/// aborted ones age out oldest-first; active moves are never evicted).
const TRACKER_CAP: usize = 256;

/// A token-bucket bandwidth throttle for reassignment traffic. One
/// bucket is shared by every move the caller passes it to, so the cap
/// bounds the *total* catch-up bandwidth — moving six partitions at
/// once steals no more I/O from the produce path than moving one.
#[derive(Debug)]
pub struct MoveThrottle {
    bytes_per_sec: u64,
    state: Mutex<ThrottleState>,
}

#[derive(Debug)]
struct ThrottleState {
    /// Bytes currently available to spend.
    tokens: f64,
    /// Last refill instant.
    last: Instant,
}

impl MoveThrottle {
    /// A throttle admitting `bytes_per_sec` of copy traffic. The
    /// bucket holds at most one second of burst.
    pub fn new(bytes_per_sec: u64) -> Self {
        MoveThrottle {
            bytes_per_sec,
            state: Mutex::new(ThrottleState { tokens: bytes_per_sec as f64, last: Instant::now() }),
        }
    }

    /// No throttling: every acquire returns immediately.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// The configured rate.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Block until `bytes` of budget is available, then consume it.
    /// Oversized requests (bigger than one second of budget) are
    /// admitted after draining the bucket fully — a single huge record
    /// must not deadlock the mover.
    pub fn acquire(&self, bytes: u64) {
        if self.bytes_per_sec == u64::MAX || bytes == 0 {
            return;
        }
        let cost = (bytes as f64).min(self.bytes_per_sec as f64);
        loop {
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(s.last).as_secs_f64();
                s.last = now;
                s.tokens = (s.tokens + elapsed * self.bytes_per_sec as f64)
                    .min(self.bytes_per_sec as f64);
                if s.tokens >= cost {
                    s.tokens -= cost;
                    return;
                }
                // time until the deficit refills
                Duration::from_secs_f64((cost - s.tokens) / self.bytes_per_sec as f64)
            };
            std::thread::sleep(wait.min(Duration::from_millis(50)));
        }
    }
}

/// Where a reassignment is in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReassignPhase {
    /// The learner replica is copying the leader's log.
    CatchingUp,
    /// The swap committed; the learner is a full replica and the old
    /// replica is retired.
    Completed,
    /// The move failed (learner died, epoch CAS lost, copy error) and
    /// the learner was torn down.
    Aborted,
}

/// One partition move, as surfaced by `DescribeReassignments`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReassignStatus {
    /// Topic being moved.
    pub topic: String,
    /// Partition being moved.
    pub partition: PartitionId,
    /// Broker losing the replica.
    pub from: u32,
    /// Broker gaining the replica.
    pub to: u32,
    /// Assignment epoch captured when the move began.
    pub epoch: u64,
    /// Current phase.
    pub phase: ReassignPhase,
    /// Learner log end offset (records copied so far).
    pub copied: u64,
    /// Leader log end offset when the move began (the finish line as
    /// of the start; live traffic moves it further).
    pub target: u64,
    /// Failure detail when `phase == Aborted`.
    pub error: Option<String>,
}

impl ReassignStatus {
    fn key(&self) -> (&str, PartitionId, u32) {
        (&self.topic, self.partition, self.to)
    }
}

/// Bounded in-memory registry of active and recent reassignments.
#[derive(Debug, Default)]
pub struct ReassignTracker {
    entries: Mutex<Vec<ReassignStatus>>,
}

impl ReassignTracker {
    /// Record the start of a move.
    pub fn begin(
        &self,
        topic: &str,
        partition: PartitionId,
        from: BrokerId,
        to: BrokerId,
        epoch: u64,
        target: u64,
    ) {
        let mut entries = self.entries.lock();
        entries.push(ReassignStatus {
            topic: topic.to_string(),
            partition,
            from: from.0,
            to: to.0,
            epoch,
            phase: ReassignPhase::CatchingUp,
            copied: 0,
            target,
            error: None,
        });
        // evict oldest *finished* entries beyond the cap
        if entries.len() > TRACKER_CAP {
            if let Some(i) =
                entries.iter().position(|e| e.phase != ReassignPhase::CatchingUp)
            {
                entries.remove(i);
            }
        }
    }

    fn update(
        &self,
        topic: &str,
        partition: PartitionId,
        to: BrokerId,
        f: impl FnOnce(&mut ReassignStatus),
    ) {
        let mut entries = self.entries.lock();
        if let Some(e) = entries
            .iter_mut()
            .rev()
            .find(|e| e.key() == (topic, partition, to.0))
        {
            f(e);
        }
    }

    /// Record catch-up progress (learner end offset).
    pub fn progress(&self, topic: &str, partition: PartitionId, to: BrokerId, copied: u64) {
        self.update(topic, partition, to, |e| e.copied = copied);
    }

    /// Mark a move committed.
    pub fn complete(&self, topic: &str, partition: PartitionId, to: BrokerId) {
        self.update(topic, partition, to, |e| {
            e.phase = ReassignPhase::Completed;
            e.copied = e.copied.max(e.target);
        });
    }

    /// Mark a move aborted with a failure detail.
    pub fn abort(&self, topic: &str, partition: PartitionId, to: BrokerId, error: &str) {
        self.update(topic, partition, to, |e| {
            e.phase = ReassignPhase::Aborted;
            e.error = Some(error.to_string());
        });
    }

    /// All retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<ReassignStatus> {
        self.entries.lock().clone()
    }

    /// Number of moves still catching up.
    pub fn active_count(&self) -> usize {
        self.entries.lock().iter().filter(|e| e.phase == ReassignPhase::CatchingUp).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_throttle_never_blocks() {
        let t = MoveThrottle::unlimited();
        let start = Instant::now();
        for _ in 0..1000 {
            t.acquire(u64::MAX / 2);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn throttle_enforces_rate() {
        // 1 MiB/s bucket, pre-filled with a 1 MiB burst. Spending
        // 1.5 MiB must take at least ~0.4s (0.5 MiB over the burst).
        let t = MoveThrottle::new(1 << 20);
        let start = Instant::now();
        for _ in 0..6 {
            t.acquire(1 << 18); // 256 KiB per acquire
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(350),
            "1.5MiB through a 1MiB/s bucket took only {elapsed:?}"
        );
    }

    #[test]
    fn oversized_acquire_does_not_deadlock() {
        let t = MoveThrottle::new(1 << 30); // 1 GiB/s
        t.acquire(u64::MAX); // clamped to one second of budget
    }

    #[test]
    fn tracker_lifecycle_and_snapshot() {
        let tr = ReassignTracker::default();
        tr.begin("t", 0, BrokerId(1), BrokerId(2), 7, 100);
        assert_eq!(tr.active_count(), 1);
        tr.progress("t", 0, BrokerId(2), 40);
        let snap = tr.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].copied, 40);
        assert_eq!(snap[0].epoch, 7);
        assert_eq!(snap[0].phase, ReassignPhase::CatchingUp);
        tr.complete("t", 0, BrokerId(2));
        let snap = tr.snapshot();
        assert_eq!(snap[0].phase, ReassignPhase::Completed);
        assert_eq!(snap[0].copied, 100, "completion snaps progress to the target");
        assert_eq!(tr.active_count(), 0);

        tr.begin("t", 1, BrokerId(0), BrokerId(2), 0, 10);
        tr.abort("t", 1, BrokerId(2), "learner died");
        let snap = tr.snapshot();
        assert_eq!(snap[1].phase, ReassignPhase::Aborted);
        assert_eq!(snap[1].error.as_deref(), Some("learner died"));
    }

    #[test]
    fn tracker_evicts_finished_entries_only() {
        let tr = ReassignTracker::default();
        for i in 0..TRACKER_CAP {
            tr.begin("t", i as u32, BrokerId(0), BrokerId(1), 0, 1);
            tr.complete("t", i as u32, BrokerId(1));
        }
        tr.begin("live", 0, BrokerId(0), BrokerId(1), 0, 1);
        tr.begin("live", 1, BrokerId(0), BrokerId(1), 0, 1);
        let snap = tr.snapshot();
        assert!(snap.len() <= TRACKER_CAP + 1);
        assert_eq!(tr.active_count(), 2, "active moves are never evicted");
    }
}
