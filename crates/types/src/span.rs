//! Causal spans and a lock-free span sink with Chrome-trace export.
//!
//! A [`TraceContext`] rides every record
//! header; this module turns it into a *tree*: each instrumented
//! [`Stage`] of a sampled event becomes a [`Span`] with a deterministic
//! span id and a parent pointing at its causal predecessor
//! (produce→append→replicate / append→fetch→deliver). Spans are pushed
//! into a [`SpanSink`] — a hand-rolled Treiber stack, because the hot
//! path (broker append, consumer poll) must never take a lock — and
//! exported as Chrome trace event format JSON, loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Sampling is deterministic: a trace is sampled iff
//! `trace_id % sample_every == 0`, so every layer (producer, broker,
//! consumer) independently agrees on which events to record without
//! coordination.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::obs::{Stage, TraceContext};

/// One timed node in a trace tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Trace this span belongs to (from [`TraceContext::trace_id`]).
    pub trace_id: u64,
    /// Unique id within the trace (deterministic per stage).
    pub span_id: u64,
    /// Parent span id, `None` for a root span.
    pub parent_id: Option<u64>,
    /// Human-readable operation name (the stage label).
    pub name: String,
    /// Wall-clock start, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock end, nanoseconds (>= `start_ns`).
    pub end_ns: u64,
}

/// Deterministic span id for `(trace_id, stage)`: 16 slots per trace,
/// slot = stage ordinal, +1 so no span id is ever 0. Public so wire
/// transports can stamp a parent span id into a frame without holding
/// a [`Span`] value.
pub fn span_id_for(trace_id: u64, stage: Stage) -> u64 {
    trace_id.wrapping_mul(16) + stage_ordinal(stage) + 1
}

fn stage_ordinal(stage: Stage) -> u64 {
    Stage::ALL.iter().position(|s| *s == stage).expect("stage in ALL") as u64
}

/// The causal predecessor of each stage, per the event path: the
/// producer ack is the root; append hangs off it; replication and the
/// read path (fetch → deliver → trigger → dlq) descend from append;
/// mirroring branches off append too. OWS dispatches are their own
/// roots — they are not on the record path.
fn parent_stage(stage: Stage) -> Option<Stage> {
    match stage {
        Stage::ProduceAck => None,
        Stage::Append => Some(Stage::ProduceAck),
        Stage::Replicate => Some(Stage::Append),
        Stage::Fetch => Some(Stage::Append),
        Stage::Deliver => Some(Stage::Fetch),
        Stage::TriggerRun => Some(Stage::Deliver),
        Stage::Dlq => Some(Stage::TriggerRun),
        Stage::MirrorCopy => Some(Stage::Append),
        Stage::OwsDispatch => None,
    }
}

impl Span {
    /// Build the span for one stage of a sampled trace, with the
    /// deterministic id scheme and causal parent wiring.
    pub fn for_stage(trace_id: u64, stage: Stage, start_ns: u64, end_ns: u64) -> Self {
        Span {
            trace_id,
            span_id: span_id_for(trace_id, stage),
            parent_id: parent_stage(stage).map(|p| span_id_for(trace_id, p)),
            name: stage.label().to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
        }
    }

    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

struct Node {
    span: Span,
    next: *mut Node,
}

/// Lock-free collector of sampled spans.
///
/// A push-only Treiber stack: `record` is a single
/// compare-exchange loop with no allocation beyond the node itself, so
/// it is safe to call from the broker append path. `snapshot` walks the
/// list without consuming it — nodes are only freed on `Drop`, so a
/// concurrent reader can never observe a dangling pointer.
pub struct SpanSink {
    head: AtomicPtr<Node>,
    len: AtomicU64,
    dropped: AtomicU64,
    sample_every: u64,
    capacity: u64,
}

/// Default cap on retained spans; beyond it new spans are counted as
/// dropped rather than growing without bound.
pub const DEFAULT_SPAN_CAPACITY: u64 = 65_536;

impl SpanSink {
    /// A sink sampling one trace in `sample_every` (0 disables all
    /// recording).
    pub fn new(sample_every: u64) -> Self {
        SpanSink {
            head: AtomicPtr::new(ptr::null_mut()),
            len: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sample_every,
            capacity: DEFAULT_SPAN_CAPACITY,
        }
    }

    /// A sink that records nothing (the zero-overhead default).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether this sink records anything at all — a cheap guard so
    /// callers can skip trace-context extraction entirely when tracing
    /// is off.
    pub fn is_enabled(&self) -> bool {
        self.sample_every != 0
    }

    /// Whether spans for `trace_id` should be recorded. Deterministic,
    /// so producer, broker, and consumer agree without coordination.
    pub fn sampled(&self, trace_id: u64) -> bool {
        self.sample_every != 0 && trace_id.is_multiple_of(self.sample_every)
    }

    /// Number of spans retained.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// True when no spans have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans discarded because the sink was at capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Push one span. Lock-free; drops (and counts) when full.
    pub fn record(&self, span: Span) {
        if self.sample_every == 0 {
            return;
        }
        if self.len.load(Ordering::Relaxed) >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let node = Box::into_raw(Box::new(Node { span, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` came from Box::into_raw above and is not
            // yet visible to any other thread.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(
                head,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        self.len.fetch_add(1, Ordering::AcqRel);
    }

    /// Record one stage of a sampled trace; no-op for unsampled ids.
    pub fn record_stage(&self, ctx: &TraceContext, stage: Stage, start_ns: u64, end_ns: u64) {
        if self.sampled(ctx.trace_id) {
            self.record(Span::for_stage(ctx.trace_id, stage, start_ns, end_ns));
        }
    }

    /// Copy out every retained span, sorted by `(trace_id, span_id)`.
    /// Non-consuming: concurrent `record`s may or may not be included.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out = Vec::new();
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: nodes are only freed in Drop, which requires
            // `&mut self`; any node reachable from `head` stays alive
            // for the lifetime of this borrow.
            let node = unsafe { &*cur };
            out.push(node.span.clone());
            cur = node.next;
        }
        out.sort_by_key(|s| (s.trace_id, s.span_id));
        out
    }

    /// Render all retained spans as Chrome trace event format JSON
    /// (the `"traceEvents"` array form), loadable in Perfetto or
    /// `chrome://tracing`. Each span is a complete (`"ph":"X"`)
    /// duration event; timestamps are microseconds as the format
    /// requires, with nanosecond precision kept in the fraction.
    /// Single-process form: everything lands on pid lane 1 named
    /// `"octopus"`. For merging sinks from several OS processes into
    /// one trace, see [`export_chrome_trace_multi`].
    pub fn export_chrome_trace(&self) -> String {
        export_chrome_trace_multi(&[ProcessSpans {
            pid: 1,
            name: "octopus".to_string(),
            spans: self.snapshot(),
        }])
    }

    /// Write the Chrome trace JSON to `path`, creating parent
    /// directories as needed.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.export_chrome_trace())
    }
}

impl Drop for SpanSink {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` guarantees exclusive access; each
            // node was allocated via Box::into_raw in `record`.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

// SAFETY: the stack is built from atomics; nodes are immutable once
// published and freed only under exclusive access in Drop.
unsafe impl Send for SpanSink {}
unsafe impl Sync for SpanSink {}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("sample_every", &self.sample_every)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// One process's contribution to a merged Chrome trace: a pid lane,
/// its human-readable name, and the span snapshot taken in (or scraped
/// from) that process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessSpans {
    /// The pid lane the spans render under (typically the OS pid).
    pub pid: u64,
    /// Readable lane name, shown by Perfetto as the process name.
    pub name: String,
    /// The spans recorded by that process.
    pub spans: Vec<Span>,
}

/// Merge span snapshots from multiple OS processes into one Chrome
/// trace event JSON document.
///
/// Each process gets its own pid lane, announced with a
/// `"process_name"` metadata (`"ph":"M"`) event so the viewer labels
/// the lane readably instead of interleaving every process at pid 1.
/// Spans keep `tid` = trace id, so one sampled trace lines up as
/// parallel tracks across every process it crossed — the client's
/// `produce→ack` over the broker's `append`/`fetch` — matched by a
/// shared trace id.
pub fn export_chrome_trace_multi(processes: &[ProcessSpans]) -> String {
    let total: usize = processes.iter().map(|p| p.spans.len()).sum();
    let mut out = String::with_capacity(256 + total * 160 + processes.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for p in processes {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{pname}}}}}",
            pid = p.pid,
            pname = json_string(&p.name),
        ));
        for s in &p.spans {
            let ts = s.start_ns as f64 / 1_000.0;
            let dur = s.duration_ns() as f64 / 1_000.0;
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":{name},\"cat\":\"octopus\",\"ph\":\"X\",\"ts\":{ts:.3},\
                 \"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\
                 \"trace_id\":{tid},\"span_id\":{sid},\"parent_id\":{parent}}}}}",
                name = json_string(&s.name),
                pid = p.pid,
                tid = s.trace_id,
                sid = s.span_id,
                parent = match s.parent_id {
                    Some(pp) => pp.to_string(),
                    None => "null".to_string(),
                },
            ));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Write a merged multi-process Chrome trace to `path`, creating
/// parent directories as needed.
pub fn write_chrome_trace_multi(
    path: &std::path::Path,
    processes: &[ProcessSpans],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, export_chrome_trace_multi(processes))
}

/// Minimal JSON string escaping for span names (quotes, backslash,
/// control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn span_ids_are_deterministic_and_causal() {
        let a = Span::for_stage(7, Stage::Append, 10, 20);
        let b = Span::for_stage(7, Stage::Append, 10, 20);
        assert_eq!(a, b);
        assert_eq!(a.parent_id, Some(span_id_for(7, Stage::ProduceAck)));
        let root = Span::for_stage(7, Stage::ProduceAck, 0, 30);
        assert_eq!(root.parent_id, None);
        let deliver = Span::for_stage(7, Stage::Deliver, 25, 28);
        assert_eq!(deliver.parent_id, Some(span_id_for(7, Stage::Fetch)));
        // ids are unique across stages of one trace
        let mut ids: Vec<u64> =
            Stage::ALL.iter().map(|s| span_id_for(7, *s)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Stage::ALL.len());
    }

    #[test]
    fn sampling_is_deterministic() {
        let sink = SpanSink::new(4);
        assert!(sink.sampled(0));
        assert!(sink.sampled(8));
        assert!(!sink.sampled(3));
        let off = SpanSink::disabled();
        assert!(!off.sampled(0));
        off.record(Span::for_stage(0, Stage::Append, 0, 1));
        assert!(off.is_empty());
    }

    #[test]
    fn record_stage_respects_sampling() {
        let sink = SpanSink::new(2);
        let hit = TraceContext { trace_id: 4, produced_ns: 100 };
        let miss = TraceContext { trace_id: 5, produced_ns: 100 };
        sink.record_stage(&hit, Stage::Append, 100, 200);
        sink.record_stage(&miss, Stage::Append, 100, 200);
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace_id, 4);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let sink = Arc::new(SpanSink::new(1));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let id = t * 1_000 + i;
                    sink.record(Span::for_stage(id, Stage::Append, i, i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 2_000);
        assert_eq!(sink.len(), 2_000);
        // snapshot is sorted and duplicate-free
        let mut ids: Vec<(u64, u64)> =
            spans.iter().map(|s| (s.trace_id, s.span_id)).collect();
        let sorted = ids.clone();
        ids.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn capacity_drops_are_counted() {
        let mut sink = SpanSink::new(1);
        sink.capacity = 3;
        for i in 0..10 {
            sink.record(Span::for_stage(i, Stage::Append, 0, 1));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let sink = SpanSink::new(1);
        let ctx = TraceContext { trace_id: 2, produced_ns: 1_000 };
        sink.record_stage(&ctx, Stage::ProduceAck, 1_000, 9_000);
        sink.record_stage(&ctx, Stage::Append, 2_000, 3_000);
        sink.record_stage(&ctx, Stage::Fetch, 4_000, 5_000);
        let json = sink.export_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let all = v["traceEvents"].as_array().unwrap();
        // the single-process export announces its one pid lane
        let meta: Vec<_> = all.iter().filter(|e| e["ph"] == "M").collect();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0]["name"], "process_name");
        assert_eq!(meta[0]["args"]["name"], "octopus");
        let events: Vec<_> = all.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(events.len(), 3);
        for e in &events {
            assert_eq!(e["ph"], "X");
            assert_eq!(e["pid"], 1);
            assert_eq!(e["tid"], 2);
            assert!(e["ts"].as_f64().is_some());
            assert!(e["dur"].as_f64().is_some());
            assert!(e["args"]["span_id"].as_u64().is_some());
        }
        // append's parent is the produce-ack span id
        let append = events.iter().find(|e| e["name"] == "append").unwrap();
        assert_eq!(
            append["args"]["parent_id"].as_u64().unwrap(),
            span_id_for(2, Stage::ProduceAck)
        );
        // microsecond conversion keeps sub-µs precision
        let produce = events.iter().find(|e| e["name"] == "produce→ack").unwrap();
        assert!((produce["ts"].as_f64().unwrap() - 1.0).abs() < 1e-9);
        assert!((produce["dur"].as_f64().unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn multi_process_export_gets_distinct_pid_lanes() {
        // the same trace id crosses two "processes": a client that
        // recorded the produce ack and a broker that recorded the
        // append — as in a scraped two-process deployment
        let ctx = TraceContext { trace_id: 8, produced_ns: 1_000 };
        let client = SpanSink::new(1);
        client.record_stage(&ctx, Stage::ProduceAck, 1_000, 9_000);
        let broker = SpanSink::new(1);
        broker.record_stage(&ctx, Stage::Append, 2_000, 3_000);
        broker.record_stage(&ctx, Stage::Fetch, 4_000, 5_000);

        let json = export_chrome_trace_multi(&[
            ProcessSpans { pid: 41, name: "client".into(), spans: client.snapshot() },
            ProcessSpans { pid: 42, name: "broker-0".into(), spans: broker.snapshot() },
        ]);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let all = v["traceEvents"].as_array().unwrap();

        // one process_name metadata event per lane
        let meta: Vec<_> = all.iter().filter(|e| e["ph"] == "M").collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(meta[0]["pid"], 41);
        assert_eq!(meta[0]["args"]["name"], "client");
        assert_eq!(meta[1]["pid"], 42);
        assert_eq!(meta[1]["args"]["name"], "broker-0");

        // spans keep their process's pid but share the trace id
        let spans: Vec<_> = all.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(spans.len(), 3);
        let client_spans: Vec<_> = spans.iter().filter(|e| e["pid"] == 41).collect();
        let broker_spans: Vec<_> = spans.iter().filter(|e| e["pid"] == 42).collect();
        assert_eq!(client_spans.len(), 1);
        assert_eq!(broker_spans.len(), 2);
        for s in &spans {
            assert_eq!(s["args"]["trace_id"], 8, "one trace id across both lanes");
        }
        // the cross-process parent link survives the merge
        let append = spans.iter().find(|e| e["name"] == "append").unwrap();
        assert_eq!(
            append["args"]["parent_id"].as_u64().unwrap(),
            span_id_for(8, Stage::ProduceAck)
        );
    }

    #[test]
    fn multi_process_export_with_no_processes_is_valid_json() {
        let json = export_chrome_trace_multi(&[]);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn write_chrome_trace_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("octopus-span-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("trace.json");
        let sink = SpanSink::new(1);
        sink.record(Span::for_stage(1, Stage::Append, 0, 10));
        sink.write_chrome_trace(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(serde_json::from_str::<serde_json::Value>(&body).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_string_escapes_hostile_names() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let escaped = json_string("tab\there");
        let v: serde_json::Value = serde_json::from_str(&escaped).unwrap();
        assert_eq!(v.as_str().unwrap(), "tab\there");
    }
}
