//! The batching, retrying producer.
//!
//! Configuration mirrors the knobs the paper tunes: `acks` (Table III
//! #2–#4), retry count ("the SDK producer retries a configurable number
//! of times before failing", §IV-F), `buffer.memory` ("we reduce the
//! producer's buffer.memory to 256 KB", §V-B), `linger.ms` and batch
//! size (the batching that makes small-event throughput possible).
//!
//! Architecture: `send` enqueues into a bounded in-memory buffer; a
//! background sender thread groups events per (topic, partition) and
//! flushes batches when they reach `batch_events`/`batch_bytes` or when
//! `linger` expires. Delivery reports come back over a channel handle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

use octopus_broker::{AckLevel, Cluster, ProduceReceipt, ProducerStamp, RecordBatch};
use octopus_broker::ProducerIdentity;
use octopus_wire::{InProcessTransport, Transport};
use octopus_types::obs::{Stage, TraceContext};
use octopus_types::retry::RetryMetrics;
use octopus_types::{
    codec, Codec, Event, OctoError, OctoResult, PartitionId, Retrier, RetryPolicy, TopicName, Uid,
};

/// Producer configuration.
#[derive(Debug, Clone)]
pub struct ProducerConfig {
    /// Acknowledgment level.
    pub acks: AckLevel,
    /// Retries for retriable errors before reporting failure.
    pub retries: u32,
    /// Delay between retries.
    pub retry_backoff: Duration,
    /// Upper bound on buffered (unsent) bytes — `buffer.memory`.
    pub buffer_memory: usize,
    /// How long a non-full batch may linger before flushing.
    pub linger: Duration,
    /// Max events per batch.
    pub batch_events: usize,
    /// Max bytes per batch.
    pub batch_bytes: usize,
    /// Payload compression (a §VII-C cost-mitigation lever: egress is
    /// billed per byte). Compressed events carry an `octopus-codec`
    /// header; the consumer decompresses transparently.
    pub codec: Codec,
    /// Exactly-once production: the producer registers a broker-assigned
    /// (pid, epoch) identity and stamps every batch with a per-partition
    /// sequence. A retry after an ambiguous ack re-sends the *same*
    /// sequence, which the broker deduplicates instead of re-appending.
    pub idempotent: bool,
    /// Stable client name for pid assignment. Re-registering the same
    /// name bumps the epoch and fences the previous incarnation
    /// (zombie-producer protection). Defaults to `"octopus-producer"`.
    pub client_id: Option<String>,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            acks: AckLevel::Leader,
            retries: 3,
            retry_backoff: Duration::from_millis(10),
            buffer_memory: 256 * 1024, // the paper's tuned value
            linger: Duration::from_millis(5),
            batch_events: 500,
            batch_bytes: 64 * 1024,
            codec: Codec::None,
            idempotent: false,
            client_id: None,
        }
    }
}

impl ProducerConfig {
    /// An exactly-once configuration: idempotence on, `acks=all` (a
    /// dedup window is only authoritative once the append is in every
    /// in-sync replica).
    pub fn idempotent() -> Self {
        ProducerConfig { acks: AckLevel::All, idempotent: true, ..Default::default() }
    }

    /// Same configuration with a stable client id for pid assignment.
    pub fn with_client_id(mut self, id: impl Into<String>) -> Self {
        self.client_id = Some(id.into());
        self
    }
}

/// Header marking a compressed payload; the value is the frame version.
pub const CODEC_HEADER: &str = "octopus-codec";

/// The outcome of one sent event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryReport {
    /// Acknowledged at the configured level.
    Delivered(ProduceReceipt),
    /// Failed after exhausting retries.
    Failed(OctoError),
}

struct Pending {
    topic: TopicName,
    partition: PartitionId,
    event: Event,
    size: usize,
    report: Sender<DeliveryReport>,
}

/// A handle resolving to the delivery report of one `send`.
#[derive(Debug)]
pub struct DeliveryHandle {
    rx: Receiver<DeliveryReport>,
}

impl DeliveryHandle {
    /// Block until the report arrives.
    pub fn wait(self) -> DeliveryReport {
        self.rx
            .recv()
            .unwrap_or(DeliveryReport::Failed(OctoError::Internal("producer closed".into())))
    }

    /// Non-blocking check.
    pub fn try_get(&self) -> Option<DeliveryReport> {
        self.rx.try_recv().ok()
    }
}

/// The producer client.
pub struct Producer {
    tx: Sender<Pending>,
    buffered_bytes: Arc<AtomicUsize>,
    config: ProducerConfig,
    transport: Arc<dyn Transport>,
    closed: Arc<AtomicBool>,
    sender_thread: Option<std::thread::JoinHandle<()>>,
    flush_signal: Sender<Sender<()>>,
}

impl Producer {
    /// A producer publishing to `cluster` with no broker-side principal
    /// (ACL-free clusters).
    pub fn new(cluster: Cluster, config: ProducerConfig) -> Self {
        Self::with_principal(cluster, config, None)
    }

    /// A producer whose writes are authorized as `principal`.
    pub fn with_principal(
        cluster: Cluster,
        config: ProducerConfig,
        principal: Option<Uid>,
    ) -> Self {
        Self::over(Arc::new(InProcessTransport::new(cluster)), config, principal)
    }

    /// A producer publishing through any [`Transport`] — in-process or
    /// a TCP connection to a remote wire server. Over TCP, `principal`
    /// is advisory only: the server authorizes against the handshake
    /// identity.
    pub fn over(
        transport: Arc<dyn Transport>,
        config: ProducerConfig,
        principal: Option<Uid>,
    ) -> Self {
        let (tx, rx) = unbounded::<Pending>();
        let (flush_tx, flush_rx) = unbounded::<Sender<()>>();
        let buffered = Arc::new(AtomicUsize::new(0));
        let closed = Arc::new(AtomicBool::new(false));
        let retrier = Retrier::new(RetryPolicy::new(config.retries, config.retry_backoff))
            .with_metrics(RetryMetrics::from_registry(&transport.metrics(), "octopus_producer"));
        let worker = SenderWorker {
            rx,
            flush_rx,
            transport: Arc::clone(&transport),
            retrier,
            config: config.clone(),
            buffered: buffered.clone(),
            principal,
            identity: None,
            seqs: HashMap::new(),
        };
        let handle = std::thread::spawn(move || worker.run());
        Producer {
            tx,
            buffered_bytes: buffered,
            config,
            transport,
            closed,
            sender_thread: Some(handle),
            flush_signal: flush_tx,
        }
    }

    /// Queue an event for delivery. Fails fast with `BufferFull` when
    /// `buffer.memory` is exhausted (the producer never blocks the
    /// caller — scientific event sources cannot stall instruments).
    pub fn send(&self, topic: &str, event: Event) -> OctoResult<DeliveryHandle> {
        if self.closed.load(Ordering::Acquire) {
            return Err(OctoError::Internal("producer closed".into()));
        }
        // Stamp the causal trace context at the earliest point of the
        // path; every downstream stage (broker append, consumer poll,
        // trigger invoke) reads produce-time from this header. Events
        // re-published by pipelines keep their original context.
        let mut event = event;
        if TraceContext::from_headers(&event.headers).is_none() {
            event.headers.push(TraceContext::fresh().to_header());
        }
        let event = match self.config.codec {
            Codec::None => event,
            c => {
                let compressed = codec::compress(c, &event.payload);
                let mut e = event;
                e.payload = compressed.into();
                e.headers.push(octopus_types::Header {
                    key: CODEC_HEADER.to_string(),
                    value: b"1".to_vec(),
                });
                e
            }
        };
        let size = event.wire_size();
        let current = self.buffered_bytes.load(Ordering::Acquire);
        if current + size > self.config.buffer_memory {
            return Err(OctoError::BufferFull { capacity_bytes: self.config.buffer_memory });
        }
        let partition = self.transport.partition_for(topic, event.key.as_deref())?;
        let (report_tx, report_rx) = bounded(1);
        self.buffered_bytes.fetch_add(size, Ordering::AcqRel);
        let pending = Pending {
            topic: topic.to_string(),
            partition,
            event,
            size,
            report: report_tx,
        };
        match self.tx.try_send(pending) {
            Ok(()) => Ok(DeliveryHandle { rx: report_rx }),
            Err(TrySendError::Full(p)) | Err(TrySendError::Disconnected(p)) => {
                self.buffered_bytes.fetch_sub(p.size, Ordering::AcqRel);
                Err(OctoError::Internal("producer channel closed".into()))
            }
        }
    }

    /// Send and wait for the delivery report (convenience).
    pub fn send_sync(&self, topic: &str, event: Event) -> OctoResult<ProduceReceipt> {
        match self.send(topic, event)?.wait() {
            DeliveryReport::Delivered(r) => Ok(r),
            DeliveryReport::Failed(e) => Err(e),
        }
    }

    /// Flush all buffered events and wait for their delivery.
    pub fn flush(&self) {
        let (done_tx, done_rx) = bounded(1);
        if self.flush_signal.send(done_tx).is_ok() {
            let _ = done_rx.recv();
        }
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes.load(Ordering::Acquire)
    }

    /// Flush and shut down the sender thread.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        self.flush();
        // dropping tx by replacing it ends the worker loop
        let (dead_tx, _) = unbounded();
        self.tx = dead_tx;
        if let Some(h) = self.sender_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct SenderWorker {
    rx: Receiver<Pending>,
    flush_rx: Receiver<Sender<()>>,
    transport: Arc<dyn Transport>,
    /// Shared retry/backoff/breaker stack. One dispatch (including all
    /// its internal retries) counts as a single breaker sample, so a
    /// long recovery cannot trip the breaker mid-outage.
    retrier: Retrier,
    config: ProducerConfig,
    buffered: Arc<AtomicUsize>,
    principal: Option<Uid>,
    /// Broker-assigned (pid, epoch), registered lazily on the first
    /// idempotent dispatch.
    identity: Option<ProducerIdentity>,
    /// Next sequence number per (topic, partition). Advanced after
    /// every stamped dispatch — success, dedup, or ambiguous failure —
    /// so a sequence is never reused for *different* payloads.
    seqs: HashMap<(TopicName, PartitionId), u64>,
}

struct OpenBatch {
    events: Vec<Event>,
    reporters: Vec<(Sender<DeliveryReport>, usize)>,
    bytes: usize,
    opened: Instant,
}

impl SenderWorker {
    fn run(mut self) {
        let mut batches: HashMap<(TopicName, PartitionId), OpenBatch> = HashMap::new();
        loop {
            // answer flush requests
            while let Ok(done) = self.flush_rx.try_recv() {
                // drain everything queued, then all open batches
                while let Ok(p) = self.rx.try_recv() {
                    self.add(&mut batches, p);
                }
                let keys: Vec<_> = batches.keys().cloned().collect();
                for k in keys {
                    if let Some(b) = batches.remove(&k) {
                        self.dispatch(&k.0, k.1, b);
                    }
                }
                let _ = done.send(());
            }
            match self.rx.recv_timeout(Duration::from_millis(1)) {
                Ok(p) => {
                    let key = (p.topic.clone(), p.partition);
                    self.add(&mut batches, p);
                    let full = batches
                        .get(&key)
                        .map(|b| {
                            b.events.len() >= self.config.batch_events
                                || b.bytes >= self.config.batch_bytes
                        })
                        .unwrap_or(false);
                    if full {
                        if let Some(b) = batches.remove(&key) {
                            self.dispatch(&key.0, key.1, b);
                        }
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    // final drain, then exit
                    let keys: Vec<_> = batches.keys().cloned().collect();
                    for k in keys {
                        if let Some(b) = batches.remove(&k) {
                            self.dispatch(&k.0, k.1, b);
                        }
                    }
                    return;
                }
            }
            // linger expiry
            let now = Instant::now();
            let expired: Vec<_> = batches
                .iter()
                .filter(|(_, b)| now.duration_since(b.opened) >= self.config.linger)
                .map(|(k, _)| k.clone())
                .collect();
            for k in expired {
                if let Some(b) = batches.remove(&k) {
                    self.dispatch(&k.0, k.1, b);
                }
            }
        }
    }

    fn add(&self, batches: &mut HashMap<(TopicName, PartitionId), OpenBatch>, p: Pending) {
        let batch = batches.entry((p.topic, p.partition)).or_insert_with(|| OpenBatch {
            events: Vec::new(),
            reporters: Vec::new(),
            bytes: 0,
            opened: Instant::now(),
        });
        batch.bytes += p.size;
        batch.events.push(p.event);
        batch.reporters.push((p.report, p.size));
    }

    /// Resolve (registering on first use) the idempotent identity.
    fn identity(&mut self) -> OctoResult<ProducerIdentity> {
        if let Some(id) = self.identity {
            return Ok(id);
        }
        let name =
            self.config.client_id.clone().unwrap_or_else(|| "octopus-producer".to_string());
        let id = self.transport.register_producer(&name)?;
        self.identity = Some(id);
        Ok(id)
    }

    fn dispatch(&mut self, topic: &str, partition: PartitionId, batch: OpenBatch) {
        let mut record_batch = RecordBatch::new(batch.events);
        // Stamp (pid, epoch, seq) BEFORE entering the retry loop: a
        // timeout after the broker durably appended is ambiguous, and
        // the retry must re-send the *same* sequence so the broker can
        // answer "already have it" instead of appending a duplicate.
        if self.config.idempotent {
            let count = record_batch.events.len() as u64;
            match self.identity() {
                Ok(id) => {
                    let seq =
                        self.seqs.entry((topic.to_string(), partition)).or_insert(0);
                    record_batch = record_batch.with_producer(
                        ProducerStamp { pid: id.pid, epoch: id.epoch, seq: *seq },
                        false,
                    );
                    // Consume the range now; even on an ambiguous
                    // failure the broker may hold these sequences, and
                    // reusing them for fresh payloads would get new
                    // data falsely deduplicated.
                    *seq += count;
                }
                Err(e) => {
                    let total: usize = batch.reporters.iter().map(|(_, s)| s).sum();
                    self.buffered.fetch_sub(total, Ordering::AcqRel);
                    for (reporter, _) in batch.reporters {
                        let _ = reporter.send(DeliveryReport::Failed(e.clone()));
                    }
                    return;
                }
            }
        }
        let spans = self.transport.span_sink();
        let traced = if spans.is_enabled() {
            record_batch
                .events
                .iter()
                .find_map(|e| TraceContext::from_headers(&e.headers))
                .filter(|tc| spans.sampled(tc.trace_id))
        } else {
            None
        };
        let ack_start = Instant::now();
        let ack_wall = octopus_types::obs::now_ns();
        let result = self.retrier.call(|_attempt| {
            // per-event authorization shares one check per batch (the
            // in-process transport checks the ACL; TCP defers to the
            // server's handshake principal)
            self.transport.authorize(topic, self.principal, octopus_auth::Permission::Write)?;
            self.transport.produce_batch(
                topic,
                partition,
                record_batch.clone(),
                self.config.acks,
            )
        });
        // produce→ack covers the whole dispatch including retries —
        // the client-visible latency of Table III.
        let ack_ns = ack_start.elapsed().as_nanos() as u64;
        self.transport.stage_metrics().record(Stage::ProduceAck, ack_ns);
        if let Some(tc) = &traced {
            // root of the causal tree: append/replicate/fetch/deliver
            // spans of the same trace hang below this one
            spans.record_stage(tc, Stage::ProduceAck, ack_wall, ack_wall + ack_ns);
        }
        let total: usize = batch.reporters.iter().map(|(_, s)| s).sum();
        self.buffered.fetch_sub(total, Ordering::AcqRel);
        match result {
            Ok(receipt) => {
                if receipt.deduplicated {
                    // the broker recognized a retried sequence and
                    // answered with the original offsets — a duplicate
                    // ack, not a duplicate append
                    if let Some(m) = &self.retrier.metrics {
                        m.duplicate_acks.inc();
                    }
                }
                for (i, (reporter, _)) in batch.reporters.into_iter().enumerate() {
                    let _ = reporter.send(DeliveryReport::Delivered(ProduceReceipt {
                        partition,
                        base_offset: receipt.base_offset + i as u64,
                        count: 1,
                        persisted: receipt.persisted,
                        deduplicated: receipt.deduplicated,
                    }));
                }
            }
            Err(e) => {
                for (reporter, _) in batch.reporters {
                    let _ = reporter.send(DeliveryReport::Failed(e.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::TopicConfig;

    fn ev(s: &str) -> Event {
        Event::from_bytes(s.as_bytes().to_vec())
    }

    fn setup() -> (Cluster, Producer) {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default()).unwrap();
        let p = Producer::new(c.clone(), ProducerConfig::default());
        (c, p)
    }

    #[test]
    fn send_sync_delivers() {
        let (c, p) = setup();
        let r = p.send_sync("t", ev("hello")).unwrap();
        assert!(r.persisted);
        let recs = c.fetch("t", r.partition, r.base_offset, 10).unwrap();
        assert_eq!(&recs[0].value[..], b"hello");
    }

    #[test]
    fn async_sends_batch_and_all_deliver() {
        let (c, p) = setup();
        let handles: Vec<DeliveryHandle> = (0..100)
            .map(|i| {
                p.send("t", Event::builder().key("k").payload(format!("{i}").into_bytes()).build())
                    .unwrap()
            })
            .collect();
        p.flush();
        let mut offsets = Vec::new();
        for h in handles {
            match h.wait() {
                DeliveryReport::Delivered(r) => offsets.push(r.base_offset),
                DeliveryReport::Failed(e) => panic!("delivery failed: {e}"),
            }
        }
        // Count duplicates explicitly instead of dedup()-ing them away:
        // a collapsed duplicate ack is exactly the signal an exactly-
        // once audit needs to see.
        offsets.sort_unstable();
        let duplicate_acks = offsets.windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(duplicate_acks, 0, "duplicate acks for offsets {offsets:?}");
        assert_eq!(offsets.len(), 100, "each event got a distinct offset");
        // keyed: all in one partition, in order
        let part = c.partition_for("t", Some(b"k")).unwrap();
        let recs = c.fetch("t", part, 0, 1000).unwrap();
        assert_eq!(recs.len(), 100);
    }

    #[test]
    fn buffer_memory_bounds_queueing() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default()).unwrap();
        // budget fits two events (payload + trace-header overhead), not three
        let p = Producer::new(
            c,
            ProducerConfig {
                buffer_memory: 1280,
                linger: Duration::from_secs(60), // keep events buffered
                ..Default::default()
            },
        );
        let payload = vec![0u8; 512];
        assert!(p.send("t", Event::from_bytes(payload.clone())).is_ok());
        assert!(p.send("t", Event::from_bytes(payload.clone())).is_ok());
        let err = p.send("t", Event::from_bytes(payload)).unwrap_err();
        assert!(matches!(err, OctoError::BufferFull { .. }));
        // flushing frees the buffer
        p.flush();
        assert_eq!(p.buffered_bytes(), 0);
        assert!(p.send("t", Event::from_bytes(vec![0u8; 512])).is_ok());
    }

    #[test]
    fn unknown_topic_fails_delivery() {
        let (_c, p) = setup();
        assert!(matches!(p.send("ghost", ev("x")), Err(OctoError::UnknownTopic(_))));
    }

    #[test]
    fn retries_recover_from_transient_broker_failure() {
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
        let p = Producer::new(
            c.clone(),
            ProducerConfig {
                retries: 50,
                retry_backoff: Duration::from_millis(5),
                ..Default::default()
            },
        );
        // kill every broker, then restart them shortly after
        c.kill_broker(octopus_broker::BrokerId(0)).unwrap();
        c.kill_broker(octopus_broker::BrokerId(1)).unwrap();
        let c2 = c.clone();
        let healer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            c2.restart_broker(octopus_broker::BrokerId(0)).unwrap();
            c2.restart_broker(octopus_broker::BrokerId(1)).unwrap();
        });
        let r = p.send_sync("t", ev("persistent"));
        healer.join().unwrap();
        assert!(r.is_ok(), "retries should outlast the outage: {r:?}");
    }

    #[test]
    fn close_flushes_outstanding_events() {
        let (c, p) = setup();
        for i in 0..10 {
            let e = Event::builder().key("k").payload(format!("{i}").into_bytes()).build();
            p.send("t", e).unwrap();
        }
        p.close();
        let part = c.partition_for("t", Some(b"k")).unwrap();
        assert_eq!(c.fetch("t", part, 0, 100).unwrap().len(), 10);
    }

    #[test]
    fn compressed_events_roundtrip_through_fabric() {
        use crate::consumer::{Consumer, ConsumerConfig};
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default()).unwrap();
        let p = Producer::new(
            c.clone(),
            ProducerConfig { codec: octopus_types::Codec::Lzss, ..Default::default() },
        );
        let payload = serde_json::to_vec(&serde_json::json!({
            "event_type": "created",
            "path": "/pfs/experiment/run-000001/out.h5",
            "padding": "x".repeat(500),
        }))
        .unwrap();
        let r = p.send_sync("t", Event::from_bytes(payload.clone())).unwrap();
        // at rest the payload is smaller than the original
        let stored = c.fetch("t", r.partition, r.base_offset, 1).unwrap();
        assert!(stored[0].value.len() < payload.len(), "stored {} vs {}", stored[0].value.len(), payload.len());
        // the consumer transparently decompresses
        let mut cons = Consumer::new(
            c,
            ConsumerConfig { group: "g".into(), auto_commit_interval: None, ..Default::default() },
        );
        cons.subscribe(&["t"]).unwrap();
        let got = cons.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].event.payload[..], &payload[..]);
        // the codec header was consumed by the decompression layer
        assert!(!got[0].event.headers.iter().any(|h| h.key == CODEC_HEADER));
    }

    #[test]
    fn ambiguous_ack_retry_is_deduplicated_when_idempotent() {
        // The AmbiguousAck fault: the broker appends durably, then the
        // ack is lost. The producer's retry re-sends the same sequence
        // and must NOT create a second copy.
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(3))
            .unwrap();
        let p = Producer::new(
            c.clone(),
            ProducerConfig {
                retries: 5,
                retry_backoff: Duration::from_millis(2),
                ..ProducerConfig::idempotent()
            },
        );
        let leader = c.leader_broker("t", 0).unwrap();
        c.fault_injector().inject_ack_drop(leader, 1);
        let r = p.send_sync("t", ev("once-only")).unwrap();
        assert!(r.deduplicated, "the retry should have been answered from the dedup window");
        let recs = c.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(recs.len(), 1, "exactly one copy despite the retried send");
        assert_eq!(&recs[0].value[..], b"once-only");
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counters["octopus_producer_duplicate_acks_total"], 1);
    }

    #[test]
    fn ambiguous_ack_retry_duplicates_without_idempotence() {
        // Control experiment: at-least-once (no stamp) really does
        // append twice under the same fault — proving the dedup path
        // is what saves the idempotent run above.
        let c = Cluster::new(3);
        c.create_topic("t", TopicConfig::default().with_partitions(1).with_replication(3))
            .unwrap();
        let p = Producer::new(
            c.clone(),
            ProducerConfig {
                acks: AckLevel::All,
                retries: 5,
                retry_backoff: Duration::from_millis(2),
                ..Default::default()
            },
        );
        let leader = c.leader_broker("t", 0).unwrap();
        c.fault_injector().inject_ack_drop(leader, 1);
        p.send_sync("t", ev("twice")).unwrap();
        let recs = c.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(recs.len(), 2, "at-least-once duplicates on ambiguous ack");
    }

    #[test]
    fn idempotent_sequences_survive_producer_batching() {
        // Many batches through one idempotent producer: offsets stay
        // dense and distinct (sequence bookkeeping advances correctly).
        let c = Cluster::new(2);
        c.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
        let p = Producer::new(
            c.clone(),
            ProducerConfig { batch_events: 7, ..ProducerConfig::idempotent() },
        );
        for i in 0..50 {
            p.send("t", ev(&format!("e{i}"))).unwrap();
            if i % 11 == 0 {
                p.flush(); // force uneven batch boundaries
            }
        }
        p.flush();
        let recs = c.fetch("t", 0, 0, 1000).unwrap();
        assert_eq!(recs.len(), 50);
        let stamped = recs.iter().filter_map(|r| r.eos.as_ref()).count();
        assert_eq!(stamped, 50, "every record carries the producer stamp");
    }

    #[test]
    fn acl_enforced_producer() {
        use octopus_auth::{AclStore, Permission};
        let acl = AclStore::new();
        let alice = Uid(1);
        let bob = Uid(2);
        acl.register_topic("private", alice).unwrap();
        acl.grant("private", alice, bob, &[Permission::Describe]).unwrap(); // no write
        let c = Cluster::builder(2).acl(acl).build();
        c.create_topic("private", TopicConfig::default()).unwrap();
        let p_alice =
            Producer::with_principal(c.clone(), ProducerConfig::default(), Some(alice));
        let p_bob = Producer::with_principal(c.clone(), ProducerConfig::default(), Some(bob));
        assert!(p_alice.send_sync("private", ev("ok")).is_ok());
        assert!(matches!(
            p_bob.send_sync("private", ev("nope")),
            Err(OctoError::Unauthorized(_))
        ));
    }
}
