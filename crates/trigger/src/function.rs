//! Trigger functions and their execution environment.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use octopus_types::{DeliveredEvent, Uid};

/// The paper's per-invocation batching limits: "the user can configure
/// (via Octopus) the function to process batches of up to 10,000 events
/// (or a total of 6 MB) per invocation" (§IV-D).
pub const MAX_BATCH_EVENTS: usize = 10_000;
/// Byte companion of [`MAX_BATCH_EVENTS`].
pub const MAX_BATCH_BYTES: usize = 6 * 1024 * 1024;

/// Execution environment configuration for a trigger function (the
/// Lambda-style knobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionConfig {
    /// Memory allotted to the function (GB-seconds billing input).
    pub memory_mb: u32,
    /// Wall-clock timeout per invocation, milliseconds.
    pub timeout_ms: u64,
    /// Events per invocation (clamped to [`MAX_BATCH_EVENTS`]).
    pub batch_size: usize,
    /// Bytes per invocation (clamped to [`MAX_BATCH_BYTES`]).
    pub batch_bytes: usize,
    /// Invocation retries before the batch is dead-lettered.
    pub retries: u32,
    /// Topic to receive batches that exhaust their retries.
    pub dlq_topic: Option<String>,
}

impl Default for FunctionConfig {
    fn default() -> Self {
        FunctionConfig {
            memory_mb: 128,
            timeout_ms: 5_000,
            batch_size: 100,
            batch_bytes: MAX_BATCH_BYTES,
            retries: 2,
            dlq_topic: None,
        }
    }
}

impl FunctionConfig {
    /// Clamp batch limits to the platform maxima.
    pub fn clamped(mut self) -> Self {
        self.batch_size = self.batch_size.clamp(1, MAX_BATCH_EVENTS);
        self.batch_bytes = self.batch_bytes.clamp(1, MAX_BATCH_BYTES);
        self
    }
}

/// Context passed to every invocation: who the trigger acts for and
/// which invocation this is. The identity is what lets trigger actions
/// call downstream services *on behalf of* the registering user
/// (the delegation model of §IV-C).
#[derive(Debug, Clone)]
pub struct FunctionContext {
    /// The trigger's name.
    pub trigger: String,
    /// Identity the trigger acts on behalf of.
    pub acting_as: Uid,
    /// Monotone invocation counter for this trigger.
    pub invocation: u64,
    /// Which retry attempt this is (0 = first try).
    pub attempt: u32,
}

/// What an invocation reported.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvocationOutcome {
    /// The function completed.
    Success,
    /// The function failed with a message (retriable).
    Failure(String),
    /// The function exceeded its timeout (retriable).
    TimedOut,
}

/// A trigger function: a callable over an event batch. Functions are
/// arbitrary Rust closures — the "polyvalent" requirement — wrapped in
/// `Arc` so triggers are cheap to clone into worker threads.
pub type TriggerFunction =
    Arc<dyn Fn(&FunctionContext, &[DeliveredEvent]) -> Result<(), String> + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_lambda_shape() {
        let c = FunctionConfig::default();
        assert_eq!(c.memory_mb, 128);
        assert_eq!(c.timeout_ms, 5_000);
        assert!(c.batch_size <= MAX_BATCH_EVENTS);
    }

    #[test]
    fn clamping_enforces_platform_limits() {
        let c = FunctionConfig {
            batch_size: 1_000_000,
            batch_bytes: usize::MAX,
            ..FunctionConfig::default()
        }
        .clamped();
        assert_eq!(c.batch_size, MAX_BATCH_EVENTS);
        assert_eq!(c.batch_bytes, MAX_BATCH_BYTES);
        let c = FunctionConfig { batch_size: 0, batch_bytes: 0, ..FunctionConfig::default() }
            .clamped();
        assert_eq!(c.batch_size, 1);
        assert_eq!(c.batch_bytes, 1);
    }
}
