//! `octopus-top`: a live text dashboard over a scraped broker fleet.
//!
//! Self-contained demo of the network observatory: three independent
//! broker nodes (each a small in-process cluster behind its own
//! [`WireServer`] with a distinct broker id), producer traffic over
//! real loopback sockets, and a [`FleetPoller`] scraping every node's
//! `DescribeMetrics` / `DescribeHealth` endpoints each tick. Midway
//! through the run a chaos cut severs one node's live connections, so
//! the dashboard shows the redial/recovery arc the transport's
//! resilience counters record.
//!
//! Modes:
//!
//! - default: renders the fleet table to the terminal every tick
//!   (ANSI clear + redraw), bounded by `--ticks N` (default 12).
//! - `--json`: runs a short bounded burst and prints one machine
//!   readable summary (`scripts/ci.sh` gates on it).
//! - `--no-chaos`: skip the mid-run connection cut.
//!
//! `cargo run --release -p octopus-bench --bin octopus_top [-- --json]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use octopus_broker::{AckLevel, BrokerId, Cluster, RecordBatch, TopicConfig};
use octopus_types::obs::labeled;
use octopus_types::Event;
use octopus_wire::{
    Authenticator, FleetPoller, FleetView, TcpTransport, TcpTransportConfig, Transport,
    WireServer, WireServerConfig,
};

const TOPIC: &str = "top.events";
const FLEET: usize = 3;

struct Node {
    cluster: Cluster,
    server: WireServer,
}

fn spawn_fleet() -> Vec<Node> {
    (0..FLEET)
        .map(|i| {
            let cluster = Cluster::new(2);
            cluster
                .create_topic(TOPIC, TopicConfig::default().with_partitions(2))
                .expect("create topic");
            let server = WireServer::bind(
                cluster.clone(),
                Authenticator::open(),
                "127.0.0.1:0",
                WireServerConfig { broker_id: BrokerId(i as u32), ..Default::default() },
            )
            .expect("bind wire server");
            Node { cluster, server }
        })
        .collect()
}

/// One background producer per node, over a real socket, until `stop`.
fn spawn_traffic(
    nodes: &[Node],
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let addr = node.server.local_addr().to_string();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let transport = TcpTransport::connect(
                    addr,
                    TcpTransportConfig { trace_sample_every: 16, ..Default::default() },
                );
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let events: Vec<Event> = (0..8)
                        .map(|j| Event::from_bytes(format!("b{i}-{n}-{j}").into_bytes()))
                        .collect();
                    // chaos cuts make individual sends fail; the
                    // transport redials on the next call, so errors
                    // here are part of the demo, not fatal.
                    let _ = transport.produce_batch(
                        TOPIC,
                        (n % 2) as u32,
                        RecordBatch::new(events),
                        AckLevel::Leader,
                    );
                    n += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        })
        .collect()
}

/// Per-broker reassignment snapshots, scraped over the wire.
fn scrape_reassignments(
    admins: &[TcpTransport],
) -> Vec<Vec<octopus_broker::ReassignStatus>> {
    admins
        .iter()
        .map(|t| t.describe_reassignments().unwrap_or_default())
        .collect()
}

fn render(
    view: &FleetView,
    reassignments: &[Vec<octopus_broker::ReassignStatus>],
    tick: usize,
    ticks: usize,
    chaos_note: &str,
) {
    // clear screen + home, then redraw the whole frame
    print!("\x1b[2J\x1b[H");
    println!("octopus-top — fleet of {FLEET} brokers, tick {}/{ticks}{chaos_note}", tick + 1);
    println!();
    println!(
        "{:<10} {:>3} {:<7} {:>10} {:>12} {:>12} {:>12} {:>6} {:>8}",
        "broker", "id", "health", "requests", "prod p99 us", "bytes in", "bytes out", "conns",
        "lag"
    );
    for b in &view.brokers {
        let counter = |name: &str| b.metrics.snapshot.counters.get(name).copied().unwrap_or(0);
        let p99_us = b
            .metrics
            .snapshot
            .histograms
            .get(&labeled("octopus_wire_request_ns", &[("api", "produce")]))
            .map(|h| h.p99() as f64 / 1e3)
            .unwrap_or(0.0);
        let lag: u64 = b.health.lag.iter().map(|l| l.total).sum();
        println!(
            "{:<10} {:>3} {:<7} {:>10} {:>12.1} {:>12} {:>12} {:>6} {:>8}",
            b.source,
            b.metrics.broker_id,
            format!("{:?}", b.health.report.status),
            counter("octopus_wire_requests_total"),
            p99_us,
            counter("octopus_wire_bytes_in_total"),
            counter("octopus_wire_bytes_out_total"),
            b.metrics.snapshot.gauges.get("octopus_wire_open_connections").copied().unwrap_or(0),
            lag,
        );
    }
    for (label, err) in &view.unreachable {
        println!("{label:<10}  -- UNREACHABLE: {err}");
    }
    let moves: Vec<(usize, &octopus_broker::ReassignStatus)> = reassignments
        .iter()
        .enumerate()
        .flat_map(|(i, rs)| rs.iter().map(move |r| (i, r)))
        .collect();
    if !moves.is_empty() {
        println!();
        println!("reassignments:");
        for (i, r) in moves {
            println!(
                "  broker-{i} {}/{}: {} -> {} [{:?}] {}/{} records (epoch {})",
                r.topic, r.partition, r.from, r.to, r.phase, r.copied, r.target, r.epoch
            );
        }
    }
    println!();
    println!(
        "fleet: {} requests, {} conns accepted / {} closed, {} poisoned, {} backpressure stalls, produce p99 {:.1} us",
        view.counter("octopus_wire_requests_total"),
        view.counter("octopus_wire_connections_accepted_total"),
        view.counter("octopus_wire_connections_closed_total"),
        view.counter("octopus_wire_connections_poisoned_total"),
        view.counter("octopus_wire_backpressure_stalls_total"),
        view.p99(&labeled("octopus_wire_request_ns", &[("api", "produce")])) as f64 / 1e3,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let chaos = !args.iter().any(|a| a == "--no-chaos");
    let ticks: usize = args
        .iter()
        .position(|a| a == "--ticks")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if json { 6 } else { 12 });
    let interval = Duration::from_millis(if json { 200 } else { 500 });

    let nodes = spawn_fleet();
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = spawn_traffic(&nodes, &stop);

    let mut poller = FleetPoller::new();
    for (i, node) in nodes.iter().enumerate() {
        poller.add_endpoint(
            format!("broker-{i}"),
            node.server.local_addr().to_string(),
            TcpTransportConfig::default(),
        );
    }
    // a second connection per node for admin scrapes (reassignments)
    let admins: Vec<TcpTransport> = nodes
        .iter()
        .map(|n| {
            TcpTransport::connect(n.server.local_addr().to_string(), TcpTransportConfig::default())
        })
        .collect();

    let mut last: Option<FleetView> = None;
    let mut last_moves: Vec<Vec<octopus_broker::ReassignStatus>> = Vec::new();
    let mut severed = 0usize;
    for tick in 0..ticks {
        std::thread::sleep(interval);
        if tick == ticks / 3 {
            // elastic demo on node 0: grow the fleet by one broker and
            // move a partition onto it over the admin wire api — the
            // dashboard tracks the learner's catch-up progress
            let node = &nodes[0];
            if let (Ok(from), Ok(to)) =
                (node.cluster.leader_broker(TOPIC, 0), node.cluster.add_broker())
            {
                let _ = admins[0].alter_partition_assignment(TOPIC, 0, from.0, to.0, u64::MAX);
            }
        }
        if chaos && tick == ticks / 2 {
            // chaos: cut every live socket on one node; producers and
            // the poller both redial transparently
            severed = nodes[1].server.sever_connections();
        }
        match poller.poll() {
            Ok(view) => {
                last_moves = scrape_reassignments(&admins);
                if !json {
                    let note = if chaos && tick >= ticks / 2 {
                        format!("  (chaos: severed {severed} conns on broker-1)")
                    } else {
                        String::new()
                    };
                    render(&view, &last_moves, tick, ticks, &note);
                }
                last = Some(view);
            }
            Err(e) => {
                if !json {
                    println!("poll failed: {e}");
                }
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    for t in traffic {
        let _ = t.join();
    }

    let view = last.expect("fleet was never reachable");
    let moves_total: usize = last_moves.iter().map(|rs| rs.len()).sum();
    let moves_completed: usize = last_moves
        .iter()
        .flatten()
        .filter(|r| r.phase == octopus_broker::ReassignPhase::Completed)
        .count();
    let summary = serde_json::json!({
        "brokers": view.brokers.len(),
        "unreachable": view.unreachable.len(),
        "chaos": chaos,
        "severed_connections": severed,
        "reassignments_total": moves_total,
        "reassignments_completed": moves_completed,
        "octopus_wire_requests_total": view.counter("octopus_wire_requests_total"),
        "octopus_wire_bytes_in_total": view.counter("octopus_wire_bytes_in_total"),
        "octopus_wire_connections_accepted_total":
            view.counter("octopus_wire_connections_accepted_total"),
        "produce_p99_us":
            view.p99(&labeled("octopus_wire_request_ns", &[("api", "produce")])) as f64 / 1e3,
        "ok": view.brokers.len() == FLEET
            && view.counter("octopus_wire_requests_total") > 0
            && moves_completed >= 1,
    });
    if json {
        println!("{}", serde_json::to_string_pretty(&summary).unwrap());
    } else {
        println!("\nsummary: {summary}");
    }
    assert!(summary["ok"].as_bool().unwrap(), "fleet scrape failed");
}
