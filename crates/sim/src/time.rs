//! Virtual time.
//!
//! Simulation time is a nanosecond counter starting at zero. Nanosecond
//! resolution lets the fabric model per-event broker service costs (a
//! 1 KB produce request costs microseconds) without rounding error, while
//! `u64` still covers ~584 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e9) as u64)
    }

    /// Nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// From fractional milliseconds. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6) as u64)
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a factor (clamped at zero).
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration(((self.0 as f64) * k).max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(46).as_nanos(), 46_000_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_nanos(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis_f64(), 10.0);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(10));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO); // saturates
        let mut t2 = t;
        t2 += SimDuration::from_millis(5);
        assert_eq!(t2.as_millis_f64(), 15.0);
    }

    #[test]
    fn negative_floats_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(3).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
