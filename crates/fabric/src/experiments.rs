//! Experiment runners for the paper's fabric evaluation artifacts:
//! Table III, Fig. 3, Fig. 5, and the §V-D trigger throughput numbers.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::des::{run_consume, run_produce};
use crate::instance::ClientLocation;
use crate::model::Calibration;
use crate::shape::{Acks, ExpConfig, SCALE_OUT, SCALE_UP};

/// Producer counts swept in Fig. 3 ("20, 40, 60, 80, and 100
/// producers"); Table III reports the peak.
pub const PRODUCER_SWEEP: [u32; 5] = [20, 40, 60, 80, 100];

/// One regenerated Table III row.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Experiment index (1–9).
    pub index: u32,
    /// Cluster shape name.
    pub cluster: &'static str,
    /// Replication factor.
    pub replication: u32,
    /// Partitions.
    pub partitions: u32,
    /// Acks level as printed in the paper.
    pub acks: &'static str,
    /// Event size in bytes.
    pub event_size: usize,
    /// Local producer throughput (events/s), median & p99 latency (ms).
    pub local_produce: (f64, f64, f64),
    /// Local consumer throughput (events/s).
    pub local_consume: f64,
    /// Remote producer throughput, median & p99 latency.
    pub remote_produce: (f64, f64, f64),
    /// Remote consumer throughput.
    pub remote_consume: f64,
}

fn acks_label(a: Acks) -> &'static str {
    match a {
        Acks::None => "0",
        Acks::Leader => "1",
        Acks::All => "all",
    }
}

/// The nine Table III experiment configurations.
pub fn table3_configs() -> Vec<(u32, ExpConfig)> {
    let base = ExpConfig::paper_default();
    vec![
        (1, ExpConfig { event_size: 32, ..base }),
        (2, base),
        (3, ExpConfig { acks: Acks::Leader, ..base }),
        (4, ExpConfig { acks: Acks::All, ..base }),
        (5, ExpConfig { event_size: 4096, ..base }),
        (6, ExpConfig { partitions: 4, ..base }),
        (7, ExpConfig { cluster: SCALE_UP, partitions: 4, ..base }),
        (8, ExpConfig { cluster: SCALE_OUT, partitions: 4, ..base }),
        (9, ExpConfig { cluster: SCALE_OUT, partitions: 4, replication: 4, ..base }),
    ]
}

/// Peak produce stats over the producer sweep.
fn peak_produce(cfg: ExpConfig, cal: Calibration, seed: u64) -> (f64, f64, f64) {
    PRODUCER_SWEEP
        .par_iter()
        .map(|&n| {
            let s = run_produce(ExpConfig { clients: n, ..cfg }, cal, seed + n as u64);
            (s.throughput_eps, s.median_ms, s.p99_ms)
        })
        .reduce(
            || (0.0, 0.0, 0.0),
            |a, b| if b.0 > a.0 { b } else { a },
        )
}

/// Regenerate Table III.
pub fn table3(cal: Calibration, seed: u64) -> Vec<Table3Row> {
    table3_configs()
        .into_par_iter()
        .map(|(index, cfg)| {
            let local_cfg = ExpConfig { location: ClientLocation::Local, ..cfg };
            let remote_cfg = ExpConfig { location: ClientLocation::Remote, ..cfg };
            let local_produce = peak_produce(local_cfg, cal, seed);
            let remote_produce = peak_produce(remote_cfg, cal, seed);
            let local_consume =
                run_consume(ExpConfig { clients: 100, ..local_cfg }, cal, seed).throughput_eps;
            let remote_consume =
                run_consume(ExpConfig { clients: 100, ..remote_cfg }, cal, seed).throughput_eps;
            Table3Row {
                index,
                cluster: cfg.cluster.name,
                replication: cfg.replication,
                partitions: cfg.partitions,
                acks: acks_label(cfg.acks),
                event_size: cfg.event_size,
                local_produce,
                local_consume,
                remote_produce,
                remote_consume,
            }
        })
        .collect()
}

/// One point of a Fig. 3 curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Number of producers.
    pub producers: u32,
    /// Throughput, events/s.
    pub throughput_eps: f64,
    /// Median latency, ms.
    pub median_ms: f64,
    /// p99 latency, ms.
    pub p99_ms: f64,
}

/// Fig. 3: latency vs throughput for configurations 1–6 (baseline
/// cluster) with remote producers, sweeping the producer count.
pub fn fig3(cal: Calibration, seed: u64) -> Vec<(u32, Vec<Fig3Point>)> {
    table3_configs()
        .into_iter()
        .filter(|(i, _)| *i <= 6)
        .map(|(i, cfg)| {
            let points = PRODUCER_SWEEP
                .par_iter()
                .map(|&n| {
                    let s = run_produce(
                        ExpConfig { clients: n, location: ClientLocation::Remote, ..cfg },
                        cal,
                        seed + n as u64,
                    );
                    Fig3Point {
                        producers: n,
                        throughput_eps: s.throughput_eps,
                        median_ms: s.median_ms,
                        p99_ms: s.p99_ms,
                    }
                })
                .collect();
            (i, points)
        })
        .collect()
}

/// One point of the Fig. 5 multi-tenancy series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Number of topics.
    pub topics: u32,
    /// Aggregate producer throughput, events/s.
    pub produce_eps: f64,
    /// Aggregate consumer throughput, events/s.
    pub consume_eps: f64,
}

/// Fig. 5: throughput vs topic count on the scale-out cluster —
/// 1 partition and replication 2 per topic, 1 KB events, 32 clients on
/// AWS instances, topics 1..32 in powers of two.
pub fn fig5(cal: Calibration, seed: u64) -> Vec<Fig5Point> {
    [1u32, 2, 4, 8, 16, 32]
        .par_iter()
        .map(|&topics| {
            let cfg = ExpConfig {
                cluster: SCALE_OUT,
                replication: 2,
                partitions: 1,
                topics,
                acks: Acks::None,
                event_size: 1024,
                clients: 32,
                location: ClientLocation::Local,
            };
            Fig5Point {
                topics,
                produce_eps: run_produce(cfg, cal, seed).throughput_eps,
                consume_eps: run_consume(cfg, cal, seed).throughput_eps,
            }
        })
        .collect()
}

/// Trigger consumer throughput model (§V-D).
///
/// Lambda pollers process each partition serially: an invocation cycle
/// costs a fixed poll/dispatch overhead plus per-event and per-byte
/// function-side work, and adding partitions multiplies pollers with a
/// small coordination penalty — the paper observes 8 partitions giving
/// "roughly six times" one partition's throughput.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TriggerModel {
    /// Per-event dispatch overhead, seconds.
    pub per_event: f64,
    /// Per-byte processing cost, seconds.
    pub per_byte: f64,
    /// Pairwise coordination penalty between pollers.
    pub contention: f64,
}

impl Default for TriggerModel {
    fn default() -> Self {
        TriggerModel { per_event: 42e-6, per_byte: 100e-9, contention: 0.048 }
    }
}

impl TriggerModel {
    /// Events/second a trigger sustains on `partitions` partitions of
    /// `event_size`-byte events.
    pub fn throughput(&self, partitions: u32, event_size: usize) -> f64 {
        let per_partition = 1.0 / (self.per_event + event_size as f64 * self.per_byte);
        let n = partitions as f64;
        n * per_partition / (1.0 + (n - 1.0) * self.contention)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_nine_rows_in_order() {
        let rows = table3(Calibration::default(), 7);
        assert_eq!(rows.len(), 9);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.index as usize, i + 1);
        }
        assert_eq!(rows[0].event_size, 32);
        assert_eq!(rows[3].acks, "all");
        assert_eq!(rows[6].cluster, "Scale-up");
        assert_eq!(rows[8].replication, 4);
    }

    #[test]
    fn table3_headline_shapes() {
        let rows = table3(Calibration::default(), 7);
        let r1 = &rows[0];
        let r2 = &rows[1];
        let r4 = &rows[3];
        let r5 = &rows[4];
        let r8 = &rows[7];
        let r9 = &rows[8];
        // 32B ≫ 1KB ≫ 4KB event rates
        assert!(r1.local_produce.0 > 1e6, "32B local produce {}", r1.local_produce.0);
        assert!(r2.local_produce.0 > 3.0 * r5.local_produce.0);
        // acks=all collapses throughput
        assert!(r4.local_produce.0 < 0.6 * r2.local_produce.0);
        // consumers beat producers
        assert!(r2.local_consume > r2.local_produce.0);
        assert!(r1.remote_consume > r1.remote_produce.0);
        // scale-out rep 4 < rep 2 writes; reads close
        assert!(r9.local_produce.0 < r8.local_produce.0);
        let read_ratio = r9.local_consume / r8.local_consume;
        assert!((0.85..=1.15).contains(&read_ratio));
    }

    #[test]
    fn fig3_has_six_curves_of_five_points() {
        let curves = fig3(Calibration::default(), 3);
        assert_eq!(curves.len(), 6);
        for (_, pts) in &curves {
            assert_eq!(pts.len(), 5);
            // latency does not decrease as producers (load) grow
            assert!(pts.last().unwrap().median_ms >= pts.first().unwrap().median_ms * 0.8);
            // throughput is non-decreasing-ish until saturation
            assert!(pts.last().unwrap().throughput_eps >= pts.first().unwrap().throughput_eps * 0.9);
        }
    }

    #[test]
    fn fig5_shapes() {
        let pts = fig5(Calibration::default(), 5);
        assert_eq!(pts.len(), 6);
        // producer throughput grows from 1 to 4 topics then flattens
        let t1 = pts[0].produce_eps;
        let t4 = pts[2].produce_eps;
        let t32 = pts[5].produce_eps;
        assert!(t4 > 1.5 * t1, "1→4 topics grows: {t1} → {t4}");
        assert!(t32 < 1.35 * t4, "beyond 4 topics roughly flat: {t4} → {t32}");
        // consumer throughput keeps growing past 4 topics
        let c1 = pts[0].consume_eps;
        let c16 = pts[4].consume_eps;
        assert!(c16 > 2.0 * c1, "consumers keep scaling: {c1} → {c16}");
        // and consumers exceed producers throughout
        for p in &pts {
            assert!(p.consume_eps > p.produce_eps * 0.8, "{p:?}");
        }
    }

    #[test]
    fn trigger_model_matches_paper_figures() {
        let m = TriggerModel::default();
        // 1 partition: 22K / 7K / 2K ev/s for 32B / 1KB / 4KB
        let t32 = m.throughput(1, 32);
        let t1k = m.throughput(1, 1024);
        let t4k = m.throughput(1, 4096);
        assert!((15_000.0..=35_000.0).contains(&t32), "32B 1p {t32}");
        assert!((5_000.0..=10_000.0).contains(&t1k), "1KB 1p {t1k}");
        assert!((1_500.0..=3_000.0).contains(&t4k), "4KB 1p {t4k}");
        // 8 partitions: "roughly six times faster"
        for s in [32usize, 1024, 4096] {
            let ratio = m.throughput(8, s) / m.throughput(1, s);
            assert!((5.0..=7.0).contains(&ratio), "8p/1p ratio {ratio} at {s}B");
        }
    }
}
