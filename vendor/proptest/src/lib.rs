//! Hermetic stand-in for `proptest`.
//!
//! Implements the [`Strategy`] combinators and macros this workspace
//! uses — numeric ranges, char-class string patterns, tuples,
//! `prop_oneof!`, `prop_map`, `collection::{vec, btree_map,
//! btree_set}`, `option::of`, `any::<T>()`, `Just` — driven by a
//! deterministic per-test seed. Failing inputs are reported via
//! panic message; shrinking is intentionally not implemented.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed explicitly.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Derive a deterministic seed from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seeded(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// Box a strategy for heterogeneous unions (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies (behind `prop_oneof!`).
pub struct Union<T> {
    variants: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new(variants: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, strat) in &self.variants {
            if pick < *w as u64 {
                return strat.gen_value(rng);
            }
            pick -= *w as u64;
        }
        self.variants[0].1.gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a default "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of unit-interval and scaled values; no NaN/inf so
        // comparisons in tests stay total.
        let raw = rng.unit_f64();
        (raw - 0.5) * 2e6
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

/// `any::<T>()` output.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($idx:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Char-class pattern strategy: `&str` like `"[a-z]{1,10}"` generates
/// matching strings; strings without a leading `[` generate
/// themselves verbatim.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_char_class(self)
            .unwrap_or_else(|| (self.chars().collect(), 1, 1));
        if chars.is_empty() {
            return String::new();
        }
        let len = if max > min { min + rng.below((max - min + 1) as u64) as usize } else { min };
        if parse_char_class(self).is_none() {
            // Literal pattern: emit the string itself.
            return self.to_string();
        }
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

/// Parse `[class]{m,n}` / `[class]{n}` / `[class]`; `None` when the
/// pattern is not in that shape.
fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let tail = &rest[close + 1..];

    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (dash not first/last in class)
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo <= hi {
                for c in lo..=hi {
                    chars.push(c);
                }
                i += 3;
                continue;
            }
        }
        chars.push(class[i]);
        i += 1;
    }

    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Acceptable size arguments: `usize` or `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            }
        }
    }

    /// `Vec` of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `BTreeMap` from key/value strategies.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generate maps with entry counts in `size` (distinct keys).
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Bounded attempts: small key domains may not yield
            // `target` distinct keys.
            for _ in 0..target.saturating_mul(10).max(10) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            }
            map
        }
    }

    /// `BTreeSet` from an element strategy.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate sets with sizes in `size` (distinct elements).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            for _ in 0..target.saturating_mul(10).max(10) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.gen_value(rng));
            }
            set
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// `Option` of values from `inner` (~20% `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Option<T>` values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Number-of-cases knob, mirroring proptest's `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Any, Arbitrary, Just, Strategy, TestRng, Union,
    };
}

pub use test_runner::ProptestConfig;

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

/// Define property tests. Each `#[test] fn name(args in strategies)`
/// expands to a deterministic loop over generated cases.
#[macro_export]
macro_rules! proptest {
    (@body $cfg:expr; $($rest:tt)*) => {
        $crate::proptest!{@fns $cfg; $($rest)*}
    };
    (@fns $cfg:expr; ) => {};
    (@fns $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            #[allow(clippy::redundant_clone)]
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::gen_value(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::proptest!{@fns $cfg; $($rest)*}
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@body $cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@body $crate::test_runner::ProptestConfig::default(); $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_char_classes() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..200 {
            let v = (3u64..10).gen_value(&mut rng);
            assert!((3..10).contains(&v));
            let s = "[a-c]{2,4}".gen_value(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let strat = collection::vec(0u64..100, 1..10);
        let mut a = TestRng::seeded(9);
        let mut b = TestRng::seeded(9);
        for _ in 0..20 {
            assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
        }
    }

    #[test]
    fn oneof_and_map() {
        let strat = prop_oneof![
            3 => (0u8..10).prop_map(|v| v as u32),
            1 => Just(99u32),
        ];
        let mut rng = TestRng::seeded(4);
        let mut saw_low = false;
        let mut saw_just = false;
        for _ in 0..300 {
            match strat.gen_value(&mut rng) {
                99 => saw_just = true,
                v if v < 10 => saw_low = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_low && saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_smoke(xs in collection::vec(any::<u8>(), 0..16), flag in any::<bool>()) {
            prop_assume!(!xs.is_empty() || flag);
            prop_assert!(xs.len() < 16);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }

    proptest! {
        #[test]
        fn tuple_pattern((a, b) in (0u8..5, 5u8..10)) {
            prop_assert!(a < 5 && b >= 5);
        }
    }
}
