//! A discrete-event simulation model of the paper's cloud deployment.
//!
//! The evaluation testbed (§V-A) cannot be rented for a reproduction:
//! MSK clusters in `us-east-1` (Table II shapes), local clients on two
//! EC2 c5.24xlarge instances, and remote clients on two bare-metal
//! Chameleon nodes at TACC with a 46–47 ms RTT. This crate models that
//! deployment on the `octopus-sim` kernel:
//!
//! - [`instance`]: broker/client instance types (vCPUs, serial request
//!   capacity, IO bandwidth).
//! - [`shape`]: the three Table II cluster shapes.
//! - [`model`]: calibrated cost constants (per-request, per-event,
//!   per-byte service costs; replication amplification; read-path
//!   discount) — see `model::Calibration` for the rationale.
//! - [`des`]: closed-loop producer/consumer processes with bounded
//!   in-flight request windows, client-side batching, per-partition
//!   single-writer queues, broker CPU pools, ISR replication, and
//!   acks=0/1/all semantics.
//! - [`experiments`]: runners that regenerate Table III rows, Fig. 3
//!   latency-vs-throughput curves, Fig. 5 multi-tenancy series, and the
//!   §V-D trigger-throughput figures.
//!
//! The model is *calibrated for shape, not absolutes*: orderings across
//! message sizes, acks levels, partition counts, replication factors and
//! cluster shapes are preserved; absolute numbers land in the right
//! order of magnitude (see EXPERIMENTS.md for paper-vs-measured).

pub mod des;
pub mod experiments;
pub mod instance;
pub mod model;
pub mod shape;

pub use des::{run_consume, run_produce, ConsumeStats, ProduceStats};
pub use experiments::{table3, Table3Row};
pub use instance::{ClientLocation, InstanceType};
pub use model::Calibration;
pub use shape::{ClusterShape, ExpConfig};
