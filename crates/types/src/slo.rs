//! SLO burn-rate alerting over registry snapshots.
//!
//! The paper's operators keep five live applications healthy by
//! watching fleet dashboards (§V–VI); the operable form of that is a
//! service-level objective with multi-window burn-rate alerts (the
//! Google SRE workbook recipe): an alert fires only when the error
//! budget is burning fast over *both* a short and a long window, which
//! keeps one transient blip from paging while still catching slow
//! leaks. Windows are expressed in nanoseconds of *caller time* — the
//! monitor never reads a clock — so chaos tests can compress "5
//! minutes" into milliseconds of simulated time.
//!
//! The monitor is deliberately snapshot-driven: feed it
//! [`RegistrySnapshot`]s (cumulative counters / histograms) at whatever
//! cadence the harness likes and it differentiates rates itself.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::obs::RegistrySnapshot;

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SloObjective {
    /// Availability: `good` and `total` are cumulative counter names in
    /// the registry; the error rate is `(Δtotal − Δgood) / Δtotal`.
    Availability {
        /// Counter of successful events.
        good: String,
        /// Counter of attempted events.
        total: String,
    },
    /// Latency: `histogram` is a registry histogram of nanosecond
    /// samples; an event is good when it lands at or below
    /// `threshold_ns` (to bucket resolution).
    Latency {
        /// Histogram name in the registry.
        histogram: String,
        /// Good/bad latency boundary in nanoseconds.
        threshold_ns: u64,
    },
}

/// One service-level objective plus its burn-rate alert policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Objective name (alert correlation key).
    pub name: String,
    /// What is measured.
    pub objective: SloObjective,
    /// Target success ratio in (0, 1), e.g. `0.99`. The error budget is
    /// `1 − target`.
    pub target: f64,
    /// Fast window length (ns of caller time) — the "5m" window.
    pub fast_window_ns: u64,
    /// Slow window length (ns of caller time) — the "1h" window.
    pub slow_window_ns: u64,
    /// Burn-rate threshold over the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold over the slow window.
    pub slow_burn: f64,
}

/// 5 minutes in nanoseconds (default fast window).
pub const FAST_WINDOW_NS: u64 = 5 * 60 * 1_000_000_000;
/// 1 hour in nanoseconds (default slow window).
pub const SLOW_WINDOW_NS: u64 = 60 * 60 * 1_000_000_000;

impl SloSpec {
    /// An availability SLO with the standard page-severity policy
    /// (5m/1h-equivalent windows, 14.4×/6× burn thresholds).
    pub fn availability(
        name: impl Into<String>,
        good: impl Into<String>,
        total: impl Into<String>,
        target: f64,
    ) -> Self {
        SloSpec {
            name: name.into(),
            objective: SloObjective::Availability { good: good.into(), total: total.into() },
            target,
            fast_window_ns: FAST_WINDOW_NS,
            slow_window_ns: SLOW_WINDOW_NS,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }

    /// A latency SLO: `target` of events must land at or below
    /// `threshold_ns`.
    pub fn latency(
        name: impl Into<String>,
        histogram: impl Into<String>,
        threshold_ns: u64,
        target: f64,
    ) -> Self {
        SloSpec {
            name: name.into(),
            objective: SloObjective::Latency { histogram: histogram.into(), threshold_ns },
            target,
            fast_window_ns: FAST_WINDOW_NS,
            slow_window_ns: SLOW_WINDOW_NS,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }

    /// Override the evaluation windows (sim-time tests compress them).
    pub fn windows(mut self, fast_ns: u64, slow_ns: u64) -> Self {
        self.fast_window_ns = fast_ns;
        self.slow_window_ns = slow_ns;
        self
    }

    /// Override the burn-rate thresholds.
    pub fn burn_thresholds(mut self, fast: f64, slow: f64) -> Self {
        self.fast_burn = fast;
        self.slow_burn = slow;
        self
    }
}

/// Whether an alert event opens or closes an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    /// Both windows exceeded their burn thresholds.
    Firing,
    /// The fast window recovered below its threshold.
    Resolved,
}

/// A typed alert event emitted by [`SloMonitor::observe`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Name of the SLO that transitioned.
    pub slo: String,
    /// Firing or resolved.
    pub state: AlertState,
    /// Caller-time nanoseconds of the observation that transitioned.
    pub at_ns: u64,
    /// Burn rate over the fast window at transition time.
    pub fast_burn: f64,
    /// Burn rate over the slow window at transition time.
    pub slow_burn: f64,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    at_ns: u64,
    good: f64,
    total: f64,
}

#[derive(Debug)]
struct SloTrack {
    spec: SloSpec,
    history: VecDeque<Sample>,
    firing: bool,
}

impl SloTrack {
    /// Error rate over the trailing `window_ns`: difference the newest
    /// sample against the youngest sample at or before the window
    /// start (or the oldest available while history is still short).
    fn error_rate(&self, now_ns: u64, window_ns: u64) -> f64 {
        let newest = match self.history.back() {
            Some(s) => *s,
            None => return 0.0,
        };
        let start = now_ns.saturating_sub(window_ns);
        let baseline = self
            .history
            .iter()
            .rev()
            .find(|s| s.at_ns <= start)
            .copied()
            .unwrap_or_else(|| *self.history.front().expect("non-empty"));
        let d_total = newest.total - baseline.total;
        if d_total <= 0.0 {
            return 0.0;
        }
        let d_good = (newest.good - baseline.good).max(0.0);
        ((d_total - d_good) / d_total).clamp(0.0, 1.0)
    }
}

/// Evaluates a set of [`SloSpec`]s against successive registry
/// snapshots and emits [`Alert`]s on burn-rate transitions.
#[derive(Debug, Default)]
pub struct SloMonitor {
    tracks: Vec<SloTrack>,
}

impl SloMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an objective to evaluate.
    pub fn add(&mut self, spec: SloSpec) -> &mut Self {
        self.tracks.push(SloTrack { spec, history: VecDeque::new(), firing: false });
        self
    }

    /// Names of the SLOs currently firing.
    pub fn firing(&self) -> Vec<&str> {
        self.tracks.iter().filter(|t| t.firing).map(|t| t.spec.name.as_str()).collect()
    }

    /// Feed one observation: `now_ns` is caller time (wall or
    /// simulated), `snap` the cumulative registry state at that
    /// instant. Returns the alerts that *transitioned* on this
    /// observation — at most one per SLO.
    pub fn observe(&mut self, now_ns: u64, snap: &RegistrySnapshot) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for track in &mut self.tracks {
            let (good, total) = extract(&track.spec.objective, snap);
            track.history.push_back(Sample { at_ns: now_ns, good, total });
            // keep exactly one sample beyond the slow window as the
            // differencing baseline
            let slow_start = now_ns.saturating_sub(track.spec.slow_window_ns);
            while track.history.len() > 2
                && track.history[1].at_ns <= slow_start
            {
                track.history.pop_front();
            }

            let budget = (1.0 - track.spec.target).max(f64::EPSILON);
            let fast_burn = track.error_rate(now_ns, track.spec.fast_window_ns) / budget;
            let slow_burn = track.error_rate(now_ns, track.spec.slow_window_ns) / budget;

            let spec = &track.spec;
            if !track.firing && fast_burn >= spec.fast_burn && slow_burn >= spec.slow_burn {
                track.firing = true;
                alerts.push(Alert {
                    slo: spec.name.clone(),
                    state: AlertState::Firing,
                    at_ns: now_ns,
                    fast_burn,
                    slow_burn,
                });
            } else if track.firing && fast_burn < spec.fast_burn {
                track.firing = false;
                alerts.push(Alert {
                    slo: spec.name.clone(),
                    state: AlertState::Resolved,
                    at_ns: now_ns,
                    fast_burn,
                    slow_burn,
                });
            }
        }
        alerts
    }
}

/// Cumulative (good, total) for an objective from a snapshot. Missing
/// instruments read as zero (metrics are best-effort).
fn extract(objective: &SloObjective, snap: &RegistrySnapshot) -> (f64, f64) {
    match objective {
        SloObjective::Availability { good, total } => (
            snap.counters.get(good).copied().unwrap_or(0) as f64,
            snap.counters.get(total).copied().unwrap_or(0) as f64,
        ),
        SloObjective::Latency { histogram, threshold_ns } => snap
            .histograms
            .get(histogram)
            .map(|h| (h.count_below(*threshold_ns) as f64, h.count() as f64))
            .unwrap_or((0.0, 0.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MetricsRegistry;

    /// One simulated millisecond stands in for one real minute.
    const MS: u64 = 1_000_000;

    fn spec() -> SloSpec {
        // fast window "5m" = 5 ms, slow window "1h" = 60 ms of sim time
        SloSpec::availability("produce", "good", "total", 0.9)
            .windows(5 * MS, 60 * MS)
            .burn_thresholds(2.0, 1.0)
    }

    fn snap(good: u64, total: u64) -> RegistrySnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("good").add(good);
        reg.counter("total").add(total);
        reg.snapshot()
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let mut mon = SloMonitor::new();
        mon.add(spec());
        for i in 1..=100u64 {
            let alerts = mon.observe(i * MS, &snap(i * 10, i * 10));
            assert!(alerts.is_empty(), "tick {i}: {alerts:?}");
        }
        assert!(mon.firing().is_empty());
    }

    #[test]
    fn burn_fires_then_resolves() {
        let mut mon = SloMonitor::new();
        mon.add(spec());
        // warm-up: 10 ticks of clean traffic
        let mut good = 0u64;
        let mut total = 0u64;
        let mut t = 0u64;
        for _ in 0..10 {
            t += MS;
            good += 10;
            total += 10;
            assert!(mon.observe(t, &snap(good, total)).is_empty());
        }
        // outage: everything fails; both windows must exceed thresholds
        let mut fired = None;
        for _ in 0..20 {
            t += MS;
            total += 10;
            for a in mon.observe(t, &snap(good, total)) {
                assert_eq!(a.state, AlertState::Firing);
                assert!(a.fast_burn >= 2.0 && a.slow_burn >= 1.0);
                assert!(fired.is_none(), "must fire exactly once");
                fired = Some(a.at_ns);
            }
        }
        assert!(fired.is_some(), "sustained outage must fire");
        assert_eq!(mon.firing(), vec!["produce"]);
        // recovery: clean traffic drains the fast window
        let mut resolved = None;
        for _ in 0..30 {
            t += MS;
            good += 10;
            total += 10;
            for a in mon.observe(t, &snap(good, total)) {
                assert_eq!(a.state, AlertState::Resolved);
                assert!(resolved.is_none(), "must resolve exactly once");
                resolved = Some(a.at_ns);
            }
        }
        assert!(resolved.is_some(), "recovery must resolve the alert");
        assert!(mon.firing().is_empty());
    }

    #[test]
    fn short_blip_does_not_page() {
        // One bad tick inside an hour of clean traffic: the fast window
        // spikes but the slow window keeps the alert quiet.
        let mut mon = SloMonitor::new();
        mon.add(
            SloSpec::availability("produce", "good", "total", 0.9)
                .windows(5 * MS, 60 * MS)
                .burn_thresholds(2.0, 5.0),
        );
        let (mut good, mut total, mut t) = (0u64, 0u64, 0u64);
        for i in 0..60 {
            t += MS;
            total += 10;
            if i != 30 {
                good += 10; // tick 30 is a full outage tick
            }
            assert!(
                mon.observe(t, &snap(good, total)).is_empty(),
                "a single bad tick must not page (tick {i})"
            );
        }
    }

    #[test]
    fn latency_objective_uses_histogram_threshold() {
        let reg = MetricsRegistry::new();
        let mut mon = SloMonitor::new();
        mon.add(
            SloSpec::latency("deliver-p99", "lat_ns", 1_000, 0.5)
                .windows(5 * MS, 20 * MS)
                .burn_thresholds(1.5, 1.0),
        );
        // fast traffic: all under threshold
        let mut t = 0;
        for _ in 0..5 {
            t += MS;
            reg.histogram("lat_ns").record(100);
            assert!(mon.observe(t, &reg.snapshot()).is_empty());
        }
        // slow traffic: everything lands over the threshold
        let mut fired = false;
        for _ in 0..20 {
            t += MS;
            for _ in 0..10 {
                reg.histogram("lat_ns").record(50_000);
            }
            fired |= mon
                .observe(t, &reg.snapshot())
                .iter()
                .any(|a| a.state == AlertState::Firing);
        }
        assert!(fired, "sustained slow traffic must fire the latency SLO");
    }

    #[test]
    fn no_traffic_is_not_an_outage() {
        let mut mon = SloMonitor::new();
        mon.add(spec());
        for i in 1..=50 {
            assert!(mon.observe(i * MS, &snap(0, 0)).is_empty());
        }
    }

    #[test]
    fn alert_serde_round_trip() {
        let a = Alert {
            slo: "produce".into(),
            state: AlertState::Firing,
            at_ns: 42,
            fast_burn: 3.5,
            slow_burn: 1.25,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Alert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
