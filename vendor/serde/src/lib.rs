//! Hermetic stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy architecture, this
//! stand-in uses a simple value-tree model: [`Serialize`] renders a
//! type into a JSON-like [`Value`], [`Deserialize`] rebuilds it from
//! one. `serde_json` (also vendored) prints/parses that [`Value`]
//! as JSON text. The derive macros are re-exported from the vendored
//! `serde_derive` when the `derive` feature is on, so the workspace's
//! `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Serialize, Deserialize}` lines compile unchanged.

mod impls;
pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Deserialization error: a human-readable message, matching how the
/// workspace consumes serde errors (via `Display`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value-tree representation.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value-tree representation.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Marker mirroring serde's `DeserializeOwned`; with a value-tree
/// model every [`Deserialize`] is already owned.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}
