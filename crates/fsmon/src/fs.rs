//! A synthetic parallel filesystem event source.
//!
//! Substitutes for a production parallel-FS changelog (Lustre/GPFS):
//! compute jobs arrive, each creating a burst of output files in its own
//! run directory, rewriting some of them (checkpoint overwrites), and
//! deleting scratch files. The generator is seed-deterministic so
//! experiments replay exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use octopus_types::Timestamp;

/// A filesystem operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FsOp {
    /// File created (what the data-automation trigger acts on).
    Created,
    /// File contents modified.
    Modified,
    /// File removed.
    Deleted,
}

impl FsOp {
    /// Lowercase name used in event payloads (matches Listing 1's
    /// `"event_type": "created"`).
    pub fn as_str(self) -> &'static str {
        match self {
            FsOp::Created => "created",
            FsOp::Modified => "modified",
            FsOp::Deleted => "deleted",
        }
    }
}

/// One filesystem event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsEvent {
    /// Operation.
    pub op: FsOp,
    /// Absolute path.
    pub path: String,
    /// File size in bytes after the operation (0 for deletes).
    pub size: u64,
    /// Event time.
    pub timestamp: Timestamp,
    /// Name of the filesystem that produced the event.
    pub fs_name: String,
}

impl FsEvent {
    /// The JSON payload shape consumed by triggers (Listing 1 fields).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "event_type": self.op.as_str(),
            "path": self.path,
            "size": self.size,
            "fs": self.fs_name,
            "timestamp_ms": self.timestamp.as_millis(),
        })
    }
}

/// Workload shape knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Mean files created per job burst.
    pub files_per_job: usize,
    /// Probability a created file is later modified (checkpoint
    /// rewrites produce duplicate-ish events the aggregator collapses).
    pub modify_fraction: f64,
    /// Mean number of modifications for modified files.
    pub modifies_per_file: usize,
    /// Probability a created file is scratch (deleted at job end, and
    /// unimportant to replicate).
    pub scratch_fraction: f64,
    /// Mean file size in bytes.
    pub mean_file_size: u64,
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile {
            files_per_job: 50,
            modify_fraction: 0.4,
            modifies_per_file: 5,
            scratch_fraction: 0.3,
            mean_file_size: 64 * 1024 * 1024,
        }
    }
}

/// The synthetic filesystem: a deterministic event generator.
pub struct SyntheticFs {
    name: String,
    profile: WorkloadProfile,
    rng: SmallRng,
    job_counter: u64,
}

impl SyntheticFs {
    /// A filesystem named `name` with the given workload, seeded for
    /// reproducibility.
    pub fn new(name: &str, profile: WorkloadProfile, seed: u64) -> Self {
        SyntheticFs {
            name: name.to_string(),
            profile,
            rng: SmallRng::seed_from_u64(seed),
            job_counter: 0,
        }
    }

    /// The filesystem's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Generate the event burst of one compute job completing at `now`.
    /// Events within a burst carry the same timestamp (parallel writers
    /// flush together), which is exactly what stresses dedup windows.
    pub fn job_burst(&mut self, now: Timestamp) -> Vec<FsEvent> {
        let job = self.job_counter;
        self.job_counter += 1;
        let dir = format!("/pfs/{}/jobs/run-{job:06}", self.name);
        let n = self.sample_count(self.profile.files_per_job);
        let mut events = Vec::new();
        for f in 0..n {
            let scratch = self.rng.gen::<f64>() < self.profile.scratch_fraction;
            let path = if scratch {
                format!("{dir}/tmp/scratch-{f:04}.tmp")
            } else {
                format!("{dir}/out-{f:04}.h5")
            };
            let size = self.sample_size();
            events.push(FsEvent {
                op: FsOp::Created,
                path: path.clone(),
                size,
                timestamp: now,
                fs_name: self.name.clone(),
            });
            if self.rng.gen::<f64>() < self.profile.modify_fraction {
                let m = self.sample_count(self.profile.modifies_per_file).max(1);
                for _ in 0..m {
                    events.push(FsEvent {
                        op: FsOp::Modified,
                        path: path.clone(),
                        size,
                        timestamp: now,
                        fs_name: self.name.clone(),
                    });
                }
            }
            if scratch {
                events.push(FsEvent {
                    op: FsOp::Deleted,
                    path,
                    size: 0,
                    timestamp: now,
                    fs_name: self.name.clone(),
                });
            }
        }
        events
    }

    fn sample_count(&mut self, mean: usize) -> usize {
        // geometric-ish spread around the mean, at least 1
        let lo = (mean / 2).max(1);
        let hi = mean * 3 / 2 + 1;
        self.rng.gen_range(lo..hi.max(lo + 1))
    }

    fn sample_size(&mut self) -> u64 {
        let mean = self.profile.mean_file_size as f64;
        (self.rng.gen::<f64>() * 2.0 * mean) as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SyntheticFs {
        SyntheticFs::new("pfs0", WorkloadProfile::default(), 42)
    }

    #[test]
    fn bursts_are_deterministic_per_seed() {
        let mut a = fs();
        let mut b = fs();
        let t = Timestamp::from_millis(1);
        assert_eq!(a.job_burst(t), b.job_burst(t));
        // and differ across seeds
        let mut c = SyntheticFs::new("pfs0", WorkloadProfile::default(), 43);
        assert_ne!(a.job_burst(t), c.job_burst(t));
    }

    #[test]
    fn scratch_files_are_created_then_deleted() {
        let mut f = fs();
        let events = f.job_burst(Timestamp::from_millis(0));
        let scratch_creates: Vec<&FsEvent> = events
            .iter()
            .filter(|e| e.op == FsOp::Created && e.path.contains("/tmp/"))
            .collect();
        assert!(!scratch_creates.is_empty(), "some scratch files expected at this seed");
        for c in scratch_creates {
            assert!(
                events.iter().any(|e| e.op == FsOp::Deleted && e.path == c.path),
                "scratch {} never deleted",
                c.path
            );
        }
    }

    #[test]
    fn output_files_end_in_h5_and_survive() {
        let mut f = fs();
        let events = f.job_burst(Timestamp::from_millis(0));
        let outputs: Vec<&FsEvent> = events
            .iter()
            .filter(|e| e.op == FsOp::Created && !e.path.contains("/tmp/"))
            .collect();
        assert!(!outputs.is_empty());
        for o in &outputs {
            assert!(o.path.ends_with(".h5"));
            assert!(o.size > 0);
            assert!(!events.iter().any(|e| e.op == FsOp::Deleted && e.path == o.path));
        }
    }

    #[test]
    fn job_directories_are_distinct() {
        let mut f = fs();
        let b1 = f.job_burst(Timestamp::from_millis(0));
        let b2 = f.job_burst(Timestamp::from_millis(1));
        assert!(b1[0].path.contains("run-000000"));
        assert!(b2[0].path.contains("run-000001"));
    }

    #[test]
    fn json_payload_matches_listing1_shape() {
        let mut f = fs();
        let e = &f.job_burst(Timestamp::from_millis(7))[0];
        let j = e.to_json();
        assert!(j["event_type"].is_string());
        assert!(j["path"].is_string());
        assert_eq!(j["fs"], "pfs0");
        assert_eq!(j["timestamp_ms"], 7);
        // Listing 1 pattern matches creation events
        let pat = octopus_pattern_test_helper();
        assert!(pat.matches(&j) == (e.op == FsOp::Created));
    }

    fn octopus_pattern_test_helper() -> octopus_pattern::Pattern {
        octopus_pattern::Pattern::parse(&serde_json::json!({"event_type": ["created"]})).unwrap()
    }

    #[test]
    fn modified_events_reference_created_paths() {
        let mut f = fs();
        let events = f.job_burst(Timestamp::from_millis(0));
        let created: std::collections::HashSet<&str> = events
            .iter()
            .filter(|e| e.op == FsOp::Created)
            .map(|e| e.path.as_str())
            .collect();
        for e in events.iter().filter(|e| e.op == FsOp::Modified) {
            assert!(created.contains(e.path.as_str()));
        }
    }
}
