//! Unified retry, backoff, and circuit-breaking for every Octopus
//! client path.
//!
//! Before this module each crate hand-rolled its own loop: the SDK
//! producer slept a fixed `retry_backoff`, the trigger runtime retried
//! immediately with no pause, and the mirror gave up on the first
//! error. All of them now share one [`RetryPolicy`] (exponential
//! backoff with *decorrelated jitter*, bounded attempts) and one
//! [`CircuitBreaker`] (failure counting, open/half-open/closed with
//! probe-on-cooldown), so resilience behavior is uniform and testable
//! in one place.
//!
//! Retriability is decided by [`OctoError::is_retriable`]; permanent
//! errors (authorization, validation, routing) surface immediately.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::{OctoError, OctoResult};
use crate::obs::{Counter, MetricsRegistry};

/// Retry schedule: bounded attempts with decorrelated-jitter backoff.
///
/// The delay sequence follows the "decorrelated jitter" rule: each
/// delay is drawn uniformly from `[base_delay, prev_delay * 3]`,
/// clamped to `max_delay`. The draw uses a deterministic splitmix64
/// stream seeded from `seed`, so a given policy produces a reproducible
/// schedule — chaos runs replay identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means no retries.
    pub max_attempts: u32,
    /// Minimum (and first) backoff delay.
    pub base_delay: Duration,
    /// Upper clamp on any single delay.
    pub max_delay: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x0c70_9b1f_a5e3_d247,
        }
    }
}

impl RetryPolicy {
    /// A policy with `retries` retries (so `retries + 1` attempts) and
    /// `base_delay` as both the first delay and the growth floor.
    pub fn new(retries: u32, base_delay: Duration) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            base_delay,
            max_delay: base_delay.saturating_mul(32).max(base_delay),
            ..Default::default()
        }
    }

    /// Same policy with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same policy with a different delay clamp.
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// The deterministic delay sequence (one entry per *retry*, so
    /// `max_attempts - 1` entries).
    pub fn delays(&self) -> Vec<Duration> {
        let mut rng = self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut prev = self.base_delay;
        let mut out = Vec::new();
        for _ in 1..self.max_attempts {
            let lo = self.base_delay.as_nanos() as u64;
            let hi = (prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
            let span = hi - lo;
            let d = Duration::from_nanos(lo + splitmix64(&mut rng) % span)
                .min(self.max_delay)
                .max(self.base_delay);
            out.push(d);
            prev = d;
        }
        out
    }

    /// Run `op` until it succeeds, fails permanently, or attempts run
    /// out. Sleeps between attempts.
    pub fn run<T>(&self, op: impl FnMut(u32) -> OctoResult<T>) -> OctoResult<T> {
        self.run_with_sleep(std::thread::sleep, op)
    }

    /// [`RetryPolicy::run`] with an injected sleep (tests pass a
    /// recorder; simulations pass virtual time).
    pub fn run_with_sleep<T>(
        &self,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> OctoResult<T>,
    ) -> OctoResult<T> {
        let delays = self.delays();
        let mut result = Err(OctoError::Internal("retry policy allowed no attempts".into()));
        for attempt in 0..self.max_attempts.max(1) {
            result = op(attempt);
            match &result {
                Ok(_) => return result,
                Err(e) if e.is_retriable() => {
                    if let Some(d) = delays.get(attempt as usize) {
                        sleep(*d);
                    }
                }
                Err(_) => return result,
            }
        }
        result
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Circuit-breaker state, readable for metrics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are rejected fast until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides the state.
    HalfOpen,
}

/// Configuration for [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        CircuitBreakerConfig { failure_threshold: 8, cooldown: Duration::from_millis(250) }
    }
}

#[derive(Debug)]
enum BreakerInner {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// A circuit breaker: after `failure_threshold` consecutive failures,
/// calls are rejected with [`OctoError::Unavailable`] until `cooldown`
/// elapses, then exactly one probe is admitted (half-open). A probe
/// success closes the breaker; a probe failure reopens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: CircuitBreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(CircuitBreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: CircuitBreakerConfig) -> Self {
        CircuitBreaker { config, inner: Mutex::new(BreakerInner::Closed { consecutive_failures: 0 }) }
    }

    /// Current state (`Open` reported even if the cooldown has elapsed
    /// but no probe has been admitted yet).
    pub fn state(&self) -> BreakerState {
        match *self.lock() {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Whether a call may proceed. Transitions open → half-open when
    /// the cooldown has elapsed (the caller becomes the probe).
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.lock();
        match &*inner {
            BreakerInner::Closed { .. } => true,
            BreakerInner::HalfOpen => false, // a probe is already in flight
            BreakerInner::Open { since } => {
                if since.elapsed() >= self.config.cooldown {
                    *inner = BreakerInner::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful call: closes the breaker and resets counts.
    pub fn on_success(&self) {
        *self.lock() = BreakerInner::Closed { consecutive_failures: 0 };
    }

    /// Record a failed call: trips the breaker at the threshold, and
    /// reopens immediately from half-open.
    pub fn on_failure(&self) {
        let mut inner = self.lock();
        match &mut *inner {
            BreakerInner::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    *inner = BreakerInner::Open { since: Instant::now() };
                }
            }
            BreakerInner::HalfOpen => *inner = BreakerInner::Open { since: Instant::now() },
            BreakerInner::Open { .. } => {}
        }
    }

    /// Run `op` through the breaker: fail fast when open, record the
    /// outcome otherwise. Only retriable errors count as breaker
    /// failures — a permanent error (bad input, missing topic) says
    /// nothing about the health of the downstream service.
    pub fn call<T>(&self, op: impl FnOnce() -> OctoResult<T>) -> OctoResult<T> {
        if !self.try_acquire() {
            return Err(OctoError::Unavailable("circuit breaker open".into()));
        }
        let result = op();
        match &result {
            Ok(_) => self.on_success(),
            Err(e) if e.is_retriable() => self.on_failure(),
            Err(_) => self.on_success(), // permanent: downstream answered
        }
        result
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Registry-backed retry instrumentation shared by all [`Retrier`]s
/// that register under the same prefix.
#[derive(Debug, Clone)]
pub struct RetryMetrics {
    /// Every operation attempt, first tries included.
    pub attempts: Arc<Counter>,
    /// Attempts beyond the first of a logical operation.
    pub retries: Arc<Counter>,
    /// Calls rejected fast by an open breaker (the op never ran).
    pub breaker_rejections: Arc<Counter>,
    /// Acks the broker answered with "already appended" — a retry of a
    /// batch whose first ack was lost in flight. Under idempotent
    /// production these are the duplicates that *would* have landed in
    /// the log; silently collapsing them hides real retry ambiguity, so
    /// they get their own counter.
    pub duplicate_acks: Arc<Counter>,
}

impl RetryMetrics {
    /// Resolve the counters under `prefix` in `registry`
    /// (`{prefix}_retry_attempts_total` etc.).
    pub fn from_registry(registry: &MetricsRegistry, prefix: &str) -> Self {
        RetryMetrics {
            attempts: registry.counter(&format!("{prefix}_retry_attempts_total")),
            retries: registry.counter(&format!("{prefix}_retry_retries_total")),
            breaker_rejections: registry.counter(&format!("{prefix}_retry_breaker_rejections_total")),
            duplicate_acks: registry.counter(&format!("{prefix}_duplicate_acks_total")),
        }
    }
}

/// A retry policy guarded by a circuit breaker — the composition every
/// Octopus client path uses. Retries happen *inside* the breaker call
/// so one logical operation counts once toward the failure threshold.
#[derive(Debug, Default)]
pub struct Retrier {
    /// The backoff schedule.
    pub policy: RetryPolicy,
    /// The breaker guarding the downstream service.
    pub breaker: CircuitBreaker,
    /// Optional attempt/rejection counters (see [`RetryMetrics`]).
    pub metrics: Option<RetryMetrics>,
}

impl Retrier {
    /// A retrier from a policy with a default breaker.
    pub fn new(policy: RetryPolicy) -> Self {
        Retrier { policy, breaker: CircuitBreaker::default(), metrics: None }
    }

    /// Attach registry counters; every attempt through [`Retrier::call`]
    /// is counted from then on.
    pub fn with_metrics(mut self, metrics: RetryMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Run `op` with retries, fail-fast when the breaker is open.
    pub fn call<T>(&self, mut op: impl FnMut(u32) -> OctoResult<T>) -> OctoResult<T> {
        let mut ran = false;
        let result = self.breaker.call(|| {
            self.policy.run(|attempt| {
                ran = true;
                if let Some(m) = &self.metrics {
                    m.attempts.inc();
                    if attempt > 0 {
                        m.retries.inc();
                    }
                }
                op(attempt)
            })
        });
        if !ran {
            if let Some(m) = &self.metrics {
                m.breaker_rejections.inc();
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn delay_sequence_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            seed: 42,
        };
        let a = p.delays();
        let b = p.delays();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 7);
        for d in &a {
            assert!(*d >= p.base_delay && *d <= p.max_delay, "delay {d:?} out of bounds");
        }
        let c = p.clone().with_seed(43).delays();
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn run_retries_transient_then_succeeds() {
        let p = RetryPolicy::new(5, Duration::from_millis(1));
        let tries = AtomicU32::new(0);
        let mut slept = Vec::new();
        let r = p.run_with_sleep(
            |d| slept.push(d),
            |_| {
                if tries.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(OctoError::Unavailable("down".into()))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(r.unwrap(), 7);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        assert_eq!(slept.len(), 2);
    }

    #[test]
    fn run_stops_on_permanent_error() {
        let p = RetryPolicy::new(5, Duration::from_millis(1));
        let tries = AtomicU32::new(0);
        let r: OctoResult<()> = p.run_with_sleep(
            |_| {},
            |_| {
                tries.fetch_add(1, Ordering::SeqCst);
                Err(OctoError::Unauthorized("no".into()))
            },
        );
        assert!(matches!(r, Err(OctoError::Unauthorized(_))));
        assert_eq!(tries.load(Ordering::SeqCst), 1, "permanent errors do not retry");
    }

    #[test]
    fn run_exhausts_attempts() {
        let p = RetryPolicy::new(3, Duration::from_micros(10));
        let tries = AtomicU32::new(0);
        let r: OctoResult<()> = p.run_with_sleep(
            |_| {},
            |_| {
                tries.fetch_add(1, Ordering::SeqCst);
                Err(OctoError::Timeout("slow".into()))
            },
        );
        assert!(matches!(r, Err(OctoError::Timeout(_))));
        assert_eq!(tries.load(Ordering::SeqCst), 4, "1 try + 3 retries");
    }

    #[test]
    fn breaker_trips_cools_down_and_probes() {
        let b = CircuitBreaker::new(CircuitBreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
        });
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            let _ = b.call(|| -> OctoResult<()> { Err(OctoError::Unavailable("x".into())) });
        }
        assert_eq!(b.state(), BreakerState::Open);
        // open: fail fast without running the op
        let ran = AtomicU32::new(0);
        let r = b.call(|| -> OctoResult<()> {
            ran.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(matches!(r, Err(OctoError::Unavailable(_))));
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        // after cooldown: one probe admitted; success closes
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.call(|| Ok(1)).is_ok());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_reopens_on_failed_probe() {
        let b = CircuitBreaker::new(CircuitBreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        });
        let _ = b.call(|| -> OctoResult<()> { Err(OctoError::Timeout("x".into())) });
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(12));
        let _ = b.call(|| -> OctoResult<()> { Err(OctoError::Timeout("still".into())) });
        assert_eq!(b.state(), BreakerState::Open, "failed probe reopens");
    }

    #[test]
    fn breaker_ignores_permanent_errors() {
        let b = CircuitBreaker::new(CircuitBreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(10),
        });
        let _ = b.call(|| -> OctoResult<()> { Err(OctoError::Invalid("bad input".into())) });
        assert_eq!(b.state(), BreakerState::Closed, "permanent errors are not breaker failures");
    }

    #[test]
    fn half_open_admits_single_probe() {
        let b = CircuitBreaker::new(CircuitBreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(1),
        });
        b.on_failure();
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.try_acquire(), "first caller becomes the probe");
        assert!(!b.try_acquire(), "second caller rejected while probing");
        b.on_success();
        assert!(b.try_acquire());
    }

    #[test]
    fn no_sleep_after_final_attempt() {
        // Exhausting every attempt must sleep exactly once per *retry*
        // (max_attempts - 1 times) — never after the last attempt, which
        // would add pure dead time to an already-failed operation.
        for retries in 0..5u32 {
            let p = RetryPolicy::new(retries, Duration::from_micros(10));
            let tries = AtomicU32::new(0);
            let mut sleeps = 0u32;
            let r: OctoResult<()> = p.run_with_sleep(
                |_| sleeps += 1,
                |_| {
                    tries.fetch_add(1, Ordering::SeqCst);
                    Err(OctoError::Timeout("slow".into()))
                },
            );
            assert!(r.is_err());
            let attempts = tries.load(Ordering::SeqCst);
            assert_eq!(attempts, retries + 1);
            assert_eq!(sleeps, attempts - 1, "one sleep per retry, none after the final attempt");
        }
    }

    #[test]
    fn registry_counters_match_attempt_counts() {
        let reg = MetricsRegistry::new();
        let r = Retrier::new(RetryPolicy::new(3, Duration::from_micros(10)))
            .with_metrics(RetryMetrics::from_registry(&reg, "test"));

        // 1 logical op exhausting all 4 attempts.
        let tries = AtomicU32::new(0);
        let _ = r.call(|_| -> OctoResult<()> {
            tries.fetch_add(1, Ordering::SeqCst);
            Err(OctoError::Timeout("slow".into()))
        });
        // 1 logical op succeeding on the second attempt.
        let _ = r.call(|attempt| if attempt == 0 { Err(OctoError::Unavailable("blip".into())) } else { Ok(()) });

        let snap = reg.snapshot();
        assert_eq!(tries.load(Ordering::SeqCst), 4);
        assert_eq!(snap.counters["test_retry_attempts_total"], 4 + 2);
        assert_eq!(snap.counters["test_retry_retries_total"], 3 + 1);
        assert_eq!(snap.counters["test_retry_breaker_rejections_total"], 0);
    }

    #[test]
    fn breaker_rejections_are_counted_not_attempts() {
        let reg = MetricsRegistry::new();
        let r = Retrier {
            policy: RetryPolicy::new(0, Duration::from_micros(10)),
            breaker: CircuitBreaker::new(CircuitBreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(60),
            }),
            metrics: Some(RetryMetrics::from_registry(&reg, "test")),
        };
        let _ = r.call(|_| -> OctoResult<()> { Err(OctoError::Unavailable("down".into())) });
        let _ = r.call(|_| -> OctoResult<()> { Ok(()) }); // rejected: breaker open
        let snap = reg.snapshot();
        assert_eq!(snap.counters["test_retry_attempts_total"], 1, "rejected call never ran");
        assert_eq!(snap.counters["test_retry_breaker_rejections_total"], 1);
    }

    #[test]
    fn retrier_composes_policy_and_breaker() {
        let r = Retrier::new(RetryPolicy::new(2, Duration::from_micros(50)));
        let tries = AtomicU32::new(0);
        let out = r.call(|_| {
            if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(OctoError::Unavailable("blip".into()))
            } else {
                Ok("done")
            }
        });
        assert_eq!(out.unwrap(), "done");
        assert_eq!(r.breaker.state(), BreakerState::Closed);
    }
}
