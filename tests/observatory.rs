//! The fleet observatory, end to end: one deployment runs live traffic
//! through a fault window while the observability surface added for
//! operations is checked at every step —
//!
//! 1. **Cluster health** rolls Green → Red (a single-replica partition
//!    loses its only broker) → Green (heal), with the transitions
//!    recorded in the timeline.
//! 2. **SLO burn-rate alerting** pages on the produce availability
//!    objective while the outage burns error budget, then resolves once
//!    the fast window is clean again.
//! 3. **Consumer lag** is zero after a drain, climbs while the group
//!    idles through the fault window, and converges back to exactly
//!    zero after recovery — and survives a rebalance without resetting.
//! 4. **Causal spans** sampled on the live path export a complete
//!    produce→append→replicate→fetch→deliver tree as a Chrome trace.
//! 5. **OWS** serves `GET /metrics` (spec-clean Prometheus text),
//!    `GET /health`, and `GET /lag/<group>` behind the normal auth.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus::broker::{AckLevel, BrokerId, Cluster, HealthStatus, TopicConfig};
use octopus::ows::{Method, Request};
use octopus::prelude::*;
use octopus::sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
use octopus::types::{parse_exposition, AlertState, SloMonitor, SloSpec, SpanSink};
use serde_json::json;

/// One synthetic SLO clock tick (sim-time; the monitor takes explicit
/// timestamps, so the windows can be nanosecond-scale).
const TICK_NS: u64 = 1_000;
const FAST_WINDOW_NS: u64 = 5 * TICK_NS;
const SLOW_WINDOW_NS: u64 = 20 * TICK_NS;

#[test]
fn fleet_observatory_end_to_end() {
    // Sample every trace so the span tree is deterministic.
    let sink = Arc::new(SpanSink::new(1));
    let octo = Octopus::builder().brokers(3).spans(Arc::clone(&sink)).build().unwrap();
    octo.register_provider("uchicago.edu", "University of Chicago");
    octo.register_user("ops@uchicago.edu", "pw").unwrap();
    let session = octo.login("ops@uchicago.edu", "pw").unwrap();
    let client = session.client();

    // A replicated work topic that survives the fault window, and a
    // deliberately frail rf=1 topic whose only replica is broker 0
    // (placement is (partition + r) % brokers), so killing broker 0
    // takes its partition fully offline.
    client
        .register_topic(
            "sdl.work",
            json!({"partitions": 1, "replication_factor": 3, "min_insync_replicas": 2}),
        )
        .unwrap();
    client.register_topic("sdl.frail", json!({"partitions": 1, "replication_factor": 1})).unwrap();

    let cluster = octo.cluster();
    assert_eq!(cluster.health_report().status, HealthStatus::Green);

    // Produce availability SLO over a counter pair this drill maintains.
    let good = cluster.metrics().counter("observatory_produce_good_total");
    let total = cluster.metrics().counter("observatory_produce_attempts_total");
    let mut slo = SloMonitor::new();
    slo.add(
        SloSpec::availability(
            "produce-availability",
            "observatory_produce_good_total",
            "observatory_produce_attempts_total",
            0.99,
        )
        .windows(FAST_WINDOW_NS, SLOW_WINDOW_NS),
    );
    let mut now = 0u64;
    let mut alerts = Vec::new();

    let producer = session.producer_with(ProducerConfig {
        acks: AckLevel::All,
        linger: Duration::ZERO,
        ..ProducerConfig::default()
    });
    // The frail topic gets a no-retry producer so outage sends fail fast.
    let frail_producer = session.producer_with(ProducerConfig {
        linger: Duration::ZERO,
        retries: 0,
        ..ProducerConfig::default()
    });

    // --- Phase A: healthy traffic, group drains to lag 0 -------------
    for i in 0..10u8 {
        producer.send_sync("sdl.work", Event::from_bytes(vec![i])).unwrap();
        frail_producer.send_sync("sdl.frail", Event::from_bytes(vec![i])).unwrap();
        good.add(2);
        total.add(2);
        now += TICK_NS;
        alerts.extend(slo.observe(now, &cluster.metrics().snapshot()));
    }
    assert!(alerts.is_empty(), "healthy traffic must not page: {alerts:?}");

    let mut consumer = session.consumer("observers");
    consumer.subscribe(&["sdl.work"]).unwrap();
    drain(&mut consumer, 10);
    consumer.commit_sync().unwrap();
    assert_eq!(cluster.lag_report("observers").unwrap().total, 0);

    // --- Phase B: kill broker 0 — the frail partition goes offline ---
    cluster.kill_broker(BrokerId(0)).unwrap();
    assert_eq!(
        cluster.health_status(),
        HealthStatus::Red,
        "an offline partition is a Red cluster"
    );

    // The group idles while traffic continues: lag climbs. Frail sends
    // fail and burn the error budget until the SLO pages.
    for i in 0..20u8 {
        producer.send_sync("sdl.work", Event::from_bytes(vec![i])).unwrap();
        good.inc();
        total.inc();
        assert!(
            frail_producer.send_sync("sdl.frail", Event::from_bytes(vec![i])).is_err(),
            "rf=1 topic must be unavailable with its only replica dead"
        );
        total.inc();
        now += TICK_NS;
        alerts.extend(slo.observe(now, &cluster.metrics().snapshot()));
    }
    let fired: Vec<_> = alerts.iter().filter(|a| a.state == AlertState::Firing).collect();
    assert_eq!(fired.len(), 1, "exactly one page for a single outage: {alerts:?}");
    assert_eq!(fired[0].slo, "produce-availability");
    assert_eq!(slo.firing(), vec!["produce-availability"]);

    let mid_fault = cluster.lag_report("observers").unwrap();
    assert_eq!(mid_fault.total, 20, "idle group accrues lag under the fault");
    assert_eq!(mid_fault.max, 20);

    // --- Phase C: heal — Red → Green, the page resolves, lag drains --
    cluster.restart_broker(BrokerId(0)).unwrap();
    cluster.resync_broker(BrokerId(0)).unwrap();
    assert_eq!(cluster.health_status(), HealthStatus::Green);
    let timeline = cluster.health_report().timeline;
    assert!(
        timeline.iter().any(|t| t.to == HealthStatus::Red),
        "timeline records the outage: {timeline:?}"
    );
    assert!(
        timeline.iter().any(|t| t.to == HealthStatus::Green),
        "timeline records the recovery: {timeline:?}"
    );

    // The outage tripped the frail producer's circuit breaker; recovery
    // traffic comes from a fresh client rather than waiting out cooldown.
    let frail_producer = session.producer_with(ProducerConfig {
        linger: Duration::ZERO,
        retries: 0,
        ..ProducerConfig::default()
    });
    let mut resolved = Vec::new();
    for i in 0..40u8 {
        frail_producer.send_sync("sdl.frail", Event::from_bytes(vec![i])).unwrap();
        good.inc();
        total.inc();
        now += TICK_NS;
        resolved.extend(slo.observe(now, &cluster.metrics().snapshot()));
    }
    assert!(
        resolved.iter().any(|a| a.state == AlertState::Resolved),
        "clean fast window resolves the page: {resolved:?}"
    );
    assert!(slo.firing().is_empty());

    drain(&mut consumer, 20);
    consumer.commit_sync().unwrap();
    assert_eq!(
        cluster.lag_report("observers").unwrap().total,
        0,
        "lag converges to exactly zero after the drain"
    );

    // --- OWS surface --------------------------------------------------
    let ows = octo.ows();
    let get = |path: &str| Request::new(Method::Get, path).bearer(session.token().clone());

    let r = ows.dispatch(&get("/metrics"));
    assert_eq!(r.status, 200);
    let samples = parse_exposition(r.text_body().expect("text exposition")).unwrap();
    let lag_sample = samples
        .iter()
        .find(|s| s.name == "octopus_consumer_lag" && s.label("group") == Some("observers"))
        .expect("lag gauge is scrapeable");
    assert_eq!(lag_sample.value, 0.0);
    assert!(samples.iter().any(|s| s.name == "octopus_cluster_health_status"));

    let r = ows.dispatch(&get("/health"));
    assert_eq!(r.status, 200);
    assert_eq!(r.body["status"], "Green");
    assert!(!r.body["timeline"].as_array().unwrap().is_empty());

    let r = ows.dispatch(&get("/lag/observers"));
    assert_eq!(r.status, 200);
    assert_eq!(r.body["total"], 0);

    // --- Causal span export ------------------------------------------
    let spans = sink.snapshot();
    let mut by_trace: HashMap<u64, Vec<&octopus::types::Span>> = HashMap::new();
    for s in &spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let full_path = ["produce→ack", "append", "replicate", "fetch", "deliver"];
    let complete = by_trace
        .values()
        .find(|tree| full_path.iter().all(|n| tree.iter().any(|s| s.name == *n)))
        .expect("at least one sampled event yields the complete span tree");
    // parent links form the causal chain
    for (child, parent) in [("append", "produce→ack"), ("replicate", "append"), ("fetch", "append"), ("deliver", "fetch")]
    {
        let c = complete.iter().find(|s| s.name == child).unwrap();
        let p = complete.iter().find(|s| s.name == parent).unwrap();
        assert_eq!(c.parent_id, Some(p.span_id), "{child} must be a child of {parent}");
    }
    assert!(
        complete.iter().find(|s| s.name == "produce→ack").unwrap().parent_id.is_none(),
        "the ack span is the root"
    );

    // The Chrome-trace export is valid JSON Perfetto can load.
    let out = std::env::temp_dir().join("octopus-observatory-trace.json");
    sink.write_chrome_trace(&out).unwrap();
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    let events = parsed["traceEvents"].as_array().unwrap();
    assert!(events.len() >= full_path.len());
    // one process_name metadata event, then only span events
    assert!(events.iter().any(|e| e["ph"] == "M" && e["name"] == "process_name"));
    assert!(events
        .iter()
        .filter(|e| e["ph"] != "M")
        .all(|e| e["ph"] == "X" && e["cat"] == "octopus"));
    let _ = std::fs::remove_file(&out);
}

/// Committed offsets — and therefore lag — survive a group rebalance:
/// a new member joining bumps the generation but must not reset the
/// group's progress, so lag stays 0 rather than jumping back to the
/// full log length (the regression this test pins).
#[test]
fn lag_survives_rebalance_and_converges_to_zero() {
    let cluster = Cluster::builder(1).build();
    cluster.create_topic("t", TopicConfig::default().with_partitions(2).with_replication(1)).unwrap();
    let producer = Producer::new(
        cluster.clone(),
        ProducerConfig { linger: Duration::ZERO, ..ProducerConfig::default() },
    );
    for i in 0..8u8 {
        producer.send_sync("t", Event::from_bytes(vec![i])).unwrap();
    }

    let config = || ConsumerConfig { group: "g".into(), ..ConsumerConfig::default() };
    let mut c1 = Consumer::new(cluster.clone(), config());
    c1.subscribe(&["t"]).unwrap();
    drain(&mut c1, 8);
    c1.commit_sync().unwrap();
    assert_eq!(cluster.lag_report("g").unwrap().total, 0);

    // A second member joins: the generation bumps, partitions move.
    let generation = cluster.coordinator().generation("g");
    let mut c2 = Consumer::new(cluster.clone(), config());
    c2.subscribe(&["t"]).unwrap();
    assert!(cluster.coordinator().generation("g") > generation);
    assert_eq!(
        cluster.lag_report("g").unwrap().total,
        0,
        "rebalance must not reset committed progress"
    );

    // New traffic counts from the committed offsets, not from zero.
    for i in 0..4u8 {
        producer.send_sync("t", Event::from_bytes(vec![i])).unwrap();
    }
    assert_eq!(cluster.lag_report("g").unwrap().total, 4);

    // Both members drain their halves (c1 rejoins transparently after
    // its fenced first commit); the group converges back to zero.
    let mut seen: HashSet<(u32, u64)> = HashSet::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen.len() < 4 && Instant::now() < deadline {
        for c in [&mut c1, &mut c2] {
            if let Ok(batch) = c.poll() {
                seen.extend(batch.iter().map(|d| (d.partition, d.offset)));
            }
            let _ = c.commit_sync();
        }
    }
    assert_eq!(seen.len(), 4, "both members drain the new records");
    let _ = c1.commit_sync();
    let _ = c2.commit_sync();
    assert_eq!(cluster.lag_report("g").unwrap().total, 0);
}

/// Poll until `n` events arrive (bounded, so a regression fails loudly
/// instead of hanging).
fn drain(consumer: &mut Consumer, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = 0;
    while got < n {
        assert!(Instant::now() < deadline, "drained only {got}/{n} before the deadline");
        got += consumer.poll().expect("poll").len();
    }
    assert_eq!(got, n);
}
