//! Quickstart: deploy Octopus locally, provision a topic through the
//! web service, publish events, consume them, and react with a trigger.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use octopus::prelude::*;

fn main() -> OctoResult<()> {
    // 1. Launch a full local deployment: coordination service, auth,
    //    brokers, web service, trigger runtime.
    let octo = Octopus::launch()?;
    octo.register_user("alice@uchicago.edu", "password")?;
    let session = octo.login("alice@uchicago.edu", "password")?;
    println!("logged in as identity {}", session.identity());

    // 2. Provision a topic via the OWS REST surface (PUT /topic/<t>).
    session
        .client()
        .register_topic("instrument.events", serde_json::json!({"partitions": 4}))?;
    println!("topics visible to alice: {:?}", session.client().list_topics()?);

    // 3. Mint fabric credentials (GET /create_key).
    let (key_id, _secret) = session.client().create_key()?;
    println!("issued IAM key {key_id}");

    // 4. Register a trigger that fires only on `created` events
    //    (Listing 1's EventBridge pattern).
    let fired = Arc::new(AtomicUsize::new(0));
    let fired2 = fired.clone();
    octo.registry().register("count-created", move |_ctx, batch| {
        fired2.fetch_add(batch.len(), Ordering::SeqCst);
        Ok(())
    });
    session.client().deploy_trigger(serde_json::json!({
        "name": "on-created",
        "topic": "instrument.events",
        "function": "count-created",
        "pattern": {"event_type": ["created"]},
    }))?;

    // 5. Publish a mix of events.
    let producer = session.producer();
    for i in 0..10 {
        let event_type = if i % 2 == 0 { "created" } else { "modified" };
        producer.send(
            "instrument.events",
            Event::from_json(&serde_json::json!({
                "event_type": event_type,
                "path": format!("/data/run-{i}.h5"),
            }))?,
        )?;
    }
    producer.flush();

    // 6. Consume everything back...
    let mut consumer = session.consumer("quickstart");
    consumer.subscribe(&["instrument.events"])?;
    let mut seen = 0;
    loop {
        let batch = consumer.poll()?;
        if batch.is_empty() {
            break;
        }
        seen += batch.len();
    }
    println!("consumed {seen} events");

    // 7. ...and let the trigger process its filtered view.
    octo.triggers().poll_once("on-created")?;
    println!("trigger saw {} created-events (5 expected)", fired.load(Ordering::SeqCst));
    assert_eq!(fired.load(Ordering::SeqCst), 5);
    assert_eq!(seen, 10);
    println!("quickstart OK");
    Ok(())
}
