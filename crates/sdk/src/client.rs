//! A typed client over the OWS REST surface — or, for the data-plane
//! subset (topic admin), over any wire [`Transport`].

use std::sync::Arc;
use std::time::Duration;

use serde_json::{json, Value};

use octopus_auth::AccessToken;
use octopus_ows::{Method, OwsService, Request};
use octopus_types::{OctoError, OctoResult, Retrier, RetryPolicy, Uid};
use octopus_wire::Transport;

/// Where admin calls go.
enum Backend {
    /// The full OWS control plane (in-process REST router).
    Ows { ows: OwsService, token: AccessToken },
    /// A wire transport: topic create/list/config/delete travel over
    /// the binary protocol; control-plane-only operations (grants,
    /// keys, triggers) are rejected with a typed error.
    Wire(Arc<dyn Transport>),
}

/// Typed access to the Octopus Web Service. The default transport is
/// the in-process router, so every call exercises the same dispatch,
/// auth, and error-mapping path a remote HTTP client would; a client
/// built with [`OctopusClient::over_wire`] instead sends the topic
/// admin subset through the binary wire protocol.
///
/// Calls that fail with a retriable status (429 rate-limited, 503
/// unavailable) are retried through the shared [`Retrier`]; permanent
/// statuses (4xx auth/validation) surface immediately.
pub struct OctopusClient {
    backend: Backend,
    retrier: Retrier,
}

impl OctopusClient {
    /// A client speaking for the holder of `token`.
    pub fn new(ows: OwsService, token: AccessToken) -> Self {
        OctopusClient {
            backend: Backend::Ows { ows, token },
            retrier: Retrier::new(
                RetryPolicy::new(3, Duration::from_millis(5))
                    .with_max_delay(Duration::from_millis(50)),
            ),
        }
    }

    /// An admin client over a wire transport. Authentication happened
    /// in the transport's connection handshake, so no bearer token is
    /// carried per call.
    pub fn over_wire(transport: Arc<dyn Transport>) -> Self {
        OctopusClient {
            backend: Backend::Wire(transport),
            retrier: Retrier::new(
                RetryPolicy::new(3, Duration::from_millis(5))
                    .with_max_delay(Duration::from_millis(50)),
            ),
        }
    }

    /// Replace the retry/backoff/breaker stack guarding OWS calls.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retrier = Retrier::new(policy);
        self
    }

    /// Replace the bearer token (after a refresh). No-op on a wire
    /// backend, whose identity was fixed at connection time.
    pub fn set_token(&mut self, token: AccessToken) {
        if let Backend::Ows { token: t, .. } = &mut self.backend {
            *t = token;
        }
    }

    fn call(&self, method: Method, path: &str, body: Value) -> OctoResult<Value> {
        self.retrier.call(|_attempt| self.call_once(method, path, body.clone()))
    }

    fn call_once(&self, method: Method, path: &str, body: Value) -> OctoResult<Value> {
        let Backend::Ows { ows, token } = &self.backend else {
            return Err(OctoError::Invalid(format!(
                "{method:?} {path} is a control-plane operation not served by the wire \
                 protocol; connect an OWS client for it"
            )));
        };
        let resp = ows.dispatch(&Request::new(method, path).bearer(token.clone()).body(body));
        if resp.is_success() {
            Ok(resp.body)
        } else {
            let msg = resp.body["error"].as_str().unwrap_or("unknown").to_string();
            Err(match resp.status {
                401 => OctoError::Unauthenticated(msg),
                403 => OctoError::Unauthorized(msg),
                404 => OctoError::NotFound(msg),
                409 => OctoError::Conflict(msg),
                400 => OctoError::Invalid(msg),
                429 => OctoError::RateLimited(msg),
                503 => OctoError::Unavailable(msg),
                _ => OctoError::Internal(msg),
            })
        }
    }

    /// `PUT /topic/<topic>` with an optional config body.
    pub fn register_topic(&self, topic: &str, config: Value) -> OctoResult<Value> {
        if let Backend::Wire(t) = &self.backend {
            let parsed = octopus_ows::parse_topic_config(
                &config,
                octopus_broker::TopicConfig::default(),
            )?;
            self.retrier.call(|_| t.create_topic(topic, parsed.clone()))?;
            return Ok(json!({ "topic": topic, "status": "created" }));
        }
        self.call(Method::Put, &format!("/topic/{topic}"), config)
    }

    /// `GET /topics`.
    pub fn list_topics(&self) -> OctoResult<Vec<String>> {
        if let Backend::Wire(t) = &self.backend {
            return self.retrier.call(|_| t.topics());
        }
        let v = self.call(Method::Get, "/topics", Value::Null)?;
        Ok(v["topics"]
            .as_array()
            .map(|a| a.iter().filter_map(|t| t.as_str().map(String::from)).collect())
            .unwrap_or_default())
    }

    /// `GET /topic/<topic>`.
    pub fn topic_config(&self, topic: &str) -> OctoResult<Value> {
        if let Backend::Wire(t) = &self.backend {
            let config = self.retrier.call(|_| t.topic_config(topic))?;
            return serde_json::to_value(config).map_err(|e| OctoError::Serde(e.to_string()));
        }
        self.call(Method::Get, &format!("/topic/{topic}"), Value::Null)
    }

    /// `POST /topic/<topic>`.
    pub fn set_topic_config(&self, topic: &str, config: Value) -> OctoResult<Value> {
        self.call(Method::Post, &format!("/topic/{topic}"), config)
    }

    /// `POST /topic/<topic>/partitions`.
    pub fn set_partitions(&self, topic: &str, partitions: u32) -> OctoResult<()> {
        self.call(
            Method::Post,
            &format!("/topic/{topic}/partitions"),
            json!({"partitions": partitions}),
        )?;
        Ok(())
    }

    /// `POST /topic/<topic>/user` (grant).
    pub fn grant(&self, topic: &str, identity: Uid, permissions: &[&str]) -> OctoResult<()> {
        self.call(
            Method::Post,
            &format!("/topic/{topic}/user"),
            json!({"identity": identity.to_string(), "permissions": permissions, "action": "grant"}),
        )?;
        Ok(())
    }

    /// `POST /topic/<topic>/user` (revoke).
    pub fn revoke(&self, topic: &str, identity: Uid, permissions: &[&str]) -> OctoResult<()> {
        self.call(
            Method::Post,
            &format!("/topic/{topic}/user"),
            json!({"identity": identity.to_string(), "permissions": permissions, "action": "revoke"}),
        )?;
        Ok(())
    }

    /// `DELETE /topic/<topic>`.
    pub fn release_topic(&self, topic: &str) -> OctoResult<()> {
        if let Backend::Wire(t) = &self.backend {
            return self.retrier.call(|_| t.delete_topic(topic));
        }
        self.call(Method::Delete, &format!("/topic/{topic}"), Value::Null)?;
        Ok(())
    }

    /// `GET /create_key`: returns (access key id, secret).
    pub fn create_key(&self) -> OctoResult<(String, String)> {
        let v = self.call(Method::Get, "/create_key", Value::Null)?;
        Ok((
            v["access_key_id"].as_str().unwrap_or_default().to_string(),
            v["secret_access_key"].as_str().unwrap_or_default().to_string(),
        ))
    }

    /// `PUT /trigger/`.
    pub fn deploy_trigger(&self, spec: Value) -> OctoResult<Value> {
        self.call(Method::Put, "/trigger", spec)
    }

    /// `GET /triggers/`.
    pub fn list_triggers(&self) -> OctoResult<Value> {
        self.call(Method::Get, "/triggers", Value::Null)
    }
}
