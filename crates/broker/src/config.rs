//! Topic and broker configuration.

use serde::{Deserialize, Serialize};

use octopus_types::{OctoError, OctoResult};

/// Retention limits for the `Delete` cleanup policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionConfig {
    /// Drop closed segments older than this many milliseconds.
    /// The paper's default: "all messages in a topic are stored for
    /// seven days" (§IV-F).
    pub retention_ms: Option<u64>,
    /// Drop oldest closed segments while the partition exceeds this
    /// many bytes.
    pub retention_bytes: Option<u64>,
}

impl Default for RetentionConfig {
    fn default() -> Self {
        RetentionConfig {
            retention_ms: Some(7 * 24 * 3600 * 1000), // 7 days
            retention_bytes: None,
        }
    }
}

/// What the log cleaner does to closed segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CleanupPolicy {
    /// Drop expired/oversized segments.
    #[default]
    Delete,
    /// Keep only the latest record per key.
    Compact,
    /// Compact, then delete.
    CompactAndDelete,
}

/// Per-topic configuration (the knobs `POST /topic/<topic>` exposes,
/// §IV-B: "e.g., replication factor and data retention policy").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicConfig {
    /// Number of partitions.
    pub partitions: u32,
    /// Replication factor (copies of each partition).
    pub replication_factor: u32,
    /// Minimum in-sync replicas for `acks=all` produces to succeed.
    pub min_insync_replicas: u32,
    /// Retention limits.
    pub retention: RetentionConfig,
    /// Cleanup policy.
    pub cleanup: CleanupPolicy,
    /// Segment roll size in bytes.
    pub segment_bytes: usize,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            partitions: 2,
            replication_factor: 2,
            min_insync_replicas: 1,
            retention: RetentionConfig::default(),
            cleanup: CleanupPolicy::Delete,
            segment_bytes: crate::log::DEFAULT_SEGMENT_BYTES,
        }
    }
}

impl TopicConfig {
    /// Validate against a cluster of `broker_count` brokers.
    pub fn validate(&self, broker_count: usize) -> OctoResult<()> {
        if self.partitions == 0 {
            return Err(OctoError::Invalid("partitions must be >= 1".into()));
        }
        if self.replication_factor == 0 {
            return Err(OctoError::Invalid("replication factor must be >= 1".into()));
        }
        if self.replication_factor as usize > broker_count {
            return Err(OctoError::Invalid(format!(
                "replication factor {} exceeds broker count {broker_count}",
                self.replication_factor
            )));
        }
        if self.min_insync_replicas == 0 || self.min_insync_replicas > self.replication_factor {
            return Err(OctoError::Invalid(format!(
                "min.insync.replicas {} must be in [1, {}]",
                self.min_insync_replicas, self.replication_factor
            )));
        }
        if self.segment_bytes == 0 {
            return Err(OctoError::Invalid("segment_bytes must be positive".into()));
        }
        Ok(())
    }

    /// Builder-style partition count.
    pub fn with_partitions(mut self, n: u32) -> Self {
        self.partitions = n;
        self
    }

    /// Builder-style replication factor.
    pub fn with_replication(mut self, n: u32) -> Self {
        self.replication_factor = n;
        self
    }

    /// Builder-style min ISR.
    pub fn with_min_insync(mut self, n: u32) -> Self {
        self.min_insync_replicas = n;
        self
    }

    /// Builder-style cleanup policy.
    pub fn with_cleanup(mut self, c: CleanupPolicy) -> Self {
        self.cleanup = c;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TopicConfig::default();
        assert_eq!(c.partitions, 2);
        assert_eq!(c.replication_factor, 2);
        assert_eq!(c.retention.retention_ms, Some(604_800_000)); // 7 days
        assert!(c.validate(2).is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(TopicConfig::default().with_partitions(0).validate(2).is_err());
        assert!(TopicConfig::default().with_replication(0).validate(2).is_err());
        assert!(TopicConfig::default().with_replication(3).validate(2).is_err());
        assert!(TopicConfig::default().with_min_insync(0).validate(2).is_err());
        assert!(TopicConfig::default().with_min_insync(3).validate(4).is_err()); // > RF
        let c = TopicConfig { segment_bytes: 0, ..TopicConfig::default() };
        assert!(c.validate(2).is_err());
    }

    #[test]
    fn builder_chain() {
        let c = TopicConfig::default()
            .with_partitions(4)
            .with_replication(4)
            .with_min_insync(2)
            .with_cleanup(CleanupPolicy::Compact);
        assert_eq!(c.partitions, 4);
        assert_eq!(c.replication_factor, 4);
        assert_eq!(c.min_insync_replicas, 2);
        assert_eq!(c.cleanup, CleanupPolicy::Compact);
        assert!(c.validate(4).is_ok());
    }
}
