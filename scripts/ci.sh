#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint.
#
# Usage: scripts/ci.sh
# Runs from the repo root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --release -q"
cargo test --release -q

echo "==> cargo clippy (workspace, vendored shims exempt)"
# The vendor/ shims are workspace members (so the build needs no
# network), but the lint gate covers only our own crates.
cargo clippy --release --no-deps --workspace \
    --exclude bytes --exclude criterion --exclude crossbeam \
    --exclude parking_lot --exclude proptest --exclude rand \
    --exclude rayon --exclude serde --exclude serde_derive \
    --exclude serde_json -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> observatory smoke (health/lag/SLO/trace export)"
cargo run --release -q --example observatory
test -s results/trace.json

echo "==> crash-recovery smoke (produce -> power loss -> cold reopen -> verify)"
cargo run --release -q --example durability_smoke

echo "==> exactly-once chaos smoke (ambiguous acks + power loss, strict invariant)"
# Idempotent producer + read-committed consumer under a plan that
# drops acks after durable appends and tears a broker mid-stream; the
# example exits nonzero unless duplicates == 0 and no acked loss.
cargo run --release -q --example eos_smoke

echo "==> elastic scale-out smoke (3 -> 6 brokers mid-traffic, strict invariant)"
# Grows the fleet under chaos while the auto-balancer relocates
# partitions; jq gates the strict exactly-once invariant and that at
# least one partition actually moved onto the new brokers.
elastic_report=$(cargo run --release -q --example elastic_smoke)
if ! jq -e '.ok == true
            and (.moved_partitions >= 1)
            and (.acked_loss == 0)
            and (.duplicates == 0)' <<<"$elastic_report" >/dev/null; then
    echo "elastic_smoke report malformed or failed:" >&2
    echo "$elastic_report" >&2
    exit 1
fi

echo "==> hot-path bench smoke (invariants checked in-process)"
# --smoke shrinks the workload; the bench exits nonzero if any probe
# violates a correctness invariant (dense offsets, acked-record
# survival across power loss, crc equivalence).
cargo run --release -q -p octopus-bench --bin hotpath -- --smoke
if [ ! -s BENCH_hotpath.json ]; then
    echo "BENCH_hotpath.json missing or empty" >&2
    exit 1
fi
if ! jq -e '.schema == "octopus-hotpath-v1"
            and (.produce | length == 4)
            and (.fetch.records_per_sec > 0)
            and (.group_commit.flushes > 0)
            and (.eos.idempotent_on.events_per_sec > 0)
            and (.eos.idempotent_off.events_per_sec > 0)
            and (.net.tcp.produce_events_per_sec > 0)
            and (.net.tcp.fetch_records_per_sec > 0)
            and (.net.in_process.produce_events_per_sec > 0)
            and (.net.per_api_p99_us.produce > 0)
            and (.net.tracing.on.produce_events_per_sec > 0)
            and (.net.tracing.off.produce_events_per_sec > 0)
            and (.reassignment.within_3x == true)
            and (.reassignment.moved_records > 0)' BENCH_hotpath.json >/dev/null; then
    echo "BENCH_hotpath.json malformed (schema/sections)" >&2
    exit 1
fi
# Storage-at-scale gates: the sparse index must beat the linear-scan
# baseline >=10x on a deep fetch, lz4 must shrink telemetry >=2x at
# <=15% append overhead, a cold read must hydrate, and a reopen must
# adopt sealed segments from footers instead of rescanning them.
if ! jq -e '(.storage.deep_fetch.speedup >= 10)
            and (.storage.compression.ratio >= 2)
            and (.storage.compression.overhead_pct <= 15)
            and (.storage.cold.hydrations >= 1)
            and (.storage.reopen.sealed_skips >= 1)' BENCH_hotpath.json >/dev/null; then
    echo "BENCH_hotpath.json storage gates failed:" >&2
    jq '.storage' BENCH_hotpath.json >&2
    exit 1
fi

echo "==> networked smoke (two OS processes, SCRAM over loopback TCP)"
# The example spawns a broker process hosting a WireServer, dials it
# over a real socket with SCRAM credentials, and round-trips records
# through the SDK producer/consumer. jq gates the printed report.
net_report=$(cargo run --release -q --example net_quickstart)
if ! jq -e '.ok == true
            and (.processes == 2)
            and (.transport == "tcp")
            and (.consumed == .produced)
            and (.shared_traces >= 1)
            and (.broker_wire_requests_total > 0)' <<<"$net_report" >/dev/null; then
    echo "net_quickstart report malformed or failed:" >&2
    echo "$net_report" >&2
    exit 1
fi
test -s results/net_trace.json

echo "==> fleet scrape smoke (3 brokers, DescribeMetrics over TCP, chaos cut)"
# octopus-top spins up three wire-served brokers, drives socket
# traffic, severs one node mid-run, and scrapes the fleet through the
# poller; jq gates the merged view.
top_report=$(cargo run --release -q -p octopus-bench --bin octopus_top -- --json)
if ! jq -e '.ok == true
            and (.brokers == 3)
            and (.reassignments_completed >= 1)
            and (.octopus_wire_requests_total > 0)' <<<"$top_report" >/dev/null; then
    echo "octopus_top report malformed or failed:" >&2
    echo "$top_report" >&2
    exit 1
fi

echo "==> temp-dir leak gate"
# Every durable-store test and example works in a TempDir prefixed
# octopus-data-* (cold-tier stores use octopus-cold-*); anything
# still present here leaked.
leaked=$(find "${TMPDIR:-/tmp}" -maxdepth 1 \( -name 'octopus-data-*' -o -name 'octopus-cold-*' \) 2>/dev/null || true)
if [ -n "$leaked" ]; then
    echo "leaked data dirs:" >&2
    echo "$leaked" >&2
    exit 1
fi

echo "==> ci green"
