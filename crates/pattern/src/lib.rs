//! An implementation of the Amazon EventBridge *event pattern* language,
//! which Octopus triggers use to filter events (paper §IV-D, Listing 1).
//!
//! A pattern is a JSON object mirroring the structure of the events it
//! matches. Leaf values are **arrays**; an event field matches if it
//! equals (or satisfies a matcher object for) *any* array element.
//! Multiple fields are ANDed; nested objects recurse.
//!
//! Supported matcher forms:
//!
//! | Form | Example |
//! |---|---|
//! | exact | `{"event_type": ["created"]}` |
//! | prefix | `{"path": [{"prefix": "/data/"}]}` |
//! | suffix | `{"path": [{"suffix": ".h5"}]}` |
//! | equals-ignore-case | `{"lab": [{"equals-ignore-case": "ANL"}]}` |
//! | anything-but | `{"event_type": [{"anything-but": ["deleted"]}]}` |
//! | anything-but prefix | `{"path": [{"anything-but": {"prefix": "/tmp"}}]}` |
//! | numeric | `{"size": [{"numeric": [">", 0, "<=", 1048576]}]}` |
//! | exists | `{"error": [{"exists": false}]}` |
//! | wildcard | `{"file": [{"wildcard": "run-*.csv"}]}` |
//! | cidr | `{"source_ip": [{"cidr": "10.0.0.0/24"}]}` |
//! | $or | `{"$or": [{"a": [1]}, {"b": [2]}]}` |
//!
//! ```
//! use octopus_pattern::Pattern;
//! use serde_json::json;
//!
//! // Listing 1 from the paper: fire only on file-creation events.
//! let p = Pattern::parse(&json!({"event_type": ["created"]})).unwrap();
//! assert!(p.matches(&json!({"event_type": "created", "path": "/pfs/a"})));
//! assert!(!p.matches(&json!({"event_type": "deleted"})));
//! ```

mod ast;
mod cidr;
mod matching;
mod parse;
mod wildcard;

pub use ast::{CmpOp, Matcher, Node, Pattern};
pub use cidr::Cidr;
pub use parse::PatternError;
pub use wildcard::wildcard_match;

#[cfg(test)]
mod tests;
