//! Regenerates **Fig. 5**: producer and consumer throughput vs topic
//! count on the scale-out cluster (1 partition & replication 2 per
//! topic, 1 KB events, 32 clients on AWS instances).
//!
//! `cargo run --release -p octopus-bench --bin fig5 [-- seed]`

use octopus_bench::{bar, figure_header, human_rate};
use octopus_fabric::experiments::fig5;
use octopus_fabric::Calibration;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    figure_header(
        "FIG. 5 — Multi-tenancy: throughput vs number of topics (scale-out)",
        "paper: producer plateaus ~273K ev/s at 4 topics; consumer grows to ~846K at 16",
    );
    let pts = fig5(Calibration::default(), seed);
    let max = pts.iter().map(|p| p.consume_eps).fold(0.0f64, f64::max);
    println!("{:>7} {:>12} {:>12}", "topics", "produce", "consume");
    for p in &pts {
        println!(
            "{:>7} {:>12} {:>12}  P:{:<24} C:{}",
            p.topics,
            human_rate(p.produce_eps),
            human_rate(p.consume_eps),
            bar(p.produce_eps, max, 24),
            bar(p.consume_eps, max, 24)
        );
    }
    let p1 = pts[0].produce_eps;
    let p4 = pts[2].produce_eps;
    let p32 = pts[5].produce_eps;
    println!("\nshape checks:");
    println!("  producer grows 1→4 topics ({:.1}x) then stays flat ({:.2}x 4→32)", p4 / p1, p32 / p4);
    println!("  consumer tops out at {}", human_rate(max));
    println!("  consumers beat producers at every point: {}", pts.iter().all(|p| p.consume_eps > p.produce_eps));
}
