//! Hermetic stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored value-tree `serde`, parsing the input
//! `TokenStream` by hand (no `syn`/`quote` — the build is offline).
//!
//! Supported input shapes — exactly what this workspace uses:
//! named structs, tuple structs (newtype and wider), unit structs,
//! and enums with unit / tuple / struct variants. Field and variant
//! attributes (`#[default]`, doc comments) are skipped. Generic
//! types are rejected with a compile error.
//!
//! Representation matches serde's defaults: structs as objects,
//! newtypes as their inner value, enums externally tagged
//! (`"Variant"` for unit, `{"Variant": ...}` otherwise).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Input {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attribute groups starting at `i`; returns new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Advance past one field's type: consume until a `,` at angle-depth
/// zero (or end of stream).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if is_punct(&tokens[i], '<') {
            depth += 1;
        } else if is_punct(&tokens[i], '>') {
            depth -= 1;
        } else if is_punct(&tokens[i], ',') && depth == 0 {
            break;
        }
        i += 1;
    }
    i
}

/// Parse the field names of a brace-delimited struct body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        if i >= tokens.len() || !is_punct(&tokens[i], ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        i = skip_type(&tokens, i);
        fields.push(name);
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Count the fields of a paren-delimited tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        count += 1;
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
    }
    count
}

/// Parse the variants of a brace-delimited enum body.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`).
        if let Some(t) = tokens.get(i) {
            if is_punct(t, '=') {
                i += 1;
                while i < tokens.len() && !is_punct(&tokens[i], ',') {
                    i += 1;
                }
            }
        }
        variants.push(Variant { name, kind });
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(t) = tokens.get(i) {
        if is_punct(t, '<') {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            Some(t) if is_punct(t, ';') => Ok(Input::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::Enum { name, variants: parse_variants(g.stream())? })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        kw => Err(format!("cannot derive for `{kw}` items")),
    }
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "m.insert(::std::string::String::from({f:?}), \
                     ::serde::Serialize::serialize_value(&self.{f}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            impl_serialize(name, &body)
        }
        Input::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "::serde::Value::Null".to_string(),
                1 => "::serde::Serialize::serialize_value(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            impl_serialize(name, &body)
        }
        Input::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from({vn:?})),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from({vn:?}), {inner});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {fields} }} => {{\n{inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            fields = fields.join(", ")
                        ));
                    }
                }
            }
            let body = format!("match self {{\n{arms}\n}}");
            impl_serialize(name, &body)
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

/// Expression deserializing field `key` of `obj_expr` into type-inferred
/// position, with a path-qualified error message.
fn de_field(type_name: &str, key: &str) -> String {
    format!(
        "::serde::Deserialize::deserialize_value(\
         __obj.get({key:?}).unwrap_or(&::serde::Value::Null))\
         .map_err(|e| ::serde::DeError::new(\
         format!(\"{type_name}.{key}: {{e}}\")))?"
    )
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let mut body = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"{name}: expected object\"))?;\n"
            );
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!("{f}: {},\n", de_field(name, f)));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Input::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("::std::result::Result::Ok({name}())"),
                1 => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize_value(__v)?))"
                ),
                n => {
                    let mut b = format!(
                        "let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                         if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::new(\"{name}: wrong tuple length\")); }}\n"
                    );
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?")
                        })
                        .collect();
                    b.push_str(&format!(
                        "::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    ));
                    b
                }
            };
            impl_deserialize(name, &body)
        }
        Input::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the tagged-null spelling {"V": null}.
                        tagged_arms.push_str(&format!(
                            "if __m.contains_key({vn:?}) {{ \
                             return ::std::result::Result::Ok({name}::{vn}); }}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inner = if *n == 1 {
                            format!(
                                "return ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::deserialize_value(__inner)\
                                 .map_err(|e| ::serde::DeError::new(\
                                 format!(\"{name}::{vn}: {{e}}\")))?));"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize_value(&__arr[{i}])?"
                                    )
                                })
                                .collect();
                            format!(
                                "let __arr = __inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"{name}::{vn}: expected array\"))?;\n\
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::new(\"{name}::{vn}: wrong arity\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{vn}({}));",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!(
                            "if let ::std::option::Option::Some(__inner) = \
                             __m.get({vn:?}) {{ {inner} }}\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = format!(
                            "let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}::{vn}: expected object\"))?;\n"
                        );
                        inner.push_str(&format!(
                            "return ::std::result::Result::Ok({name}::{vn} {{\n"
                        ));
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: {},\n",
                                de_field(&format!("{name}::{vn}"), f)
                            ));
                        }
                        inner.push_str("});");
                        tagged_arms.push_str(&format!(
                            "if let ::std::option::Option::Some(__inner) = \
                             __m.get({vn:?}) {{ {inner} }}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(__m) = __v.as_object() {{\n\
                 {tagged_arms}\n}}\n\
                 ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"{name}: unrecognised enum value {{__v}}\")))"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(model) => gen_serialize(&model).parse().unwrap(),
        Err(msg) => compile_error(&format!("derive(Serialize): {msg}")),
    }
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(model) => gen_deserialize(&model).parse().unwrap(),
        Err(msg) => compile_error(&format!("derive(Deserialize): {msg}")),
    }
}
