//! Glob matching for `{"wildcard": "run-*.csv"}` patterns.
//!
//! `*` matches any run of characters (including empty); `?` matches
//! exactly one character. The matcher is the classic two-pointer
//! backtracking algorithm: linear in practice, O(n·m) worst case, no
//! recursion, no allocation.

/// Match `text` against `pattern` with `*`/`?` wildcards.
pub fn wildcard_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx of '*', text idx to retry)

    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // backtrack: let the last '*' consume one more character
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(wildcard_match("abc", "abc"));
        assert!(!wildcard_match("abc", "abd"));
        assert!(!wildcard_match("abc", "ab"));
        assert!(!wildcard_match("ab", "abc"));
        assert!(wildcard_match("", ""));
        assert!(!wildcard_match("", "a"));
    }

    #[test]
    fn star_semantics() {
        assert!(wildcard_match("*", ""));
        assert!(wildcard_match("*", "anything"));
        assert!(wildcard_match("run-*.csv", "run-17.csv"));
        assert!(wildcard_match("run-*.csv", "run-.csv")); // empty run
        assert!(!wildcard_match("run-*.csv", "run-17.txt"));
        assert!(wildcard_match("a*b*c", "aXXbYYc"));
        assert!(!wildcard_match("a*b*c", "aXXcYYb"));
    }

    #[test]
    fn question_mark_is_exactly_one() {
        assert!(wildcard_match("a?c", "abc"));
        assert!(!wildcard_match("a?c", "ac"));
        assert!(!wildcard_match("a?c", "abbc"));
    }

    #[test]
    fn backtracking_cases() {
        assert!(wildcard_match("*aab", "aaab"));
        assert!(wildcard_match("*a*a*a", "aaa"));
        assert!(!wildcard_match("*a*a*a*a", "aaa"));
        assert!(wildcard_match("x*yz", "xAAyAAyz"));
    }

    #[test]
    fn unicode_is_per_char_not_per_byte() {
        assert!(wildcard_match("?", "é"));
        assert!(wildcard_match("caf?", "café"));
        assert!(wildcard_match("*é", "café"));
    }

    #[test]
    fn pathological_pattern_terminates_quickly() {
        let text = "a".repeat(200);
        let pattern = format!("{}b", "*a".repeat(50));
        assert!(!wildcard_match(&pattern, &text));
    }
}
