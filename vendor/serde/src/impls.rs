//! Built-in `Serialize`/`Deserialize` implementations for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

use crate::value::{Map, Number, Value};
use crate::{DeError, Deserialize, Serialize};

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Arc::new)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn serialize_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_object().cloned().ok_or_else(|| DeError::new("expected object"))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected boolean"))
    }
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Number(Number::from(*self)) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::new(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::new(concat!(
                    "integer out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Number(Number::from(*self)) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::new(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::new(concat!(
                    "integer out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_value(&self) -> Value {
        // JSON numbers cap at u64 here; wider values go as strings.
        match u64::try_from(*self) {
            Ok(n) => Value::Number(Number::from(n)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        if let Some(n) = v.as_u64() {
            return Ok(n as u128);
        }
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DeError::new("expected u128"))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            // serde_json round-trips non-finite floats as null.
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Deserialize for &'static str {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        // A zero-lifetime deserializer cannot borrow from the input;
        // leak instead. Only config-table roundtrips hit this path.
        let s = v.as_str().ok_or_else(|| DeError::new("expected string"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(v).map(Some)
        }
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        // Sort serialized items for deterministic output.
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        items.sort_by_key(|v| v.to_json_string());
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

/// Render a map key as the JSON object-key string: strings verbatim,
/// numbers in decimal, anything else as compact JSON text.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        other => other.to_json_string(),
    }
}

/// Rebuild a map key from its object-key string, trying the string
/// form first and then numeric reinterpretations (covers newtype keys
/// over integers, like `Uid`).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_value(&Value::Number(Number::from(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_value(&Value::Number(Number::from(i))) {
            return Ok(k);
        }
    }
    if let Some(n) = s.parse::<f64>().ok().and_then(Number::from_f64) {
        if let Ok(k) = K::deserialize_value(&Value::Number(n)) {
            return Ok(k);
        }
    }
    Err(DeError::new(format!("cannot rebuild map key from {s:?}")))
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        self.iter().map(|(k, v)| (key_to_string(k), v.serialize_value())).collect()
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("expected object"))?;
        obj.iter().map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?))).collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        self.iter().map(|(k, v)| (key_to_string(k), v.serialize_value())).collect()
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("expected object"))?;
        obj.iter().map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?))).collect()
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::new("tuple length mismatch"));
                }
                Ok(($($t::deserialize_value(&arr[$idx])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Duration {
    fn serialize_value(&self) -> Value {
        // Matches serde's std representation: {"secs": .., "nanos": ..}
        let mut m = Map::new();
        m.insert("secs".into(), Value::from(self.as_secs()));
        m.insert("nanos".into(), Value::from(self.subsec_nanos()));
        Value::Object(m)
    }
}

impl Deserialize for Duration {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("expected duration object"))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::new("duration missing secs"))?;
        let nanos = obj
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::new("duration missing nanos"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u64, 2, 3];
        let val = v.serialize_value();
        assert_eq!(Vec::<u64>::deserialize_value(&val).unwrap(), v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), 1i64);
        let val = m.serialize_value();
        assert_eq!(HashMap::<String, i64>::deserialize_value(&val).unwrap(), m);
    }

    #[test]
    fn option_null_handling() {
        assert_eq!(Option::<u64>::deserialize_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::deserialize_value(&Value::from(4u64)).unwrap(), Some(4));
        assert_eq!(None::<String>.serialize_value(), Value::Null);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u64, "x".to_string(), true);
        let val = t.serialize_value();
        assert_eq!(<(u64, String, bool)>::deserialize_value(&val).unwrap(), t);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(3, 500);
        assert_eq!(Duration::deserialize_value(&d.serialize_value()).unwrap(), d);
    }

    #[test]
    fn int_range_checks() {
        let v = Value::from(300u64);
        assert!(u8::deserialize_value(&v).is_err());
        assert_eq!(u16::deserialize_value(&v).unwrap(), 300);
    }
}
