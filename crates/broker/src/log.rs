//! The segmented partition log.
//!
//! A partition is an append-only sequence of records with dense offsets,
//! stored as a list of *segments* (Kafka's on-disk layout, kept in
//! memory here). Segments bound the granularity of retention: time- and
//! size-based retention drop whole segments from the front; compaction
//! rewrites closed segments keeping only the latest record per key
//! (§IV-F: "Users can also configure the compaction and retention
//! policy").
//!
//! ## Concurrency: snapshot reads
//!
//! Records live in immutable chunks (`Arc<[Record]>`, one per appended
//! batch). After every mutation the log publishes a [`LogSnapshot`] — a
//! list of chunk pointers — into a slot readers share. Fetches read the
//! snapshot without the append lock: writers never block readers, and a
//! fetch clones only `Arc`/`Bytes` refcounts, never record payloads
//! (DESIGN.md §11). Appends stay cheap because sealing a batch into a
//! chunk moves the records; only republishing the *active* segment's
//! chunk list is per-append work, and that is a pointer-vector clone.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use octopus_types::{OctoError, OctoResult, Offset, Timestamp};

use crate::config::{CleanupPolicy, RetentionConfig};
use crate::record::{Record, RecordBatch};
use crate::store::{
    FlushPolicy, LazySegment, PartitionStore, RecoveredSegment, RecoveredSegments, RecoveryStats,
    StoreMetrics, StoreOptions, SyncTicket,
};

/// Default maximum segment size before rolling (1 MiB here; Kafka's
/// default is 1 GiB — scaled down for in-memory use).
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

/// Appends smaller than this merge into the previous chunk instead of
/// starting a new one, so single-record producers cannot degenerate a
/// segment into one chunk per record (which would make snapshot
/// publication O(records)).
const CHUNK_MERGE_BELOW: usize = 32;

#[derive(Debug, Clone)]
struct Segment {
    base_offset: Offset,
    /// Immutable runs of records, in offset order. Readers hold these
    /// by `Arc`; mutations (compaction, truncation, fault injection)
    /// rebuild the affected chunks. Empty while `lazy` is set.
    chunks: Vec<Arc<[Record]>>,
    record_count: usize,
    size_bytes: usize,
    max_timestamp: Timestamp,
    /// Cached immutable view used by [`PartitionLog::publish`];
    /// invalidated by any mutation of this segment. Sharing the cache
    /// between clones is safe: snapshots are immutable.
    snap_cache: Option<Arc<SegmentSnapshot>>,
    /// Sealed segment adopted from its index footer at recovery: the
    /// counts above come from the footer, and the records load from
    /// disk (or the cold tier) only when a read actually lands here.
    lazy: Option<Arc<LazySegment>>,
}

impl Segment {
    fn new(base_offset: Offset) -> Self {
        Segment {
            base_offset,
            chunks: Vec::new(),
            record_count: 0,
            size_bytes: 0,
            max_timestamp: Timestamp::from_millis(0),
            snap_cache: None,
            lazy: None,
        }
    }

    /// Adopt a footer-certified sealed segment without loading records.
    fn from_lazy(lazy: Arc<LazySegment>) -> Self {
        Segment {
            base_offset: lazy.base(),
            chunks: Vec::new(),
            record_count: lazy.record_count() as usize,
            size_bytes: lazy.logical_bytes() as usize,
            max_timestamp: Timestamp::from_millis(lazy.max_ts_ms()),
            snap_cache: None,
            lazy: Some(lazy),
        }
    }

    /// Offset of the last record, from the footer when lazy.
    fn last_offset(&self) -> Option<Offset> {
        if let Some(lazy) = &self.lazy {
            return Some(lazy.last_offset());
        }
        self.chunks.last().and_then(|c| c.last()).map(|r| r.offset)
    }

    /// The segment's chunk list, loading a lazy segment's records
    /// (shared decode) without making them permanently resident.
    fn loaded(&self) -> OctoResult<Vec<Arc<[Record]>>> {
        if let Some(lazy) = &self.lazy {
            return Ok(vec![lazy.records()?]);
        }
        Ok(self.chunks.clone())
    }

    /// Convert a lazy segment into a resident one (mutations need
    /// owned chunks). No-op when already resident.
    fn materialize(&mut self) -> OctoResult<()> {
        if let Some(lazy) = &self.lazy {
            let records = lazy.records()?;
            self.chunks = vec![records];
            self.lazy = None;
            self.snap_cache = None;
        }
        Ok(())
    }

    fn next_offset(&self) -> Offset {
        self.base_offset + self.record_count as u64
    }

    /// Iterate records in offset order across chunks.
    fn records(&self) -> impl Iterator<Item = &Record> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Replace this segment's contents with `records` (one chunk),
    /// recomputing the size/count/timestamp metadata.
    fn reset_records(&mut self, records: Vec<Record>) {
        self.record_count = records.len();
        self.size_bytes = records.iter().map(|r| r.wire_size()).sum();
        self.max_timestamp = records
            .iter()
            .map(|r| r.append_time)
            .max()
            .unwrap_or(Timestamp::from_millis(0));
        self.chunks = if records.is_empty() { Vec::new() } else { vec![Arc::from(records)] };
        self.snap_cache = None;
        self.lazy = None;
    }

    /// Rebuild a segment from recovered records (sizes and timestamps
    /// recomputed from the records themselves).
    fn from_records(base_offset: Offset, records: Vec<Record>) -> Self {
        let mut seg = Segment::new(base_offset);
        seg.reset_records(records);
        seg
    }

    /// Seal `pending` into the chunk list. Small appends coalesce into
    /// the previous chunk (bounded copy) to keep chunk counts low.
    fn seal(&mut self, pending: &mut Vec<Record>) {
        if pending.is_empty() {
            return;
        }
        self.snap_cache = None;
        if let Some(last) = self.chunks.last_mut() {
            if last.len() < CHUNK_MERGE_BELOW {
                let mut merged = Vec::with_capacity(last.len() + pending.len());
                merged.extend_from_slice(last);
                merged.append(pending);
                *last = Arc::from(merged);
                return;
            }
        }
        self.chunks.push(Arc::from(std::mem::take(pending)));
    }

    /// All records as one contiguous run (cold paths that need a slice:
    /// store rewrites, resync). Loads lazy segments.
    fn contiguous(&self) -> OctoResult<Arc<[Record]>> {
        if let Some(lazy) = &self.lazy {
            return lazy.records();
        }
        if self.chunks.len() == 1 {
            return Ok(self.chunks[0].clone());
        }
        Ok(self.records().cloned().collect::<Vec<_>>().into())
    }
}

/// Immutable view of one segment, shared between the log and every
/// published [`LogSnapshot`] that includes it.
#[derive(Debug)]
pub struct SegmentSnapshot {
    base_offset: Offset,
    max_timestamp: Timestamp,
    body: SnapshotBody,
}

/// How a snapshotted segment holds its records.
#[derive(Debug)]
enum SnapshotBody {
    /// Resident chunks, shared with the live log.
    Chunks(Vec<Arc<[Record]>>),
    /// Footer-certified sealed segment; records load on first read.
    Lazy(Arc<LazySegment>),
}

impl SegmentSnapshot {
    fn loaded(&self) -> OctoResult<Vec<Arc<[Record]>>> {
        match &self.body {
            SnapshotBody::Chunks(chunks) => Ok(chunks.clone()),
            SnapshotBody::Lazy(lazy) => Ok(vec![lazy.records()?]),
        }
    }

    /// Offset of the last record without loading a lazy body.
    fn last_offset(&self) -> Option<Offset> {
        match &self.body {
            SnapshotBody::Chunks(chunks) => {
                chunks.last().and_then(|c| c.last()).map(|r| r.offset)
            }
            SnapshotBody::Lazy(lazy) => Some(lazy.last_offset()),
        }
    }
}

/// An immutable point-in-time view of a partition log.
///
/// Obtained from [`PartitionLog::snapshot`] (or a broker
/// [`crate::broker::LogHandle`]); serves reads with the exact semantics
/// of the live log at publication time, without holding any lock. The
/// paper's fetch path reads the page cache; this is its in-memory
/// equivalent.
#[derive(Debug)]
pub struct LogSnapshot {
    segments: Vec<Arc<SegmentSnapshot>>,
    log_start: Offset,
    end: Offset,
}

impl LogSnapshot {
    /// An empty snapshot (placeholder before the first publish).
    fn empty() -> Self {
        LogSnapshot { segments: Vec::new(), log_start: 0, end: 0 }
    }

    /// Offset the next appended record will get, as of this snapshot.
    pub fn end_offset(&self) -> Offset {
        self.end
    }

    /// Offset of the earliest retained record, as of this snapshot.
    pub fn start_offset(&self) -> Offset {
        self.log_start
    }

    /// Read up to `max_records` records starting at `offset` —
    /// identical semantics to [`PartitionLog::read`], which delegates
    /// here. Record clones are refcount bumps (`Bytes` payloads), not
    /// payload copies.
    pub fn read(&self, offset: Offset, max_records: usize) -> OctoResult<Vec<Record>> {
        if offset == self.end {
            return Ok(Vec::new());
        }
        if offset < self.log_start || offset > self.end {
            return Err(OctoError::OffsetOutOfRange {
                requested: offset,
                earliest: self.log_start,
                latest: self.end,
            });
        }
        let mut out = Vec::new();
        // binary search for the segment containing `offset`
        let seg_idx = match self
            .segments
            .binary_search_by(|s| s.base_offset.cmp(&offset))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        'outer: for seg in &self.segments[seg_idx..] {
            // skip (and never load) segments wholly below the target
            if seg.last_offset().is_none_or(|l| l < offset) {
                continue;
            }
            for chunk in seg.loaded()? {
                for rec in chunk.iter() {
                    if rec.offset < offset {
                        continue;
                    }
                    if out.len() >= max_records {
                        break 'outer;
                    }
                    out.push(rec.clone());
                }
            }
        }
        Ok(out)
    }

    /// The smallest offset whose append time is `>= ts`, or the end
    /// offset if no such record is retained — identical semantics to
    /// [`PartitionLog::offset_for_timestamp`].
    pub fn offset_for_timestamp(&self, ts: Timestamp) -> Offset {
        for seg in &self.segments {
            if seg.max_timestamp < ts {
                continue;
            }
            // best-effort on a lazy segment that fails to load: the
            // max-timestamp prefilter already bounded the answer
            let Ok(chunks) = seg.loaded() else { continue };
            for rec in chunks.iter().flat_map(|c| c.iter()) {
                if rec.append_time >= ts {
                    return rec.offset;
                }
            }
        }
        self.end
    }
}

/// The slot a log publishes snapshots into; shared with reader handles.
///
/// A `Mutex` rather than an `RwLock`: both sides hold it only for an
/// `Arc` clone or pointer swap (nanoseconds), and a mutex keeps the
/// single publishing writer from being starved by a reader stampede —
/// exactly the pattern a fetch-heavy partition produces.
pub type SnapshotSlot = Arc<Mutex<Arc<LogSnapshot>>>;

/// A segmented log for one partition: always present in memory (the
/// fabric serves reads from the "page cache"), optionally backed by a
/// durable [`PartitionStore`] that survives crashes and power loss.
#[derive(Debug)]
pub struct PartitionLog {
    segments: Vec<Segment>,
    segment_bytes: usize,
    /// Offset of the first retained record.
    log_start: Offset,
    total_bytes: usize,
    /// Durable backing store, if the cluster was built with a data dir.
    store: Option<PartitionStore>,
    /// Published read view; refreshed after every mutation.
    snap: SnapshotSlot,
}

impl Clone for PartitionLog {
    /// Clones are *in-memory snapshots*: the durable store handle stays
    /// with the original, and the clone publishes into its own fresh
    /// snapshot slot (readers of the original keep reading the
    /// original).
    fn clone(&self) -> Self {
        let mut log = PartitionLog {
            segments: self.segments.clone(),
            segment_bytes: self.segment_bytes,
            log_start: self.log_start,
            total_bytes: self.total_bytes,
            store: None,
            snap: Arc::new(Mutex::new(Arc::new(LogSnapshot::empty()))),
        };
        log.publish();
        log
    }
}

impl Default for PartitionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionLog {
    /// Empty log with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }

    /// Empty log with a custom segment roll size (small values make
    /// retention tests cheap).
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        let mut log = PartitionLog {
            segments: vec![Segment::new(0)],
            segment_bytes: segment_bytes.max(1),
            log_start: 0,
            total_bytes: 0,
            store: None,
            snap: Arc::new(Mutex::new(Arc::new(LogSnapshot::empty()))),
        };
        log.publish();
        log
    }

    /// Open a durable log rooted at `dir`, recovering whatever a
    /// previous incarnation persisted (truncating any torn tail on
    /// disk). Returns the log plus the recovery stats.
    pub fn open_durable(
        segment_bytes: usize,
        dir: impl Into<std::path::PathBuf>,
        policy: FlushPolicy,
        metrics: StoreMetrics,
    ) -> OctoResult<(Self, RecoveryStats)> {
        Self::open_durable_with(segment_bytes, dir, policy, metrics, StoreOptions::default())
    }

    /// [`PartitionLog::open_durable`] with explicit storage options:
    /// sparse index density, per-batch compression, and cold tiering.
    /// Sealed segments recovered via their index footers are adopted
    /// lazily — reopen reads no sealed data at all.
    pub fn open_durable_with(
        segment_bytes: usize,
        dir: impl Into<std::path::PathBuf>,
        policy: FlushPolicy,
        metrics: StoreMetrics,
        opts: StoreOptions,
    ) -> OctoResult<(Self, RecoveryStats)> {
        let (store, recovered, stats) = PartitionStore::open_with(dir, policy, metrics, opts)?;
        let mut log = PartitionLog::with_segment_bytes(segment_bytes);
        log.store = Some(store);
        log.adopt_recovered(recovered);
        Ok((log, stats))
    }

    /// Whether this log writes through to disk.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// The current published read view. Cheap (`Arc` clone); safe to
    /// call while another thread appends.
    pub fn snapshot(&self) -> Arc<LogSnapshot> {
        self.snap.lock().clone()
    }

    /// The slot this log publishes into — lets a shared handle read
    /// snapshots without locking the log itself.
    pub fn snapshot_slot(&self) -> SnapshotSlot {
        Arc::clone(&self.snap)
    }

    /// Rebuild and publish the read view. Closed segments reuse their
    /// cached immutable views; only segments mutated since the last
    /// publish are rebuilt.
    fn publish(&mut self) {
        let end = self.end_offset();
        let mut segments = Vec::with_capacity(self.segments.len());
        for seg in &mut self.segments {
            if seg.snap_cache.is_none() {
                let body = match &seg.lazy {
                    Some(lazy) => SnapshotBody::Lazy(Arc::clone(lazy)),
                    None => SnapshotBody::Chunks(seg.chunks.clone()),
                };
                seg.snap_cache = Some(Arc::new(SegmentSnapshot {
                    base_offset: seg.base_offset,
                    max_timestamp: seg.max_timestamp,
                    body,
                }));
            }
            segments.push(seg.snap_cache.clone().expect("just filled"));
        }
        let snapshot = Arc::new(LogSnapshot { segments, log_start: self.log_start, end });
        *self.snap.lock() = snapshot;
    }

    /// Replace in-memory state with segments recovered from disk.
    /// Footer-adopted sealed segments stay lazy (no data read); the
    /// active tail and any rescanned segment arrive resident.
    fn adopt_recovered(&mut self, recovered: RecoveredSegments) {
        if recovered.is_empty() {
            self.segments = vec![Segment::new(0)];
            self.log_start = 0;
            self.total_bytes = 0;
        } else {
            self.segments = recovered
                .into_iter()
                .map(|seg| match seg {
                    RecoveredSegment::Resident { base, records } => {
                        Segment::from_records(base, records)
                    }
                    RecoveredSegment::Sealed(lazy) => Segment::from_lazy(lazy),
                })
                .collect();
            self.log_start = self.segments[0].base_offset;
            self.total_bytes = self.segments.iter().map(|s| s.size_bytes).sum();
        }
        self.publish();
    }

    /// Restart-time recovery. Durable logs reload authoritative state
    /// from disk (rescanning segment files and truncating the torn
    /// tail there); volatile logs fall back to the in-memory
    /// [`PartitionLog::verify_and_truncate`].
    pub fn recover(&mut self) -> OctoResult<RecoveryStats> {
        if let Some(store) = self.store.as_mut() {
            let (recovered, stats) = store.recover()?;
            self.adopt_recovered(recovered);
            Ok(stats)
        } else {
            let dropped = self.verify_and_truncate();
            Ok(RecoveryStats { records_truncated: dropped as u64, ..RecoveryStats::default() })
        }
    }

    /// Adopt another log's contents (ISR resync copying the leader).
    /// Keeps this log's own durable store, rewriting its files to match
    /// the adopted snapshot.
    pub fn replace_from(&mut self, snapshot: &PartitionLog) -> OctoResult<()> {
        self.segments = snapshot.segments.clone();
        self.segment_bytes = snapshot.segment_bytes;
        self.log_start = snapshot.log_start;
        self.total_bytes = snapshot.total_bytes;
        if let Some(store) = self.store.as_mut() {
            let runs: Vec<(Offset, Arc<[Record]>)> = self
                .segments
                .iter()
                .map(|s| Ok((s.base_offset, s.contiguous()?)))
                .collect::<OctoResult<_>>()?;
            store.reset_with(runs.iter().map(|(base, recs)| (*base, &recs[..])))?;
        }
        self.publish();
        Ok(())
    }

    /// Simulate power loss: RAM is gone; the disk keeps closed segments,
    /// the fsynced prefix of the active segment, and an `entropy`-chosen
    /// slice of its unflushed suffix. The in-memory state is wiped —
    /// only [`PartitionLog::recover`] (the restart path) brings the
    /// partition back. Returns bytes torn from disk (`0` for volatile
    /// logs, where a crash loses nothing by construction).
    pub fn power_loss(&mut self, entropy: u64) -> OctoResult<u64> {
        let Some(store) = self.store.as_mut() else { return Ok(0) };
        let torn = store.power_loss(entropy)?;
        self.segments = vec![Segment::new(0)];
        self.log_start = 0;
        self.total_bytes = 0;
        self.publish();
        Ok(torn)
    }

    /// Force-fsync the durable store (graceful shutdown / flush-all).
    pub fn sync_store(&mut self) -> OctoResult<()> {
        match self.store.as_mut() {
            Some(store) => store.sync(),
            None => Ok(()),
        }
    }

    /// Bytes appended but not yet known to be on stable storage.
    pub fn unflushed_bytes(&self) -> u64 {
        self.store.as_ref().map(|s| s.unflushed_bytes()).unwrap_or(0)
    }

    /// The durable backing store, if any (benches and drills reach the
    /// seek/tiering machinery through this).
    pub fn store(&self) -> Option<&PartitionStore> {
        self.store.as_ref()
    }

    /// Mutable access to the durable backing store, if any.
    pub fn store_mut(&mut self) -> Option<&mut PartitionStore> {
        self.store.as_mut()
    }

    /// Offload every sealed segment's data file to the cold tier now.
    /// Returns how many segments moved (0 without a store or cold tier).
    pub fn offload_cold(&mut self) -> OctoResult<u64> {
        self.store.as_mut().map_or(Ok(0), |s| s.offload_now())
    }

    /// Records currently resident in RAM (lazy sealed segments count
    /// zero until a read materializes them) — lets tests assert that
    /// reopen did not load sealed data.
    pub fn resident_records(&self) -> usize {
        self.segments.iter().filter(|s| s.lazy.is_none()).map(|s| s.record_count).sum()
    }

    /// Change the segment roll size for future appends (topic config
    /// updates propagate here). Existing segments are untouched.
    pub fn set_segment_bytes(&mut self, segment_bytes: usize) {
        self.segment_bytes = segment_bytes.max(1);
    }

    /// Offset the next appended record will get.
    pub fn end_offset(&self) -> Offset {
        self.segments.last().map(|s| s.next_offset()).unwrap_or(self.log_start)
    }

    /// Offset of the earliest retained record.
    pub fn start_offset(&self) -> Offset {
        self.log_start
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.record_count).sum()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained bytes.
    pub fn size_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Append a verified batch at `now`; returns the base offset
    /// assigned to the first record. Durable logs apply the flush policy
    /// inline before returning (an acked record is already fsynced under
    /// [`FlushPolicy::PerBatch`]).
    pub fn append(&mut self, batch: &RecordBatch, now: Timestamp) -> OctoResult<Offset> {
        self.append_inner(batch, now, false).map(|(base, _)| base)
    }

    /// [`PartitionLog::append`], but under [`FlushPolicy::PerBatch`] the
    /// batch's fsync is deferred to the returned [`SyncTicket`]. The
    /// caller waits the ticket *after releasing the partition lock*, so
    /// concurrent producers to the same partition share fsyncs (group
    /// commit, DESIGN.md §11) instead of serializing them under the
    /// mutex. A failed `wait` means the batch reached the file but its
    /// durability is unconfirmed; callers surface the error and the
    /// producer retries (at-least-once).
    pub fn append_deferred(
        &mut self,
        batch: &RecordBatch,
        now: Timestamp,
    ) -> OctoResult<(Offset, Option<SyncTicket>)> {
        self.append_inner(batch, now, true)
    }

    fn append_inner(
        &mut self,
        batch: &RecordBatch,
        now: Timestamp,
        deferred: bool,
    ) -> OctoResult<(Offset, Option<SyncTicket>)> {
        if !batch.verify() {
            return Err(OctoError::Invalid("record batch failed CRC check".into()));
        }
        let base = self.end_offset();
        // records sealed into the active segment's chunk list at each
        // segment roll and at the end of the batch
        let mut pending: Vec<Record> = Vec::with_capacity(batch.events.len());
        for (i, event) in batch.events.iter().enumerate() {
            let mut rec = Record {
                offset: base + i as u64,
                append_time: now,
                key: event.key.clone(),
                value: event.payload.clone(),
                headers: event.headers.clone(),
                producer_time: event.timestamp,
                crc: 0,
                eos: batch.producer.map(|stamp| crate::record::RecordEos {
                    pid: stamp.pid,
                    epoch: stamp.epoch,
                    seq: stamp.seq + i as u64,
                    txn: batch.txn,
                    control: batch.control,
                }),
            };
            rec.crc = rec.compute_crc();
            let size = rec.wire_size();
            let roll = {
                let seg = self.segments.last().expect("log always has a segment");
                seg.record_count > 0 && seg.size_bytes + size > self.segment_bytes
            };
            if roll {
                let seg = self.segments.last_mut().expect("nonempty");
                seg.seal(&mut pending);
                let next = seg.next_offset();
                self.segments.push(Segment::new(next));
            }
            let seg = self.segments.last_mut().expect("nonempty");
            seg.size_bytes += size;
            seg.max_timestamp = seg.max_timestamp.max(rec.append_time);
            seg.record_count += 1;
            seg.snap_cache = None;
            pending.push(rec);
            self.total_bytes += size;
        }
        self.segments.last_mut().expect("nonempty").seal(&mut pending);
        let mut ticket = None;
        if self.store.is_some() {
            match self.write_through(base, deferred) {
                Ok(t) => ticket = t,
                Err(e) => {
                    // disk refused the batch: roll the in-memory tail
                    // back so RAM never claims records the store could
                    // not keep
                    self.truncate_from_offset(base);
                    if let Some(store) = self.store.as_mut() {
                        let _ = store.truncate_to(base);
                    }
                    self.publish();
                    return Err(e);
                }
            }
        }
        self.publish();
        Ok((base, ticket))
    }

    /// Append records copied verbatim from another replica (reassignment
    /// learner catch-up). Unlike [`PartitionLog::append`], offsets,
    /// timestamps, CRCs, and EOS stamps are preserved exactly as the
    /// source assigned them, so the learner's log is byte-identical to
    /// the leader's and the EOS dedup rebuild sees the same history.
    ///
    /// The run must be contiguous with this log: `records[0].offset`
    /// must equal [`PartitionLog::end_offset`]. As a special case an
    /// *empty* log adopts a higher base (the leader's retention already
    /// dropped the front; the learner starts at the leader's start
    /// offset). Durable logs write through inline — catch-up traffic is
    /// throttled anyway, so it never rides the group-commit path.
    pub fn append_copied(&mut self, records: &[Record]) -> OctoResult<Offset> {
        let Some(first) = records.first() else { return Ok(self.end_offset()) };
        if self.is_empty() && first.offset > self.end_offset() {
            self.segments = vec![Segment::new(first.offset)];
            self.log_start = first.offset;
        }
        let base = self.end_offset();
        if first.offset != base {
            return Err(OctoError::OffsetOutOfRange {
                requested: first.offset,
                earliest: self.log_start,
                latest: base,
            });
        }
        let mut pending: Vec<Record> = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            if rec.offset != base + i as u64 {
                return Err(OctoError::Invalid(format!(
                    "copied run not dense: expected offset {}, got {}",
                    base + i as u64,
                    rec.offset
                )));
            }
            if !rec.verify() {
                return Err(OctoError::Invalid(format!(
                    "copied record {} failed CRC check",
                    rec.offset
                )));
            }
            let size = rec.wire_size();
            let roll = {
                let seg = self.segments.last().expect("log always has a segment");
                seg.record_count > 0 && seg.size_bytes + size > self.segment_bytes
            };
            if roll {
                let seg = self.segments.last_mut().expect("nonempty");
                seg.seal(&mut pending);
                let next = seg.next_offset();
                self.segments.push(Segment::new(next));
            }
            let seg = self.segments.last_mut().expect("nonempty");
            seg.size_bytes += size;
            seg.max_timestamp = seg.max_timestamp.max(rec.append_time);
            seg.record_count += 1;
            seg.snap_cache = None;
            pending.push(rec.clone());
            self.total_bytes += size;
        }
        self.segments.last_mut().expect("nonempty").seal(&mut pending);
        if self.store.is_some() {
            if let Err(e) = self.write_through(base, false) {
                self.truncate_from_offset(base);
                if let Some(store) = self.store.as_mut() {
                    let _ = store.truncate_to(base);
                }
                self.publish();
                return Err(e);
            }
        }
        self.publish();
        Ok(base)
    }

    /// Persist every record at `offset >= from` to the store, mirroring
    /// the in-memory segment layout, then apply the flush policy —
    /// inline, or as a deferred [`SyncTicket`] under `PerBatch`.
    fn write_through(&mut self, from: Offset, deferred: bool) -> OctoResult<Option<SyncTicket>> {
        let store = self.store.as_mut().expect("caller checked");
        let seg_idx = match self.segments.binary_search_by(|s| s.base_offset.cmp(&from)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        for seg in &self.segments[seg_idx..] {
            // whole per-segment runs go down as one batch: a single
            // write(2), and under Lz4 one compressed frame per run
            let run: Vec<Record> = seg
                .records()
                .filter(|rec| rec.offset >= from)
                .cloned()
                .collect();
            if !run.is_empty() {
                store.append_batch(&run, seg.base_offset)?;
            }
        }
        if deferred {
            store.commit_batch_ticket()
        } else {
            store.commit_batch().map(|()| None)
        }
    }

    /// Remove every in-memory record at `offset >= from`, dropping
    /// trailing segments that end up empty (but always keeping one).
    fn truncate_from_offset(&mut self, from: Offset) {
        for seg in &mut self.segments {
            if seg.lazy.is_some() {
                // lazy segments are sealed history; append rollbacks
                // only ever touch the resident tail
                continue;
            }
            let last_off = seg.last_offset();
            if last_off.map(|o| o < from).unwrap_or(true) {
                continue; // nothing at or beyond `from` in this segment
            }
            let kept: Vec<Record> =
                seg.records().take_while(|r| r.offset < from).cloned().collect();
            let removed_bytes: usize =
                seg.records().skip(kept.len()).map(|r| r.wire_size()).sum();
            self.total_bytes -= removed_bytes;
            let base = seg.base_offset;
            let max_ts = seg.max_timestamp;
            seg.reset_records(kept);
            seg.base_offset = base;
            // keep the observed max timestamp: retention decisions only
            // ever get more conservative from an overestimate
            seg.max_timestamp = max_ts;
        }
        while self.segments.len() > 1
            && self.segments.last().map(|s| s.record_count == 0).unwrap_or(false)
        {
            self.segments.pop();
        }
    }

    /// Read up to `max_records` records starting at `offset`.
    ///
    /// `offset == end_offset()` returns an empty vec (caller is caught
    /// up); offsets below `start_offset` or above the end are
    /// `OffsetOutOfRange`, matching Kafka's fetch semantics. Served
    /// from the published [`LogSnapshot`] — the same path concurrent
    /// readers use — so callers holding the log lock and lock-free
    /// readers can never disagree.
    pub fn read(&self, offset: Offset, max_records: usize) -> OctoResult<Vec<Record>> {
        self.snapshot().read(offset, max_records)
    }

    /// The smallest offset whose append time is `>= ts` (the
    /// "consume after a certain timestamp" mode of §IV-F), or the end
    /// offset if no such record is retained.
    pub fn offset_for_timestamp(&self, ts: Timestamp) -> Offset {
        self.snapshot().offset_for_timestamp(ts)
    }

    /// Apply retention at `now`: drop whole closed segments older than
    /// `retention.ms` or beyond `retention.bytes`. The active (last)
    /// segment is never dropped. Returns the number of records removed.
    pub fn enforce_retention(&mut self, retention: &RetentionConfig, now: Timestamp) -> usize {
        let mut removed = 0usize;
        // time-based: drop closed segments whose newest record is older
        // than the retention window
        while self.segments.len() > 1 {
            let seg = &self.segments[0];
            let expired = retention
                .retention_ms
                .map(|ms| now.since(seg.max_timestamp).as_millis() as u64 > ms)
                .unwrap_or(false);
            let over_size = retention
                .retention_bytes
                .map(|limit| self.total_bytes as u64 > limit)
                .unwrap_or(false);
            if !(expired || over_size) {
                break;
            }
            let seg = self.segments.remove(0);
            removed += seg.record_count;
            self.total_bytes -= seg.size_bytes;
            self.log_start = self.segments[0].base_offset;
            if let Some(store) = self.store.as_mut() {
                // best-effort: a failed delete only means recovery may
                // resurrect an already-expired segment, never data loss
                let _ = store.remove_front_segment(seg.base_offset);
            }
        }
        if removed > 0 {
            self.publish();
        }
        removed
    }

    /// Compact closed segments: keep only the newest record per key
    /// (records without a key are always kept, as in Kafka, where
    /// compaction requires keyed topics — unkeyed records cannot be
    /// superseded). The active segment is left alone. Offsets are
    /// preserved (compaction never renumbers). Returns records removed.
    pub fn compact(&mut self) -> usize {
        if self.segments.len() <= 1 {
            return 0;
        }
        // newest offset per key across *all* retained records (later
        // segments supersede earlier ones); lazy segments load via the
        // shared-decode cache and an unreadable one is left untouched
        let mut newest: HashMap<Bytes, Offset> = HashMap::new();
        let mut loaded: Vec<Option<Vec<Arc<[Record]>>>> = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            match seg.loaded() {
                Ok(chunks) => {
                    for rec in chunks.iter().flat_map(|c| c.iter()) {
                        if let Some(k) = &rec.key {
                            newest.insert(k.clone(), rec.offset);
                        }
                    }
                    loaded.push(Some(chunks));
                }
                Err(_) => loaded.push(None),
            }
        }
        let mut removed = 0usize;
        let last = self.segments.len() - 1;
        let mut store_rewrites: Vec<(Offset, Arc<[Record]>)> = Vec::new();
        for (seg, chunks) in self.segments[..last].iter_mut().zip(&loaded) {
            let Some(chunks) = chunks else { continue };
            let before: usize = chunks.iter().map(|c| c.len()).sum();
            let kept: Vec<Record> = chunks
                .iter()
                .flat_map(|c| c.iter())
                .filter(|rec| match &rec.key {
                    Some(k) => newest.get(k) == Some(&rec.offset),
                    None => true,
                })
                .cloned()
                .collect();
            if kept.len() == before {
                continue;
            }
            removed += before - kept.len();
            let base = seg.base_offset;
            let max_ts = seg.max_timestamp;
            let old_size = seg.size_bytes;
            seg.reset_records(kept);
            seg.base_offset = base;
            seg.max_timestamp = max_ts;
            self.total_bytes -= old_size - seg.size_bytes;
            store_rewrites
                .push((base, seg.contiguous().expect("segment just made resident")));
        }
        if let Some(store) = self.store.as_mut() {
            for (base, records) in &store_rewrites {
                // atomic rewrite (tmp + rename); best-effort like
                // retention — recovery resurrecting superseded keys
                // only costs space, not correctness
                let _ = store.rewrite_segment(*base, records);
            }
        }
        if removed > 0 {
            self.publish();
        }
        removed
    }

    /// Corrupt the payload bytes of the last `n` retained records
    /// *without* updating their checksums — the shape a torn or
    /// bit-rotted tail write leaves on disk. Fault-injection only.
    /// Returns how many records were actually corrupted.
    pub fn corrupt_tail(&mut self, n: usize) -> usize {
        let mut corrupted = 0usize;
        'outer: for seg in self.segments.iter_mut().rev() {
            if seg.lazy.is_some() && seg.materialize().is_err() {
                break; // unreadable cold segment: nothing to corrupt
            }
            for chunk in seg.chunks.iter_mut().rev() {
                if corrupted >= n {
                    break 'outer;
                }
                let mut records = chunk.to_vec();
                for rec in records.iter_mut().rev() {
                    if corrupted >= n {
                        break;
                    }
                    let mut bytes = rec.value.to_vec();
                    if bytes.is_empty() {
                        bytes.push(0xff);
                    } else {
                        let last = bytes.len() - 1;
                        bytes[last] ^= 0xa5;
                    }
                    rec.value = Bytes::from(bytes);
                    corrupted += 1;
                }
                *chunk = Arc::from(records);
                seg.snap_cache = None;
            }
        }
        if corrupted > 0 {
            self.publish();
        }
        corrupted
    }

    /// Log recovery: scan records in offset order and truncate
    /// everything from the first CRC mismatch onward (a corrupt record
    /// makes the rest of the tail untrustworthy, as in Kafka's
    /// restart-time log recovery). Returns the number of records
    /// dropped.
    pub fn verify_and_truncate(&mut self) -> usize {
        let mut bad: Option<(usize, Offset)> = None;
        'scan: for (si, seg) in self.segments.iter().enumerate() {
            for rec in seg.records() {
                if !rec.verify() {
                    bad = Some((si, rec.offset));
                    break 'scan;
                }
            }
        }
        let Some((si, bad_offset)) = bad else { return 0 };
        let mut removed = 0usize;
        for seg in self.segments.drain(si + 1..) {
            removed += seg.record_count;
            self.total_bytes -= seg.size_bytes;
        }
        let seg = &mut self.segments[si];
        // offsets are monotonic within a segment, so cutting at the bad
        // record's offset is the same as cutting at its position
        let kept: Vec<Record> =
            seg.records().take_while(|r| r.offset < bad_offset).cloned().collect();
        removed += seg.record_count - kept.len();
        let base = seg.base_offset;
        let max_ts = seg.max_timestamp;
        let old_size = seg.size_bytes;
        seg.reset_records(kept);
        seg.base_offset = base;
        seg.max_timestamp = max_ts;
        self.total_bytes -= old_size - seg.size_bytes;
        self.publish();
        removed
    }

    /// Run the configured cleanup policy.
    pub fn cleanup(&mut self, policy: &CleanupPolicy, retention: &RetentionConfig, now: Timestamp) -> usize {
        match policy {
            CleanupPolicy::Delete => self.enforce_retention(retention, now),
            CleanupPolicy::Compact => self.compact(),
            CleanupPolicy::CompactAndDelete => {
                self.compact() + self.enforce_retention(retention, now)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::Event;

    fn ev(payload: &str) -> Event {
        Event::from_bytes(payload.as_bytes().to_vec())
    }

    fn kev(key: &str, payload: &str) -> Event {
        Event::builder().key(key).payload(payload.as_bytes().to_vec()).build()
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn offsets_are_dense_and_increasing() {
        let mut log = PartitionLog::new();
        let b0 = log.append(&RecordBatch::new(vec![ev("a"), ev("b")]), t(1)).unwrap();
        let b1 = log.append(&RecordBatch::new(vec![ev("c")]), t(2)).unwrap();
        assert_eq!(b0, 0);
        assert_eq!(b1, 2);
        assert_eq!(log.end_offset(), 3);
        let recs = log.read(0, 100).unwrap();
        assert_eq!(recs.iter().map(|r| r.offset).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(&recs[2].value[..], b"c");
    }

    #[test]
    fn read_semantics_at_boundaries() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a"), ev("b"), ev("c")]), t(1)).unwrap();
        // caught-up read is empty, not an error
        assert!(log.read(3, 10).unwrap().is_empty());
        // beyond the end errors
        assert!(matches!(log.read(4, 10), Err(OctoError::OffsetOutOfRange { .. })));
        // max_records respected
        assert_eq!(log.read(0, 2).unwrap().len(), 2);
        // mid-log read
        assert_eq!(log.read(1, 10).unwrap()[0].offset, 1);
    }

    #[test]
    fn corrupt_batch_rejected() {
        let mut log = PartitionLog::new();
        let mut batch = RecordBatch::new(vec![ev("a")]);
        batch.crc ^= 1;
        assert!(matches!(log.append(&batch, t(1)), Err(OctoError::Invalid(_))));
        assert!(log.is_empty());
    }

    #[test]
    fn segments_roll_by_size() {
        let mut log = PartitionLog::with_segment_bytes(10);
        for i in 0..10 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i)).unwrap();
        }
        // 6-byte records, 10-byte segments -> one record rolls the next
        assert!(log.segments.len() >= 5, "got {} segments", log.segments.len());
        // reads still span segments seamlessly
        let recs = log.read(0, 100).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[9].offset, 9);
    }

    #[test]
    fn append_copied_preserves_offsets_and_crc() {
        let mut leader = PartitionLog::new();
        leader.append(&RecordBatch::new(vec![ev("a"), ev("b"), ev("c"), ev("d")]), t(5)).unwrap();
        let run = leader.read(0, 100).unwrap();

        let mut learner = PartitionLog::with_segment_bytes(16);
        learner.append_copied(&run[..2]).unwrap();
        learner.append_copied(&run[2..]).unwrap();
        assert_eq!(learner.end_offset(), 4);
        let copied = learner.read(0, 100).unwrap();
        for (orig, got) in run.iter().zip(copied.iter()) {
            assert_eq!(orig.offset, got.offset);
            assert_eq!(orig.crc, got.crc);
            assert_eq!(orig.append_time, got.append_time);
        }
        // non-contiguous runs are rejected, duplicates included
        assert!(matches!(
            learner.append_copied(&run[1..]),
            Err(OctoError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn append_copied_bootstraps_empty_log_at_leader_start() {
        let mut leader = PartitionLog::new();
        for i in 0..6 {
            leader.append(&RecordBatch::new(vec![ev(&format!("{i}"))]), t(i)).unwrap();
        }
        // simulate retention having dropped the front on the leader
        let run = leader.read(3, 100).unwrap();
        let mut learner = PartitionLog::new();
        learner.append_copied(&run).unwrap();
        assert_eq!(learner.start_offset(), 3);
        assert_eq!(learner.end_offset(), 6);
        assert_eq!(learner.read(3, 10).unwrap().len(), 3);
    }

    #[test]
    fn snapshot_is_stable_while_log_advances() {
        let mut log = PartitionLog::with_segment_bytes(64);
        log.append(&RecordBatch::new(vec![ev("a"), ev("b")]), t(1)).unwrap();
        let snap = log.snapshot();
        assert_eq!(snap.end_offset(), 2);
        // the log moves on; the held snapshot does not
        log.append(&RecordBatch::new(vec![ev("c")]), t(2)).unwrap();
        assert_eq!(snap.end_offset(), 2);
        assert_eq!(snap.read(0, 100).unwrap().len(), 2);
        // a fresh snapshot sees the new tail
        let snap2 = log.snapshot();
        assert_eq!(snap2.end_offset(), 3);
        assert_eq!(snap2.read(2, 100).unwrap()[0].offset, 2);
        // snapshot read semantics match the log's own at the boundary
        assert!(snap.read(2, 10).unwrap().is_empty());
        assert!(matches!(snap.read(3, 10), Err(OctoError::OffsetOutOfRange { .. })));
    }

    #[test]
    fn snapshot_tracks_every_mutation_kind() {
        let mut log = PartitionLog::with_segment_bytes(8);
        for i in 0..8u64 {
            log.append(&RecordBatch::new(vec![kev("k", &format!("{i:06}"))]), t(i * 1000))
                .unwrap();
        }
        // retention
        let retention = RetentionConfig { retention_ms: Some(1_000), retention_bytes: None };
        log.enforce_retention(&retention, t(9_000));
        let snap = log.snapshot();
        assert_eq!(snap.start_offset(), log.start_offset());
        assert_eq!(snap.end_offset(), log.end_offset());
        // compaction
        log.compact();
        assert_eq!(log.snapshot().read(log.start_offset(), 100).unwrap().len(), log.len());
        // corruption + recovery truncation
        log.corrupt_tail(1);
        let served = log.snapshot().read(log.start_offset(), 100).unwrap();
        assert!(served.iter().any(|r| !r.verify()), "snapshot serves the corrupt tail");
        log.verify_and_truncate();
        assert_eq!(log.snapshot().end_offset(), log.end_offset());
        assert!(log.snapshot().read(log.start_offset(), 100).unwrap().iter().all(|r| r.verify()));
        // clone publishes into its own slot
        let clone = log.clone();
        assert_eq!(clone.snapshot().end_offset(), log.end_offset());
    }

    #[test]
    fn time_retention_drops_old_segments() {
        let mut log = PartitionLog::with_segment_bytes(8);
        for i in 0..8u64 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i * 1000)).unwrap();
        }
        let retention =
            RetentionConfig { retention_ms: Some(3_000), retention_bytes: None };
        let removed = log.enforce_retention(&retention, t(8_000));
        assert!(removed > 0);
        assert!(log.start_offset() > 0);
        // old offsets now out of range
        assert!(matches!(log.read(0, 10), Err(OctoError::OffsetOutOfRange { .. })));
        // newest data still readable
        assert_eq!(log.read(log.start_offset(), 100).unwrap().len(), log.len());
        // the active segment survives even if expired
        let removed_again = log.enforce_retention(
            &RetentionConfig { retention_ms: Some(0), retention_bytes: None },
            t(1_000_000),
        );
        assert!(!log.is_empty(), "active segment never dropped (removed {removed_again})");
    }

    #[test]
    fn size_retention_bounds_total_bytes() {
        let mut log = PartitionLog::with_segment_bytes(100);
        for i in 0..100 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:050}"))]), t(i)).unwrap();
        }
        let retention = RetentionConfig { retention_ms: None, retention_bytes: Some(500) };
        log.enforce_retention(&retention, t(1000));
        assert!(log.size_bytes() <= 600, "size {} not bounded", log.size_bytes());
    }

    #[test]
    fn offset_for_timestamp_lookup() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a")]), t(100)).unwrap();
        log.append(&RecordBatch::new(vec![ev("b")]), t(200)).unwrap();
        log.append(&RecordBatch::new(vec![ev("c")]), t(300)).unwrap();
        assert_eq!(log.offset_for_timestamp(t(0)), 0);
        assert_eq!(log.offset_for_timestamp(t(150)), 1);
        assert_eq!(log.offset_for_timestamp(t(200)), 1);
        assert_eq!(log.offset_for_timestamp(t(201)), 2);
        assert_eq!(log.offset_for_timestamp(t(999)), 3); // end offset
    }

    #[test]
    fn compaction_keeps_latest_per_key() {
        let mut log = PartitionLog::with_segment_bytes(4);
        log.append(&RecordBatch::new(vec![kev("k1", "v1")]), t(1)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k2", "v1")]), t(2)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k1", "v2")]), t(3)).unwrap();
        log.append(&RecordBatch::new(vec![ev("nk")]), t(4)).unwrap();
        log.append(&RecordBatch::new(vec![kev("k1", "v3")]), t(5)).unwrap();
        let removed = log.compact();
        assert_eq!(removed, 2, "k1@0 and k1@2 removed");
        let recs = log.read(log.start_offset(), 100).unwrap();
        let k1: Vec<&Record> =
            recs.iter().filter(|r| r.key.as_deref() == Some(&b"k1"[..])).collect();
        assert_eq!(k1.len(), 1);
        assert_eq!(&k1[0].value[..], b"v3");
        // unkeyed record survives
        assert!(recs.iter().any(|r| r.key.is_none()));
        // offsets preserved (no renumbering)
        assert_eq!(k1[0].offset, 4);
    }

    #[test]
    fn tail_corruption_detected_and_truncated() {
        let mut log = PartitionLog::with_segment_bytes(12);
        for i in 0..6u64 {
            log.append(&RecordBatch::new(vec![ev(&format!("{i:06}"))]), t(i)).unwrap();
        }
        let bytes_before = log.size_bytes();
        assert_eq!(log.corrupt_tail(2), 2);
        // reads still serve the corrupt records (the fabric trusts the
        // page cache while running) — recovery happens on restart
        assert_eq!(log.read(0, 100).unwrap().len(), 6);
        let dropped = log.verify_and_truncate();
        assert_eq!(dropped, 2);
        assert_eq!(log.end_offset(), 4);
        assert_eq!(log.len(), 4);
        assert!(log.size_bytes() < bytes_before);
        // surviving prefix is intact and re-appendable
        assert!(log.read(0, 100).unwrap().iter().all(|r| r.verify()));
        let next = log.append(&RecordBatch::new(vec![ev("fresh!")]), t(10)).unwrap();
        assert_eq!(next, 4);
    }

    #[test]
    fn verify_and_truncate_is_noop_on_clean_log() {
        let mut log = PartitionLog::new();
        log.append(&RecordBatch::new(vec![ev("a"), ev("b")]), t(1)).unwrap();
        assert_eq!(log.verify_and_truncate(), 0);
        assert_eq!(log.len(), 2);
        assert_eq!(PartitionLog::new().verify_and_truncate(), 0);
    }

    #[test]
    fn cleanup_policy_dispatch() {
        let retention = RetentionConfig { retention_ms: Some(10), retention_bytes: None };
        let mut log = PartitionLog::with_segment_bytes(4);
        for i in 0..5u64 {
            log.append(&RecordBatch::new(vec![kev("k", &format!("v{i}"))]), t(i)).unwrap();
        }
        let mut l2 = log.clone();
        assert!(log.cleanup(&CleanupPolicy::Compact, &retention, t(100)) > 0);
        assert!(l2.cleanup(&CleanupPolicy::CompactAndDelete, &retention, t(100)) > 0);
    }
}
