//! Multi-producer multi-consumer channels.
//!
//! API-compatible (for this workspace's usage) with
//! `crossbeam::channel`: [`bounded`], [`unbounded`], cloneable
//! [`Sender`]/[`Receiver`], `send`/`try_send`/`recv`/`try_recv`/
//! `recv_timeout`, and disconnection when all peers on the other side
//! drop.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// None = unbounded.
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn sender_count(&self) -> usize {
        self.senders.load(Ordering::Acquire)
    }
    fn receiver_count(&self) -> usize {
        self.receivers.load(Ordering::Acquire)
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers were dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }

    /// Whether the error is `Full`.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Whether the error is `Disconnected`.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders were dropped and the channel is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders were dropped and the channel is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Send `msg`, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.receiver_count() == 0 {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.not_full.wait(queue).unwrap();
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Send without blocking; fails if full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        if self.shared.receiver_count() == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.sender_count() == 0 {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).unwrap();
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if self.shared.sender_count() == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receive, blocking up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.sender_count() == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = self.shared.not_empty.wait_timeout(queue, deadline - now).unwrap();
            queue = q;
            if res.timed_out() && queue.is_empty() {
                if self.shared.sender_count() == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over received messages until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Iterate over currently queued messages without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver gone: wake all blocked senders.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking iterator over a receiver; ends on disconnection.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over queued messages.
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Create a channel holding at most `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// Create a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(tx.try_send(2).unwrap_err().is_full());
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(2).unwrap();
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_behaviour() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 3);
        h.join().unwrap();
    }

    #[test]
    fn cross_thread_bounded_blocking() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
