//! §IV-F delivery semantics under failure injection: producer retries
//! across broker outages, at-least-once consumption across consumer
//! crashes, acks=all durability across leader failover.

use std::time::Duration;

use octopus::broker::{AckLevel, BrokerId, RecordBatch};
use octopus::prelude::*;
use octopus::sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};

fn ev(s: &str) -> Event {
    Event::from_bytes(s.as_bytes().to_vec())
}

#[test]
fn producer_retries_through_total_outage() {
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    let producer = Producer::new(
        cluster.clone(),
        ProducerConfig {
            retries: 100,
            retry_backoff: Duration::from_millis(2),
            ..Default::default()
        },
    );
    cluster.kill_broker(BrokerId(0)).unwrap();
    cluster.kill_broker(BrokerId(1)).unwrap();
    let healer = {
        let cluster = cluster.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            cluster.restart_broker(BrokerId(0)).unwrap();
            cluster.restart_broker(BrokerId(1)).unwrap();
        })
    };
    let receipt = producer.send_sync("t", ev("survives"));
    healer.join().unwrap();
    assert!(receipt.is_ok(), "retries outlast the outage: {receipt:?}");
    assert_eq!(cluster.fetch("t", 0, 0, 10).unwrap().len(), 1);
}

#[test]
fn at_least_once_across_consumer_crash() {
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    for i in 0..20 {
        cluster.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
    }
    let config = || ConsumerConfig {
        group: "g".into(),
        auto_commit_interval: None, // manual commit only
        max_poll_records: 10,
        ..Default::default()
    };
    // consumer 1 reads 10, commits, reads 10 more, crashes uncommitted
    {
        let mut c1 = Consumer::new(cluster.clone(), config());
        c1.subscribe(&["t"]).unwrap();
        assert_eq!(c1.poll().unwrap().len(), 10);
        c1.commit_sync().unwrap();
        assert_eq!(c1.poll().unwrap().len(), 10);
        // drop without commit: crash
    }
    // consumer 2 resumes from the committed offset: the 10 uncommitted
    // records are redelivered (at-least-once), none are lost
    let mut c2 = Consumer::new(cluster.clone(), config());
    c2.subscribe(&["t"]).unwrap();
    let redelivered = c2.poll().unwrap();
    assert_eq!(redelivered.len(), 10);
    assert_eq!(&redelivered[0].event.payload[..], b"10");
}

#[test]
fn acks_all_data_survives_leader_failure() {
    let cluster = Cluster::new(2);
    cluster
        .create_topic("t", TopicConfig::default().with_partitions(1).with_min_insync(2))
        .unwrap();
    for i in 0..10 {
        cluster
            .produce_batch("t", 0, RecordBatch::new(vec![ev(&format!("{i}"))]), AckLevel::All)
            .unwrap();
    }
    let leader = cluster.leader_broker("t", 0).unwrap();
    cluster.kill_broker(leader).unwrap();
    // the follower has everything; reads fail over transparently
    let records = cluster.fetch("t", 0, 0, 100).unwrap();
    assert_eq!(records.len(), 10, "acks=all data survives losing the leader");
    assert_ne!(cluster.leader_broker("t", 0).unwrap(), leader);
}

#[test]
fn acks_zero_can_lose_what_acks_all_cannot() {
    // the durability contrast the paper's acks experiments (#2 vs #4)
    // trade throughput for
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(1)).unwrap();
    cluster.kill_broker(BrokerId(0)).unwrap();
    cluster.kill_broker(BrokerId(1)).unwrap();
    // acks=0 swallows the loss silently
    let r = cluster
        .produce_batch("t", 0, RecordBatch::new(vec![ev("ghost")]), AckLevel::None)
        .unwrap();
    assert!(!r.persisted);
    // acks=all reports it
    assert!(cluster
        .produce_batch("t", 0, RecordBatch::new(vec![ev("x")]), AckLevel::All)
        .is_err());
    cluster.restart_broker(BrokerId(0)).unwrap();
    cluster.restart_broker(BrokerId(1)).unwrap();
    assert_eq!(cluster.fetch("t", 0, 0, 10).unwrap().len(), 0, "the acks=0 event is gone");
}

#[test]
fn consumer_group_rebalance_loses_nothing() {
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default().with_partitions(4)).unwrap();
    for i in 0..100 {
        cluster.produce("t", ev(&format!("{i}")), AckLevel::Leader).unwrap();
    }
    let config = |_m: &str| ConsumerConfig {
        group: "g".into(),
        auto_commit_interval: None,
        max_poll_records: 7,
        ..Default::default()
    };
    let mut c1 = Consumer::new(cluster.clone(), config("m1"));
    c1.subscribe(&["t"]).unwrap();
    // consume a bit solo, commit
    let mut seen: Vec<(u32, u64)> = Vec::new();
    for _ in 0..3 {
        for d in c1.poll().unwrap() {
            seen.push((d.partition, d.offset));
        }
        c1.commit_sync().unwrap();
    }
    // a second member joins mid-stream: rebalance
    let mut c2 = Consumer::new(cluster.clone(), config("m2"));
    c2.subscribe(&["t"]).unwrap();
    for _ in 0..60 {
        for d in c1.poll().unwrap() {
            seen.push((d.partition, d.offset));
        }
        let _ = c1.commit_sync();
        for d in c2.poll().unwrap() {
            seen.push((d.partition, d.offset));
        }
        let _ = c2.commit_sync();
        if seen.len() >= 100 {
            break;
        }
    }
    // every record was delivered at least once
    let unique: std::collections::HashSet<(u32, u64)> = seen.iter().copied().collect();
    assert_eq!(unique.len(), 100, "all 100 records delivered (saw {} total)", seen.len());
}

#[test]
fn retention_expired_consumer_skips_forward_not_crashes() {
    let mut config = TopicConfig::default().with_partitions(1);
    config.segment_bytes = 64;
    config.retention.retention_ms = Some(0);
    let cluster = Cluster::new(2);
    cluster.create_topic("t", config).unwrap();
    for i in 0..50 {
        cluster.produce("t", ev(&format!("event-{i:04}")), AckLevel::Leader).unwrap();
    }
    std::thread::sleep(Duration::from_millis(5));
    let removed = cluster.run_maintenance();
    assert!(removed > 0, "retention must have dropped old segments");
    let mut consumer = Consumer::new(
        cluster.clone(),
        ConsumerConfig { group: "late".into(), auto_commit_interval: None, ..Default::default() },
    );
    consumer.subscribe(&["t"]).unwrap();
    // the consumer starts at the (advanced) earliest offset and reads
    // the retained tail without error
    let batch = consumer.poll().unwrap();
    assert!(!batch.is_empty());
    assert!(batch[0].offset > 0, "history before offset {} was reclaimed", batch[0].offset);
}
