//! Shared foundation types for the Octopus event fabric.
//!
//! Every Octopus crate builds on the vocabulary defined here: [`Event`]
//! payloads and their delivered form [`DeliveredEvent`], stable
//! identifiers ([`Uid`]), wall/virtual [`Timestamp`]s, and the common
//! [`OctoError`] error type.
//!
//! The types are deliberately transport-agnostic: the same `Event` moves
//! through the real threaded broker (`octopus-broker`), the discrete-event
//! simulation of the cloud deployment (`octopus-fabric`), and the client
//! SDK (`octopus-sdk`).

pub mod codec;
pub mod error;
pub mod event;
pub mod id;
pub mod obs;
pub mod retry;
pub mod slo;
pub mod slow;
pub mod span;
pub mod time;

pub use codec::{compress, decompress, Codec};
pub use error::{OctoError, OctoResult};
pub use event::{DeliveredEvent, Event, EventBuilder, Header};
pub use id::Uid;
pub use obs::{
    labeled, parse_exposition, AtomicHistogram, ExpositionSample, Histogram, MetricsRegistry,
    RegistrySnapshot, Stage, StageMetrics, TraceContext, TRACE_HEADER,
};
pub use retry::{BreakerState, CircuitBreaker, CircuitBreakerConfig, Retrier, RetryPolicy};
pub use slo::{Alert, AlertState, SloMonitor, SloObjective, SloSpec};
pub use slow::{SlowRequest, SlowRequestRing};
pub use span::{
    export_chrome_trace_multi, span_id_for, write_chrome_trace_multi, ProcessSpans, Span,
    SpanSink,
};
pub use time::{Clock, ManualClock, Timestamp, WallClock};

/// A topic name. Topics are the unit of event organization, access
/// control, and retention in Octopus.
pub type TopicName = String;

/// A partition index within a topic.
pub type PartitionId = u32;

/// A record offset within a partition. Offsets are dense and strictly
/// increasing within a partition.
pub type Offset = u64;
