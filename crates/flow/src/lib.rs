//! A Parsl-like parallel workflow engine (§VI-E, Fig. 8).
//!
//! The paper extends Parsl — "a parallel scripting library for Python"
//! whose monitoring "capture\[s\] task execution and performance
//! information from remote workers and record\[s\] them in a centralized
//! database" — with an Octopus-based monitor that "publishes task and
//! resource information, as well as task failure events", batched and
//! asynchronous. This crate rebuilds both sides in Rust:
//!
//! - [`dag`]: task graphs with dependencies and data flow.
//! - [`htex`]: a high-throughput executor — an interchange queue feeding
//!   a pool of worker threads, dispatching tasks as their dependencies
//!   resolve.
//! - [`monitor`]: the monitoring seam — [`monitor::DbMonitor`] (the
//!   HTEX baseline: synchronous writes to a central, serialized store)
//!   and [`monitor::OctopusMonitor`] (async batched event publication).
//! - [`healing`]: the paper's named future work, implemented: retrying
//!   failed tasks and blacklisting under-performing workers.
//! - [`experiments`]: the Fig. 8 harness — 128 tasks, 1–64 workers,
//!   task durations {0, 10, 100 ms}, per-event monitoring overhead.

pub mod dag;
pub mod experiments;
pub mod healing;
pub mod htex;
pub mod monitor;

pub use dag::{TaskGraph, TaskId, TaskSpec};
pub use experiments::{fig8, Fig8Row};
pub use healing::{HealingPolicy, RetryOutcome};
pub use htex::{ExecutionReport, HtexConfig, HtexExecutor};
pub use monitor::{DbMonitor, Monitor, MonitorEvent, NullMonitor, OctopusMonitor};
