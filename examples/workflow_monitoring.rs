//! Dynamic workflow management (§VI-E): a Parsl-like workflow runs under
//! the Octopus monitor; a dashboard consumes the monitoring stream,
//! detects a straggler and a failure, and the healing policy recovers a
//! bad worker's tasks on re-run.
//!
//! Run with: `cargo run --example workflow_monitoring`

use std::sync::Arc;
use std::time::Duration;

use octopus::apps::WorkflowDashboard;
use octopus::flow::{HealingPolicy, HtexConfig, HtexExecutor, OctopusMonitor, TaskGraph};
use octopus::prelude::*;

fn build_graph() -> TaskGraph {
    let mut b = TaskGraph::builder();
    // a two-stage map/reduce-ish campaign: 16 simulations -> 1 summary
    let mut sims = Vec::new();
    for i in 0..16usize {
        let slow = i == 11; // one straggler
        sims.push(b.add(&format!("simulate-{i}"), &[], move |_| {
            std::thread::sleep(Duration::from_millis(if slow { 120 } else { 8 }));
            Ok(serde_json::json!(i * i))
        }));
    }
    b.add("summarize", &sims, |inputs| {
        let total: i64 = inputs.iter().map(|v| v.as_i64().unwrap_or(0)).sum();
        Ok(serde_json::json!({ "sum_of_squares": total }))
    });
    b.build().expect("valid graph")
}

fn main() -> OctoResult<()> {
    let cluster = Cluster::new(2);
    cluster.create_topic("parsl.monitoring", TopicConfig::default().with_partitions(4))?;

    // run the workflow with the Octopus monitor attached
    let monitor = Arc::new(OctopusMonitor::new(cluster.clone(), "parsl.monitoring"));
    let report = HtexExecutor::new(HtexConfig::new(8), monitor).run(&build_graph());
    println!(
        "workflow finished: {} ok, {} failed, makespan {:?}",
        report.outputs.len(),
        report.failures.len(),
        report.makespan
    );

    // fold the monitoring stream into the dashboard
    let mut dash = WorkflowDashboard::new(cluster.clone(), "parsl.monitoring")?;
    dash.sync()?;
    println!("monitoring events consumed: {}", dash.events_seen);
    let counts = dash.state_counts();
    println!("task states: {counts:?}");

    // straggler detection
    let stragglers = dash.stragglers(4.0);
    for s in &stragglers {
        println!("straggler detected: {} on worker {} ({})", s.task, s.worker, s.kind);
    }
    assert!(stragglers.iter().any(|s| s.task == "simulate-11"));

    // healing demo: a flaky worker botches everything it touches; the
    // §VI-E future-work policy (retry + blacklist) recovers the run
    let mut cfg = HtexConfig::new(4);
    cfg.healing = Some(HealingPolicy::aggressive());
    cfg.fault_injector = Some(Arc::new(|worker, _| worker == 1));
    let healed = HtexExecutor::new(cfg, Arc::new(octopus::flow::NullMonitor::new()))
        .run(&octopus::flow::dag::independent_tasks(32, |_| Ok(serde_json::json!(1))));
    println!(
        "\nhealing run: {} ok, {} failed, blacklisted workers {:?}, {} attempts",
        healed.outputs.len(),
        healed.failures.len(),
        healed.blacklisted_workers,
        healed.attempts
    );
    assert!(healed.failures.is_empty(), "healing recovers every task");
    assert_eq!(healed.blacklisted_workers, vec![1]);
    println!("\nworkflow_monitoring OK");
    Ok(())
}
