//! OAuth2-style bearer tokens.

use std::fmt;

use serde::{Deserialize, Serialize};

use octopus_types::{Timestamp, Uid};

/// A permission scope, e.g. `octopus:topic:read` or
/// `https://auth.octopus.example/scopes/ows/manage_topics`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Scope(pub String);

impl Scope {
    /// Construct from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        Scope(s.into())
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An opaque bearer access token, as carried in `Authorization` headers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessToken(pub String);

impl AccessToken {
    /// The opaque string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Result of token introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenStatus {
    /// Token is valid and active.
    Active,
    /// Token expired.
    Expired,
    /// Token was revoked.
    Revoked,
    /// Token is unknown to this authorization server.
    Unknown,
}

/// Server-side record of an issued token (what introspection returns).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenInfo {
    /// The authenticated identity this token represents.
    pub identity: Uid,
    /// Username form of the identity (e.g. `alice@uchicago.edu`).
    pub username: String,
    /// Client (application) the token was issued to.
    pub client: Uid,
    /// Scopes granted.
    pub scopes: Vec<Scope>,
    /// Expiry time.
    pub expires_at: Timestamp,
    /// Whether this token was obtained via a dependent-token grant
    /// (delegation) rather than a direct login.
    pub delegated: bool,
    /// Whether the token has been revoked.
    pub revoked: bool,
}

impl TokenInfo {
    /// Whether the token is active at `now`.
    pub fn status(&self, now: Timestamp) -> TokenStatus {
        if self.revoked {
            TokenStatus::Revoked
        } else if now >= self.expires_at {
            TokenStatus::Expired
        } else {
            TokenStatus::Active
        }
    }

    /// Whether the token carries `scope`.
    pub fn has_scope(&self, scope: &Scope) -> bool {
        self.scopes.contains(scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(expires_at: u64, revoked: bool) -> TokenInfo {
        TokenInfo {
            identity: Uid::from_parts(1, 1),
            username: "alice@uchicago.edu".into(),
            client: Uid::from_parts(2, 2),
            scopes: vec![Scope::new("octopus:ows:all")],
            expires_at: Timestamp::from_millis(expires_at),
            delegated: false,
            revoked,
        }
    }

    #[test]
    fn status_transitions() {
        let t = info(100, false);
        assert_eq!(t.status(Timestamp::from_millis(50)), TokenStatus::Active);
        assert_eq!(t.status(Timestamp::from_millis(100)), TokenStatus::Expired);
        assert_eq!(t.status(Timestamp::from_millis(200)), TokenStatus::Expired);
        let r = info(100, true);
        // revocation wins over expiry
        assert_eq!(r.status(Timestamp::from_millis(50)), TokenStatus::Revoked);
        assert_eq!(r.status(Timestamp::from_millis(200)), TokenStatus::Revoked);
    }

    #[test]
    fn scope_check() {
        let t = info(100, false);
        assert!(t.has_scope(&Scope::new("octopus:ows:all")));
        assert!(!t.has_scope(&Scope::new("octopus:ows:admin")));
    }

    #[test]
    fn scope_display() {
        assert_eq!(Scope::new("a:b").to_string(), "a:b");
    }
}
