//! Time handling shared by the real and simulated planes.
//!
//! Octopus runs the same logic against wall-clock time (threaded broker,
//! SDK) and virtual time (discrete-event simulation). Components that
//! need "now" take a [`Clock`] so tests and simulations can substitute a
//! [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// Milliseconds since the Unix epoch (or since simulation start, in the
/// simulated plane — callers only ever compare and subtract timestamps).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Current wall-clock time.
    pub fn now() -> Self {
        Timestamp(
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        )
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds value.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` as a `Duration`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_millis(self.0.saturating_sub(earlier.0))
    }

    /// This timestamp advanced by `d`.
    pub fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.as_millis() as u64)
    }
}

/// A source of "now", injectable for tests and simulation.
pub trait Clock: Send + Sync {
    /// The current time according to this clock.
    fn now(&self) -> Timestamp;
}

/// The real wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp::now()
    }
}

/// A manually-advanced clock for deterministic tests.
///
/// ```
/// use octopus_types::{Clock, ManualClock, Timestamp};
/// use std::time::Duration;
/// let clock = ManualClock::new(Timestamp::from_millis(1_000));
/// assert_eq!(clock.now().as_millis(), 1_000);
/// clock.advance(Duration::from_secs(2));
/// assert_eq!(clock.now().as_millis(), 3_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    millis: Arc<AtomicU64>,
}

impl ManualClock {
    /// Create a clock initially reading `start`.
    pub fn new(start: Timestamp) -> Self {
        ManualClock { millis: Arc::new(AtomicU64::new(start.0)) }
    }

    /// Advance by `d`.
    pub fn advance(&self, d: Duration) {
        self.millis.fetch_add(d.as_millis() as u64, Ordering::SeqCst);
    }

    /// Jump to an absolute time. Panics if `t` is in the past — clocks
    /// never run backwards.
    pub fn set(&self, t: Timestamp) {
        let prev = self.millis.swap(t.0, Ordering::SeqCst);
        assert!(prev <= t.0, "ManualClock::set would move time backwards");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.millis.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_enough() {
        let a = WallClock.now();
        let b = WallClock.now();
        assert!(b >= a);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t0 = Timestamp::from_millis(100);
        let t1 = t0.plus(Duration::from_millis(250));
        assert_eq!(t1.as_millis(), 350);
        assert_eq!(t1.since(t0), Duration::from_millis(250));
        // saturating: earlier.since(later) is zero, not underflow
        assert_eq!(t0.since(t1), Duration::ZERO);
    }

    #[test]
    fn manual_clock_shared_between_clones() {
        let c = ManualClock::new(Timestamp::from_millis(0));
        let c2 = c.clone();
        c.advance(Duration::from_millis(42));
        assert_eq!(c2.now().as_millis(), 42);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::new(Timestamp::from_millis(10));
        c.set(Timestamp::from_millis(5));
    }
}
