//! §IV-F: "API operations on the OWS side are programmed to be
//! idempotent such that the automatic retry of the function would not
//! cause the system to be in inconsistent states." Every mutating route
//! applied twice must equal applying it once.

use octopus::prelude::*;

fn deployment() -> (Octopus, octopus::deployment::UserSession) {
    let octo = Octopus::launch().unwrap();
    octo.register_user("alice@uchicago.edu", "pw").unwrap();
    let session = octo.login("alice@uchicago.edu", "pw").unwrap();
    (octo, session)
}

#[test]
fn put_topic_is_idempotent() {
    let (octo, session) = deployment();
    for _ in 0..3 {
        session
            .client()
            .register_topic("t", serde_json::json!({"partitions": 4}))
            .unwrap();
    }
    assert_eq!(octo.cluster().partition_count("t").unwrap(), 4);
    assert_eq!(session.client().list_topics().unwrap(), vec!["t"]);
}

#[test]
fn post_partitions_is_idempotent() {
    let (octo, session) = deployment();
    session.client().register_topic("t", serde_json::Value::Null).unwrap();
    for _ in 0..3 {
        session.client().set_partitions("t", 8).unwrap();
    }
    assert_eq!(octo.cluster().partition_count("t").unwrap(), 8);
}

#[test]
fn post_config_is_idempotent() {
    let (octo, session) = deployment();
    session.client().register_topic("t", serde_json::Value::Null).unwrap();
    for _ in 0..3 {
        session
            .client()
            .set_topic_config("t", serde_json::json!({"retention_ms": 1234}))
            .unwrap();
    }
    assert_eq!(
        octo.cluster().topic_config("t").unwrap().retention.retention_ms,
        Some(1234)
    );
}

#[test]
fn grant_and_revoke_are_idempotent() {
    let (octo, session) = deployment();
    octo.register_user("bob@uchicago.edu", "pw").unwrap();
    let bob = octo.login("bob@uchicago.edu", "pw").unwrap();
    session.client().register_topic("t", serde_json::Value::Null).unwrap();
    for _ in 0..3 {
        session.client().grant("t", bob.identity(), &["read"]).unwrap();
    }
    octo.acl()
        .check("t", bob.identity(), octopus::auth::Permission::Read)
        .unwrap();
    for _ in 0..3 {
        session.client().revoke("t", bob.identity(), &["read"]).unwrap();
    }
    assert!(octo
        .acl()
        .check("t", bob.identity(), octopus::auth::Permission::Read)
        .is_err());
}

#[test]
fn trigger_deploy_is_idempotent() {
    let (octo, session) = deployment();
    session.client().register_topic("t", serde_json::Value::Null).unwrap();
    octo.registry().register("noop", |_ctx, _b| Ok(()));
    let spec = serde_json::json!({"name": "tr", "topic": "t", "function": "noop"});
    for _ in 0..3 {
        session.client().deploy_trigger(spec.clone()).unwrap();
    }
    let triggers = session.client().list_triggers().unwrap();
    assert_eq!(triggers.as_array().unwrap().len(), 1);
}

#[test]
fn create_key_mints_fresh_keys_per_call() {
    // create_key is the one route that intentionally is NOT idempotent:
    // each call mints a new credential (key rotation); old keys stay
    // valid until revoked.
    let (octo, session) = deployment();
    let (k1, s1) = session.client().create_key().unwrap();
    let (k2, s2) = session.client().create_key().unwrap();
    assert_ne!(k1, k2);
    assert_ne!(s1, s2);
    assert_eq!(octo.iam().keys_of(session.identity()).len(), 2);
}

#[test]
fn conflicting_retries_from_another_user_still_conflict() {
    let (octo, session) = deployment();
    octo.register_user("bob@uchicago.edu", "pw").unwrap();
    let bob = octo.login("bob@uchicago.edu", "pw").unwrap();
    session.client().register_topic("t", serde_json::Value::Null).unwrap();
    // idempotency never lets a different identity steal a topic name
    for _ in 0..3 {
        assert!(matches!(
            bob.client().register_topic("t", serde_json::Value::Null),
            Err(OctoError::Conflict(_))
        ));
    }
}
