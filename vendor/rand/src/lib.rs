//! Hermetic stand-in for the `rand` crate.
//!
//! Provides [`RngCore`], [`SeedableRng`], the generic [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`rngs::StdRng`] / [`rngs::SmallRng`] backed by xoshiro256++
//! seeded via splitmix64. Statistical quality is far beyond what the
//! workspace's simulations need; cryptographic security is explicitly
//! NOT provided.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from ambient entropy (wall clock + a process counter).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let salt = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ salt.rotate_left(32) ^ 0xA076_1D64_78BD_642F)
    }
}

/// Types sampleable uniformly over their "natural" domain, mirroring
/// rand's `Standard` distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, span)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw unbiased.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for all
/// [`RngCore`] types.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ state, seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Xoshiro256 { s }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for rand's `SmallRng` (same engine, distinct stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed ^ 0x5851_F42D_4C95_7F2D))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} suspiciously far from 0.5");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
