//! Regenerates the **§V-D trigger throughput** figures: events/second a
//! trigger's consumers sustain by partition count and event size.
//! Paper: 1 partition → 22K / 7K / 2K ev/s for 32B / 1KB / 4KB;
//! 8 partitions → ~147K / 39K / 12K ("roughly six times faster").
//!
//! `cargo run --release -p octopus-bench --bin trigger_throughput`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use octopus_bench::{figure_header, human_rate, stage_table, write_result};
use octopus_broker::{AckLevel, Cluster, TopicConfig};
use octopus_fabric::experiments::TriggerModel;
use octopus_sdk::{Producer, ProducerConfig};
use octopus_trigger::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
use octopus_types::{Event, Uid};

const PAPER_1P: [(usize, f64); 3] = [(32, 22_000.0), (1024, 7_000.0), (4096, 2_000.0)];
const PAPER_8P: [(usize, f64); 3] = [(32, 147_000.0), (1024, 39_000.0), (4096, 12_000.0)];

/// A live (threaded, non-simulated) trigger pass over an instrumented
/// cluster: SDK producer (trace headers stamped) → broker → trigger
/// runtime, so produce→ack, append, deliver, and trigger-run all land
/// in the registry. Returns the per-stage breakdown.
fn live_stage_breakdown() -> String {
    const EVENTS: usize = 2_000;
    let cluster = Cluster::new(2);
    cluster
        .create_topic("tt-live", TopicConfig::default().with_partitions(8))
        .expect("live topic");
    let runtime = TriggerRuntime::new(cluster.clone());
    let processed = Arc::new(AtomicU64::new(0));
    let p2 = processed.clone();
    runtime
        .deploy(TriggerSpec {
            name: "tt-live".into(),
            topic: "tt-live".into(),
            pattern: None,
            config: FunctionConfig::default(),
            function: Arc::new(move |_ctx, batch| {
                p2.fetch_add(batch.len() as u64, Ordering::Relaxed);
                Ok(())
            }),
            acting_as: Uid(0),
            autoscaler: AutoscalerConfig::default(),
        })
        .expect("deploy");
    // zero linger: send_sync flushes immediately instead of paying the
    // 5ms batching delay per call
    let producer = Producer::new(
        cluster.clone(),
        ProducerConfig {
            acks: AckLevel::Leader,
            linger: std::time::Duration::ZERO,
            ..ProducerConfig::default()
        },
    );
    let payload = vec![0x42u8; 1024];
    for _ in 0..EVENTS {
        producer.send_sync("tt-live", Event::from_bytes(payload.clone())).expect("send");
    }
    producer.close();
    while processed.load(Ordering::Relaxed) < EVENTS as u64 {
        runtime.poll_once("tt-live").expect("poll");
    }
    stage_table(&cluster.metrics().snapshot())
}

fn main() {
    figure_header(
        "§V-D — Trigger throughput vs partitions and event size",
        "Lambda-style pollers, one per partition, with coordination overhead.",
    );
    let m = TriggerModel::default();
    println!("{:>6} {:>12} {:>10} {:>12} {:>10} {:>8}", "size", "1-part", "paper", "8-part", "paper", "ratio");
    for (i, (size, paper1)) in PAPER_1P.iter().enumerate() {
        let t1 = m.throughput(1, *size);
        let t8 = m.throughput(8, *size);
        println!(
            "{:>5}B {:>12} {:>10} {:>12} {:>10} {:>7.1}x",
            size,
            human_rate(t1),
            human_rate(*paper1),
            human_rate(t8),
            human_rate(PAPER_8P[i].1),
            t8 / t1
        );
    }
    println!("\npartition sweep at 1KB:");
    for p in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let t = m.throughput(p, 1024);
        println!("  {:>3} partitions: {:>10}", p, human_rate(t));
    }
    println!("\n(the 8-partition/1-partition ratio lands at ~6x, matching the paper's 'roughly six times faster')");

    // Live instrumented pass: the same pipeline, threaded and traced.
    println!("\nper-stage breakdown (live cluster, 1KB events, 8 partitions):");
    let table = live_stage_breakdown();
    print!("{table}");
    match write_result("trigger_throughput_stages.txt", &table) {
        Ok(path) => println!("written to {}", path.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
