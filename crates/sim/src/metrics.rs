//! Measurement primitives: counters, HDR-style histograms, time series.
//!
//! The paper reports median and 99th-percentile producer latencies
//! (Table III, Fig. 3) and time series of trigger concurrency (Fig. 4)
//! and topic backlogs (Fig. 7). [`Histogram`] is a log-linear bucketed
//! histogram (2 decimal digits of relative precision) like HdrHistogram;
//! [`TimeSeries`] records (time, value) pairs for figure regeneration.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

// The log-linear histogram was promoted to `octopus_types::obs` so the
// live threaded stack (broker/SDK/trigger) shares one verified
// implementation with the DES; re-export it so sim callers are
// unchanged. Its exhaustive edge-case tests live next to the promoted
// code.
pub use octopus_types::obs::Histogram;

/// A recorded (time, value) series for regenerating the paper's figures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point; times must be non-decreasing.
    pub fn record(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries must be recorded in time order");
        }
        self.points.push((t, v));
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest value in the series.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Rebucket into fixed windows of `window_secs`, averaging values in
    /// each window — handy for printing figure-sized summaries.
    pub fn downsample(&self, window_secs: f64) -> Vec<(f64, f64)> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut win = 0usize;
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.points {
            let w = (t.as_secs_f64() / window_secs) as usize;
            if w != win && n > 0 {
                out.push(((win as f64 + 0.5) * window_secs, sum / n as f64));
                sum = 0.0;
                n = 0;
            }
            win = w;
            sum += v;
            n += 1;
        }
        if n > 0 {
            out.push(((win as f64 + 0.5) * window_secs, sum / n as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram's own edge-case suite moved with it to
    // `octopus_types::obs`; this smoke test pins the re-export.
    #[test]
    fn histogram_reexport_still_works() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.median(), 3);
    }

    #[test]
    fn timeseries_downsample() {
        let mut ts = TimeSeries::new();
        for i in 0..100u64 {
            ts.record(SimTime(i * 100_000_000), i as f64); // every 0.1s
        }
        let ds = ts.downsample(1.0);
        assert_eq!(ds.len(), 10);
        // first window averages 0..9 = 4.5
        assert!((ds[0].1 - 4.5).abs() < 1e-9);
        assert_eq!(ts.max_value(), 99.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn timeseries_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime(10), 1.0);
        ts.record(SimTime(5), 2.0);
    }
}
