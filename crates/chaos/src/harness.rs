//! The chaos harness: a real deployment, live traffic, injected
//! faults, and invariant oracles over the wreckage.
//!
//! [`ChaosHarness::run`] builds a threaded broker cluster + zoo
//! ensemble + trigger runtime, starts producer / consumer / trigger
//! traffic, executes the configured [`FaultPlan`] against the live
//! deployment, then heals everything, drains the pipelines, and
//! evaluates four oracles:
//!
//! 1. **No committed-record loss** — every event acknowledged at
//!    `acks=all` is still readable from the surviving log.
//! 2. **At-least-once delivery** — every acknowledged event reached
//!    the consumer (duplicates allowed, loss not), and the consumer's
//!    committed offset never moved backwards.
//! 3. **ZAB committed-prefix agreement** — zoo replicas' committed
//!    transaction logs are prefixes of one another.
//! 4. **ISR re-convergence** — after healing, the in-sync replica set
//!    is back to the full replication factor.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus_broker::{
    AckLevel, AutoBalancer, BalancerConfig, BrokerId, Cluster, FlushPolicy, HealthReport,
    StorageSpec, TopicConfig,
};
use octopus_sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
use octopus_trigger::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
use octopus_types::{Event, RegistrySnapshot, Uid};
use octopus_zoo::ZooService;
use parking_lot::Mutex;

use crate::exec::{execute_plan, ChaosTarget, FaultTrace};
use crate::plan::FaultPlan;

/// Deployment shape and traffic pacing for a harness run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Broker count.
    pub brokers: usize,
    /// Zoo ensemble size.
    pub zoo_replicas: usize,
    /// Topic carrying the chaos traffic (replicated).
    pub topic: String,
    /// Partition count of the chaos topic.
    pub partitions: u32,
    /// Gap between produced events.
    pub pace: Duration,
    /// How long to keep draining after the plan finishes before
    /// declaring undelivered records lost.
    pub drain_timeout: Duration,
    /// When set, the cluster persists its logs here and power-loss
    /// faults tear real bytes off real files. `None` = volatile
    /// deployment (power loss degrades to a plain crash).
    pub data_dir: Option<PathBuf>,
    /// Flush policy for durable deployments. With
    /// [`FlushPolicy::PerBatch`] the no-committed-loss oracle must hold
    /// even under power loss; weaker policies trade that away.
    pub flush_policy: FlushPolicy,
    /// Exactly-once mode: the producer runs idempotent (stamped
    /// sequences, broker dedup), the consumer runs read-committed, and
    /// a fifth oracle asserts `duplicates() == 0` — "no duplicates, no
    /// loss", not just at-least-once.
    pub strict_eos: bool,
    /// Elastic mode: when set, a mover thread grows the cluster to
    /// this many brokers mid-traffic and drives the auto-balancer in a
    /// loop while the fault plan executes — online membership and
    /// throttled partition reassignment under chaos.
    pub scale_to: Option<usize>,
    /// Catch-up bandwidth cap for elastic-mode moves (`u64::MAX` =
    /// unthrottled).
    pub move_throttle_bytes_per_sec: u64,
    /// Storage-engine shape for the chaos topic: segment roll size,
    /// sparse-index interval, per-batch compression, and cold-tier
    /// threshold. Defaults keep the seed behaviour (large segments,
    /// no compression, no tiering); drills override this to run the
    /// oracles against the full storage stack.
    pub storage: StorageSpec,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            brokers: 3,
            zoo_replicas: 3,
            topic: "chaos-events".to_string(),
            partitions: 1,
            pace: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(5),
            data_dir: None,
            flush_policy: FlushPolicy::PerBatch,
            strict_eos: false,
            scale_to: None,
            move_throttle_bytes_per_sec: u64::MAX,
            storage: StorageSpec::default(),
        }
    }
}

/// Drives one fault plan against one live deployment.
pub struct ChaosHarness {
    plan: FaultPlan,
    config: ChaosConfig,
}

/// Everything a run observed, plus the oracle verdicts.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The executed fault trace (deterministic signature inside).
    pub trace: FaultTrace,
    /// Sequence numbers acknowledged at `acks=all`, in send order.
    pub acked: Vec<u64>,
    /// Sequence numbers the consumer saw, in delivery order
    /// (duplicates included).
    pub delivered: Vec<u64>,
    /// Events the trigger function processed.
    pub trigger_events: u64,
    /// Smallest in-sync replica count across the chaos partitions.
    pub final_isr: usize,
    /// Replication factor the topic was created with.
    pub replication_factor: usize,
    /// Partition moves the elastic mover committed (0 when
    /// `scale_to` was not set).
    pub moved_partitions: u64,
    /// Broker slots at the end of the run (grown in elastic mode).
    pub final_brokers: usize,
    /// Last committed zxid per zoo replica (from the agreement check).
    pub zoo_commits: Vec<u64>,
    /// Oracle violations; empty means the run passed.
    pub violations: Vec<String>,
    /// End-of-run snapshot of the cluster's metrics registry, annotated
    /// with the executed fault windows so per-stage latency tails can
    /// be read next to what was injected when.
    pub metrics: RegistrySnapshot,
    /// End-of-run cluster health rollup, including the status timeline
    /// accumulated across the fault windows (kill → Red/Yellow,
    /// heal → Green), so a report shows *when* the cluster degraded,
    /// not just that it recovered.
    pub health: HealthReport,
    /// Storage-engine recovery totals for the run, read from the shared
    /// registry (all zero for volatile deployments).
    pub recovery: RecoveryTotals,
}

/// What the durable storage engine did during a run, pulled from the
/// `octopus_store_*` counters of the cluster's metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTotals {
    /// Records read back intact during recovery scans.
    pub records_recovered: u64,
    /// Records dropped as part of torn/corrupt tail truncation.
    pub records_truncated: u64,
    /// Bytes truncated off segment files during recovery.
    pub bytes_truncated: u64,
    /// fsync batches issued by the flush policy.
    pub flushes: u64,
    /// Committed-offset checkpoint files written.
    pub checkpoints_written: u64,
}

impl RecoveryTotals {
    /// Read the totals out of a metrics snapshot.
    fn from_snapshot(snap: &octopus_types::RegistrySnapshot) -> Self {
        let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        RecoveryTotals {
            records_recovered: c("octopus_store_records_recovered_total"),
            records_truncated: c("octopus_store_records_truncated_total"),
            bytes_truncated: c("octopus_store_bytes_truncated_total"),
            flushes: c("octopus_store_flushes_total"),
            checkpoints_written: c("octopus_store_checkpoints_written_total"),
        }
    }
}

impl ChaosReport {
    /// Panic with every violation if any oracle failed.
    pub fn assert_invariants(&self) {
        assert!(
            self.violations.is_empty(),
            "chaos invariants violated (seed-reproducible):\n  {}",
            self.violations.join("\n  ")
        );
    }

    /// Distinct sequence numbers delivered.
    pub fn delivered_unique(&self) -> usize {
        let mut v = self.delivered.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Redundant deliveries (the at-least-once surplus).
    pub fn duplicates(&self) -> usize {
        self.delivered.len() - self.delivered_unique()
    }
}

fn seq_event(seq: u64) -> Event {
    Event::from_bytes(seq.to_le_bytes().to_vec())
}

fn event_seq(payload: &[u8]) -> Option<u64> {
    payload.get(..8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

impl ChaosHarness {
    /// A harness for `plan` with the default 3-broker / 3-replica
    /// deployment.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosHarness { plan, config: ChaosConfig::default() }
    }

    /// Replace the deployment shape / pacing.
    pub fn with_config(mut self, config: ChaosConfig) -> Self {
        self.config = config;
        self
    }

    /// Build the deployment, run traffic + chaos, heal, drain, judge.
    pub fn run(&self) -> ChaosReport {
        let cfg = &self.config;
        let zoo = ZooService::new(cfg.zoo_replicas);
        let mut builder = Cluster::builder(cfg.brokers).zoo(zoo.clone());
        if let Some(dir) = &cfg.data_dir {
            builder = builder.data_dir(dir.clone()).flush_policy(cfg.flush_policy);
        }
        let cluster = builder.build();
        let rf = cfg.brokers.min(3) as u32;
        let min_isr = rf.min(2);
        cluster
            .create_topic(
                &cfg.topic,
                TopicConfig {
                    segment_bytes: cfg.storage.segment_bytes,
                    index_interval_bytes: cfg.storage.index_interval_bytes,
                    compression: cfg.storage.compression,
                    cold_after_bytes: cfg.storage.cold_after_bytes,
                    ..TopicConfig::default()
                }
                .with_partitions(cfg.partitions.max(1))
                .with_replication(rf)
                .with_min_insync(min_isr),
            )
            .expect("chaos topic");

        // Trigger counting every event it is invoked with.
        let runtime = TriggerRuntime::new(cluster.clone());
        let trigger_events = Arc::new(AtomicU64::new(0));
        let te = trigger_events.clone();
        runtime
            .deploy(TriggerSpec {
                name: "chaos-counter".to_string(),
                topic: cfg.topic.clone(),
                pattern: None,
                config: FunctionConfig { retries: 1, ..FunctionConfig::default() },
                function: Arc::new(move |_ctx, batch| {
                    te.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    Ok(())
                }),
                acting_as: Uid(0),
                autoscaler: AutoscalerConfig::default(),
            })
            .expect("deploy trigger");

        let stop_produce = Arc::new(AtomicBool::new(false));
        let stop_consume = Arc::new(AtomicBool::new(false));
        let acked = Arc::new(Mutex::new(Vec::<u64>::new()));
        let delivered = Arc::new(Mutex::new(Vec::<u64>::new()));
        let commit_violations = Arc::new(Mutex::new(Vec::<String>::new()));

        // Producer: acks=all, SDK retry/breaker stack in the path.
        let producer_thread = {
            let cluster = cluster.clone();
            let topic = cfg.topic.clone();
            let pace = cfg.pace;
            let stop = stop_produce.clone();
            let acked = acked.clone();
            let strict_eos = cfg.strict_eos;
            std::thread::spawn(move || {
                let producer = Producer::new(
                    cluster,
                    ProducerConfig {
                        acks: AckLevel::All,
                        retries: 30,
                        retry_backoff: Duration::from_millis(2),
                        idempotent: strict_eos,
                        client_id: strict_eos.then(|| "chaos-eos-producer".to_string()),
                        ..ProducerConfig::default()
                    },
                );
                let mut seq = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if let Ok(receipt) = producer.send_sync(&topic, seq_event(seq)) {
                        if receipt.persisted {
                            acked.lock().push(seq);
                        }
                    }
                    seq += 1;
                    std::thread::sleep(pace);
                }
                producer.close();
            })
        };

        // Consumer: records deliveries, watches committed-offset
        // monotonicity.
        let group = "chaos-observer".to_string();
        let consumer_thread = {
            let cluster = cluster.clone();
            let topic = cfg.topic.clone();
            let group = group.clone();
            let stop = stop_consume.clone();
            let delivered = delivered.clone();
            let violations = commit_violations.clone();
            let strict_eos = cfg.strict_eos;
            std::thread::spawn(move || {
                let mut consumer = Consumer::new(
                    cluster.clone(),
                    ConsumerConfig {
                        group: group.clone(),
                        auto_commit_interval: Some(Duration::from_millis(10)),
                        max_poll_records: 64,
                        read_committed: strict_eos,
                        ..ConsumerConfig::default()
                    },
                );
                consumer.subscribe(&[&topic]).expect("subscribe");
                let mut high_commit = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if let Ok(batch) = consumer.poll() {
                        let mut d = delivered.lock();
                        for ev in &batch {
                            if let Some(seq) = event_seq(&ev.event.payload) {
                                d.push(seq);
                            }
                        }
                    }
                    if let Some(c) = cluster.coordinator().committed(&group, &topic, 0) {
                        if c < high_commit {
                            violations.lock().push(format!(
                                "committed offset moved backwards: {high_commit} -> {c}"
                            ));
                        }
                        high_commit = high_commit.max(c);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                let _ = consumer.commit_sync();
                consumer.close();
            })
        };

        // Trigger driver: single-threaded poll loop (workers stay off
        // so the run stays deterministic in thread count).
        let stop_trigger = Arc::new(AtomicBool::new(false));
        let trigger_thread = {
            let runtime = runtime.clone();
            let stop = stop_trigger.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let _ = runtime.poll_once("chaos-counter");
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        // Elastic mover: grow the fleet to `scale_to` brokers and keep
        // driving the auto-balancer while the fault plan executes —
        // the balancer's moves race broker kills and power loss, which
        // is exactly the point. Individual rounds may fail mid-fault;
        // the tracker and epoch fencing guarantee aborted movers never
        // commit, and the next round retries.
        let stop_mover = Arc::new(AtomicBool::new(false));
        let moved = Arc::new(AtomicU64::new(0));
        let mover_thread = cfg.scale_to.map(|target_brokers| {
            let cluster = cluster.clone();
            let stop = stop_mover.clone();
            let moved = moved.clone();
            let throttle = cfg.move_throttle_bytes_per_sec;
            std::thread::spawn(move || {
                while cluster.broker_count() < target_brokers {
                    let _ = cluster.add_broker();
                }
                let balancer = AutoBalancer::new(
                    cluster,
                    BalancerConfig {
                        throttle_bytes_per_sec: throttle,
                        max_concurrent_moves: 2,
                        replica_skew_tolerance: 1,
                        leader_skew_tolerance: 1,
                        ..BalancerConfig::default()
                    },
                );
                while !stop.load(Ordering::Acquire) {
                    let report = balancer.run_once();
                    moved.fetch_add(report.applied as u64, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        });

        // Let traffic establish itself, then unleash the plan.
        std::thread::sleep(Duration::from_millis(20));
        let target =
            ChaosTarget { cluster: cluster.clone(), zoo: Some(zoo.clone()), topic: cfg.topic.clone() };
        let trace = execute_plan(&target, &self.plan);

        // Heal: clear residual faults, revive every broker (including
        // any the elastic mover added), resync.
        cluster.fault_injector().clear_all();
        for i in 0..cluster.broker_count() as u32 {
            let _ = cluster.restart_broker(BrokerId(i)); // no-op if alive
            let _ = cluster.resync_broker(BrokerId(i));
        }
        for r in 0..zoo.replica_count() {
            let _ = zoo.restart_replica(r);
        }

        // Give the mover one post-heal window to finish or retry any
        // move the faults interrupted, then stop it. `run_once` blocks
        // until its moves commit or abort, so joining leaves no mover
        // mid-flight.
        if let Some(t) = mover_thread {
            std::thread::sleep(Duration::from_millis(50));
            stop_mover.store(true, Ordering::Release);
            t.join().expect("mover thread");
        }

        // Stop producing; the acked set is now frozen.
        stop_produce.store(true, Ordering::Release);
        producer_thread.join().expect("producer thread");
        let acked: Vec<u64> = acked.lock().clone();

        // Drain: consumer and trigger keep running until every acked
        // record is delivered and the trigger group has no lag (or the
        // drain window closes).
        let deadline = Instant::now() + cfg.drain_timeout;
        loop {
            let seen: std::collections::HashSet<u64> =
                delivered.lock().iter().copied().collect();
            let consumer_done = acked.iter().all(|s| seen.contains(s));
            let trigger_done = cluster
                .group_lag("__trigger-chaos-counter", &cfg.topic)
                .map(|lag| lag == 0)
                .unwrap_or(false);
            if (consumer_done && trigger_done) || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        stop_consume.store(true, Ordering::Release);
        stop_trigger.store(true, Ordering::Release);
        consumer_thread.join().expect("consumer thread");
        trigger_thread.join().expect("trigger thread");

        // --- Oracles ---
        let mut violations = commit_violations.lock().clone();
        let delivered: Vec<u64> = delivered.lock().clone();

        // 1. No committed-record loss: everything acked at acks=all is
        //    still in the log (scanned across every partition).
        let partitions = cluster.partition_count(&cfg.topic).unwrap_or(1).max(1);
        let mut surviving = std::collections::HashSet::new();
        for p in 0..partitions {
            let mut offset = cluster.earliest_offset(&cfg.topic, p).unwrap_or(0);
            while let Ok(records) = cluster.fetch(&cfg.topic, p, offset, 512) {
                if records.is_empty() {
                    break;
                }
                offset = records.last().expect("non-empty").offset + 1;
                for r in &records {
                    if let Some(seq) = event_seq(&r.value) {
                        surviving.insert(seq);
                    }
                }
            }
        }
        for seq in &acked {
            if !surviving.contains(seq) {
                violations.push(format!("acked record {seq} lost from the log (acks=all)"));
            }
        }

        // 2. At-least-once delivery to the consumer.
        let seen: std::collections::HashSet<u64> = delivered.iter().copied().collect();
        for seq in &acked {
            if !seen.contains(seq) {
                violations.push(format!("acked record {seq} never delivered to the consumer"));
            }
        }

        // 2b. Exactly-once (strict mode only): at-least-once tightens
        //     to exactly-once — zero duplicate deliveries on top of
        //     zero acked loss.
        if cfg.strict_eos {
            let unique: std::collections::HashSet<u64> = delivered.iter().copied().collect();
            let dups = delivered.len() - unique.len();
            if dups > 0 {
                violations.push(format!(
                    "exactly-once violated: {dups} duplicate deliveries out of {}",
                    delivered.len()
                ));
            }
        }

        // 3. ZAB committed-prefix agreement across zoo replicas.
        let zoo_commits = match zoo.committed_prefix_agreement() {
            Ok(commits) => commits,
            Err(e) => {
                violations.push(format!("zoo prefix agreement: {e}"));
                Vec::new()
            }
        };

        // 4. ISR re-convergence after healing: every partition must be
        //    back at full replication factor, even the ones the elastic
        //    mover relocated mid-fault.
        let mut final_isr = usize::MAX;
        for p in 0..partitions {
            let isr = cluster.isr_of(&cfg.topic, p).map(|i| i.len()).unwrap_or(0);
            if isr != rf as usize {
                violations.push(format!(
                    "ISR did not re-converge on partition {p}: {isr}/{rf} replicas in sync"
                ));
            }
            final_isr = final_isr.min(isr);
        }
        if final_isr == usize::MAX {
            final_isr = 0;
        }

        // Freeze the registry and stamp the fault windows onto it.
        let mut metrics = cluster.metrics().snapshot();
        for e in &trace.entries {
            metrics.annotate(format!("fault at {:?}: {:?} ({})", e.at, e.kind, e.outcome));
        }

        // Final health probe; the report carries the whole timeline.
        let health = cluster.health_report();
        let recovery = RecoveryTotals::from_snapshot(&metrics);

        ChaosReport {
            trace,
            acked,
            delivered,
            trigger_events: trigger_events.load(Ordering::Relaxed),
            final_isr,
            replication_factor: rf as usize,
            moved_partitions: moved.load(Ordering::Relaxed),
            final_brokers: cluster.broker_count(),
            zoo_commits,
            violations,
            metrics,
            health,
            recovery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    #[test]
    fn quiet_run_passes_all_oracles() {
        // No faults at all: the harness itself must not manufacture
        // violations.
        let report = ChaosHarness::new(FaultPlan::new(0))
            .with_config(ChaosConfig {
                drain_timeout: Duration::from_secs(10),
                ..ChaosConfig::default()
            })
            .run();
        report.assert_invariants();
        assert!(!report.acked.is_empty(), "producer made progress");
        assert!(report.delivered_unique() >= report.acked.len());
        // the live path populated the per-stage histograms
        for stage in ["produce_ack", "append", "deliver", "trigger_run"] {
            let name = format!("octopus_stage_{stage}_ns");
            assert!(
                report.metrics.histograms.get(&name).map(|h| h.count() > 0).unwrap_or(false),
                "stage histogram {name} empty after a live run"
            );
        }
    }

    #[test]
    fn fault_windows_annotate_the_snapshot() {
        let plan = FaultPlan::new(7)
            .at(10, FaultKind::BrokerCrash { broker: 1 })
            .at(60, FaultKind::BrokerRestart { broker: 1 });
        let report = ChaosHarness::new(plan).run();
        assert_eq!(report.metrics.annotations.len(), 2);
        assert!(report.metrics.annotations[0].contains("BrokerCrash"));
    }

    #[test]
    fn durable_power_loss_keeps_committed_records() {
        let tmp = octopus_broker::TempDir::new("octopus-data-chaos");
        let plan = FaultPlan::new(11)
            .at(30, FaultKind::PowerLoss { broker: 1, entropy: 0xDEAD_BEEF })
            .at(90, FaultKind::BrokerRestart { broker: 1 });
        let report = ChaosHarness::new(plan)
            .with_config(ChaosConfig {
                data_dir: Some(tmp.path().to_path_buf()),
                flush_policy: FlushPolicy::PerBatch,
                drain_timeout: Duration::from_secs(10),
                ..ChaosConfig::default()
            })
            .run();
        report.assert_invariants();
        assert!(!report.acked.is_empty(), "producer made progress");
        assert!(report.recovery.flushes > 0, "PerBatch policy fsynced");
        assert!(
            report.trace.entries[0].outcome.contains("power loss"),
            "{}",
            report.trace.entries[0].outcome
        );
    }

    #[test]
    fn full_storage_stack_survives_power_loss() {
        // The whole PR-10 storage stack at once: tiny segments so the
        // run rolls constantly, a dense sparse index, per-batch LZ4
        // compression, and a cold tier that offloads every sealed
        // segment — then power loss mid-traffic. The no-committed-loss
        // and strict-EOS oracles must hold over compressed frames,
        // rebuilt indexes, and hydrated cold segments alike.
        let tmp = octopus_broker::TempDir::new("octopus-data-tiered");
        let plan = FaultPlan::new(51)
            .at(25, FaultKind::PowerLoss { broker: 1, entropy: 0x5EED_CAFE })
            .at(80, FaultKind::BrokerRestart { broker: 1 });
        let report = ChaosHarness::new(plan)
            .with_config(ChaosConfig {
                data_dir: Some(tmp.path().to_path_buf()),
                flush_policy: FlushPolicy::PerBatch,
                strict_eos: true,
                drain_timeout: Duration::from_secs(10),
                storage: StorageSpec {
                    segment_bytes: 4 * 1024,
                    index_interval_bytes: 512,
                    compression: octopus_broker::Compression::Lz4,
                    cold_after_bytes: Some(0),
                },
                ..ChaosConfig::default()
            })
            .run();
        report.assert_invariants();
        assert_eq!(report.duplicates(), 0, "strict mode saw duplicate deliveries");
        assert!(!report.acked.is_empty(), "producer made progress");
        assert!(report.recovery.flushes > 0, "PerBatch policy fsynced");
    }

    #[test]
    fn strict_eos_survives_ambiguous_acks() {
        // Ack drops force the producer into retries of durably-applied
        // appends — the canonical duplicate generator. Strict mode must
        // still close with zero duplicates and zero acked loss.
        let plan = FaultPlan::new(21)
            .at(10, FaultKind::AmbiguousAck { broker: 0, count: 2 })
            .at(40, FaultKind::AmbiguousAck { broker: 1, count: 1 })
            .at(70, FaultKind::AmbiguousAck { broker: 2, count: 2 });
        let report = ChaosHarness::new(plan)
            .with_config(ChaosConfig {
                strict_eos: true,
                drain_timeout: Duration::from_secs(10),
                ..ChaosConfig::default()
            })
            .run();
        report.assert_invariants();
        assert_eq!(report.duplicates(), 0, "strict mode saw duplicate deliveries");
        assert!(!report.acked.is_empty(), "producer made progress");
    }

    #[test]
    fn scale_out_survives_broker_kill_during_moves() {
        // Elastic mode: grow 3 -> 5 brokers mid-traffic while a broker
        // dies and comes back. The balancer's moves race the crash; the
        // strict-EOS oracle must stay green and every partition must
        // end at full rf on the reshaped fleet.
        let plan = FaultPlan::new(31)
            .at(15, FaultKind::BrokerCrash { broker: 1 })
            .at(70, FaultKind::BrokerRestart { broker: 1 });
        let report = ChaosHarness::new(plan)
            .with_config(ChaosConfig {
                partitions: 4,
                strict_eos: true,
                scale_to: Some(5),
                drain_timeout: Duration::from_secs(15),
                ..ChaosConfig::default()
            })
            .run();
        report.assert_invariants();
        assert_eq!(report.duplicates(), 0, "strict mode saw duplicate deliveries");
        assert!(!report.acked.is_empty(), "producer made progress");
        assert_eq!(report.final_brokers, 5, "fleet grew to the elastic target");
        assert!(
            report.moved_partitions >= 1,
            "balancer committed no moves onto the new brokers"
        );
    }

    #[test]
    fn power_loss_during_throttled_catch_up_keeps_records() {
        // Durable deployment, bandwidth-capped moves, and a power loss
        // landing while learners are catching up. Epoch fencing must
        // keep any torn mover from committing a stale assignment, and
        // acked records must survive the torn tail.
        let tmp = octopus_broker::TempDir::new("octopus-data-elastic");
        let plan = FaultPlan::new(41)
            .at(25, FaultKind::PowerLoss { broker: 2, entropy: 0x00C0_FFEE })
            .at(80, FaultKind::BrokerRestart { broker: 2 });
        let report = ChaosHarness::new(plan)
            .with_config(ChaosConfig {
                partitions: 2,
                data_dir: Some(tmp.path().to_path_buf()),
                flush_policy: FlushPolicy::PerBatch,
                scale_to: Some(4),
                move_throttle_bytes_per_sec: 64 * 1024,
                drain_timeout: Duration::from_secs(15),
                ..ChaosConfig::default()
            })
            .run();
        report.assert_invariants();
        assert!(!report.acked.is_empty(), "producer made progress");
        assert_eq!(report.final_brokers, 4, "fleet grew to the elastic target");
        assert!(report.recovery.flushes > 0, "PerBatch policy fsynced");
    }

    #[test]
    fn single_crash_recovers() {
        let plan = FaultPlan::new(1)
            .at(10, FaultKind::BrokerCrash { broker: 1 })
            .at(60, FaultKind::BrokerRestart { broker: 1 });
        let report = ChaosHarness::new(plan).run();
        report.assert_invariants();
        assert_eq!(report.trace.entries.len(), 2);
        assert_eq!(report.final_isr, report.replication_factor);
        // the health model saw the crash and the recovery
        assert_eq!(report.health.status, octopus_broker::HealthStatus::Green);
        assert!(
            report.health.timeline.iter().any(|t| t.to != octopus_broker::HealthStatus::Green),
            "crash window never left Green: {:?}",
            report.health.timeline
        );
    }
}
