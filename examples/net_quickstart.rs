//! Networked quickstart: a produce→fetch round trip between **two
//! separate OS processes** over loopback TCP with SCRAM auth — and a
//! distributed trace proving it.
//!
//! The binary is dual-mode: invoked with `--serve <addr-file>` it
//! becomes the broker process (cluster + `WireServer`, address written
//! to the file); invoked bare it spawns that server as a child
//! process, dials it with [`TcpTransport`], and drives the SDK
//! producer/consumer across the real socket.
//!
//! Tracing crosses the process boundary twice: produce frames carry
//! the client's trace context in the wire frame, so the broker's
//! Append spans share the client's trace ids; afterwards the client
//! scrapes the broker's span snapshot back over `DescribeMetrics` and
//! merges both processes into one Chrome trace
//! (`results/net_trace.json`) with a distinct pid lane per process.
//! The run prints a JSON summary that `scripts/ci.sh` gates on.
//!
//! Run with: `cargo run --example net_quickstart`

use std::collections::BTreeSet;
use std::io::Read;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus::auth::scram::ScramStore;
use octopus::prelude::*;
use octopus::sdk::Consumer;
use octopus::types::{write_chrome_trace_multi, ProcessSpans, SpanSink};
use octopus::wire::{
    Authenticator, Credentials, TcpTransport, TcpTransportConfig, Transport, WireServer,
    WireServerConfig,
};

const USER: &str = "ada";
const PASSWORD: &str = "correct horse battery staple";
const TOPIC: &str = "sdl.actions";
const COUNT: usize = 12;

/// Child mode: host the cluster behind a wire server until the parent
/// goes away (detected as EOF on stdin).
fn serve(addr_file: &str) {
    // record a span for every trace — the parent pulls them back over
    // DescribeMetrics to build the cross-process trace
    let cluster = Cluster::builder(2).spans(Arc::new(SpanSink::new(1))).build();
    cluster.create_topic(TOPIC, TopicConfig::default().with_partitions(2)).unwrap();
    let scram = Arc::new(ScramStore::new());
    scram.add_user(USER, PASSWORD, Uid(7));
    let server = WireServer::bind(
        cluster,
        Authenticator::closed().with_scram(scram),
        "127.0.0.1:0",
        WireServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    // atomic publish: write to a temp name, then rename into place
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, &addr).unwrap();
    std::fs::rename(&tmp, addr_file).unwrap();
    // Block until the parent closes our stdin (exit or kill) so an
    // orphaned server never outlives the demo.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--serve" {
        return serve(&args[2]);
    }

    let addr_file = std::env::temp_dir()
        .join(format!("octopus-net-quickstart-{}.addr", std::process::id()));
    let addr_file_str = addr_file.to_string_lossy().to_string();
    let _ = std::fs::remove_file(&addr_file);

    // Process #1: the broker, in its own OS process.
    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["--serve", &addr_file_str])
        .stdin(Stdio::piped())
        .spawn()
        .expect("spawn server process");
    let broker_pid = child.id() as u64;

    // Wait for the server to publish its listen address.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            break addr;
        }
        assert!(Instant::now() < deadline, "server process never published an address");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Process #2 (this one): SCRAM-authenticated SDK clients over TCP,
    // tracing every request (sample_every = 1).
    let transport = Arc::new(TcpTransport::connect(
        addr.clone(),
        TcpTransportConfig {
            credentials: Credentials::Scram {
                username: USER.into(),
                password: PASSWORD.into(),
            },
            trace_sample_every: 1,
            ..Default::default()
        },
    ));
    transport.ensure_connected().expect("SCRAM handshake");
    let principal = transport.principal().unwrap();

    let producer = Producer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ProducerConfig::default(),
        None,
    );
    for i in 0..COUNT {
        producer
            .send_sync(
                TOPIC,
                Event::builder()
                    .key(format!("run-{}", i % 3))
                    .payload(format!("action-{i}").into_bytes())
                    .build(),
            )
            .expect("produce over TCP");
    }

    let mut consumer = Consumer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ConsumerConfig { group: "net-quickstart".into(), ..Default::default() },
        None,
    );
    consumer.subscribe(&[TOPIC]).unwrap();
    let mut consumed = 0usize;
    let deadline = Instant::now() + Duration::from_secs(10);
    while consumed < COUNT && Instant::now() < deadline {
        consumed += consumer.poll().expect("fetch over TCP").len();
    }

    // Scrape the broker's telemetry back over the same socket while
    // the child is still alive: its span snapshot (for the merged
    // trace) and its metrics registry (for the summary).
    let remote = transport.describe_metrics(true).expect("DescribeMetrics over TCP");
    let health = transport.describe_health().expect("DescribeHealth over TCP");

    drop(child.stdin.take()); // EOF → server exits
    let _ = child.wait();
    let _ = std::fs::remove_file(&addr_file);

    // Merge both processes into one Chrome trace, one pid lane each.
    let client_spans = transport.span_sink().snapshot();
    let client_traces: BTreeSet<u64> = client_spans.iter().map(|s| s.trace_id).collect();
    let broker_traces: BTreeSet<u64> = remote.spans.iter().map(|s| s.trace_id).collect();
    let shared_traces = client_traces.intersection(&broker_traces).count();
    std::fs::create_dir_all("results").unwrap();
    let processes = [
        ProcessSpans {
            pid: std::process::id() as u64,
            name: "octopus-client".to_string(),
            spans: client_spans,
        },
        ProcessSpans {
            pid: broker_pid,
            name: format!("octopus-broker-{}", remote.broker_id),
            spans: remote.spans.clone(),
        },
    ];
    write_chrome_trace_multi(std::path::Path::new("results/net_trace.json"), &processes)
        .expect("write merged trace");

    let wire_requests =
        remote.snapshot.counters.get("octopus_wire_requests_total").copied().unwrap_or(0);
    let report = serde_json::json!({
        "transport": "tcp",
        "addr": addr,
        "processes": 2,
        "scram_principal": principal.map(|u| u.to_string()),
        "produced": COUNT,
        "consumed": consumed,
        "client_spans": processes[0].spans.len(),
        "broker_spans": processes[1].spans.len(),
        "shared_traces": shared_traces,
        "broker_wire_requests_total": wire_requests,
        "broker_health": serde_json::to_value(&health.report.status).unwrap(),
        "trace_file": "results/net_trace.json",
        "ok": consumed == COUNT
            && principal == Some(Uid(7))
            && shared_traces >= 1
            && wire_requests > 0,
    });
    println!("{}", serde_json::to_string_pretty(&report).unwrap());
    assert!(report["ok"].as_bool().unwrap(), "round trip failed");
}
