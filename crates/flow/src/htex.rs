//! The high-throughput executor: an interchange dispatching ready tasks
//! to a pool of worker threads.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use serde_json::Value;

use octopus_types::Timestamp;

use crate::dag::{TaskGraph, TaskId};
use crate::healing::HealingPolicy;
use crate::monitor::{Monitor, MonitorEvent};

/// Executor configuration.
#[derive(Clone)]
pub struct HtexConfig {
    /// Worker threads.
    pub workers: usize,
    /// Run identifier stamped on monitoring events.
    pub run_id: String,
    /// Optional healing policy (retry + blacklist, §VI-E future work).
    pub healing: Option<HealingPolicy>,
    /// Test hook: returns true when `worker` should botch `task`
    /// (models a bad node).
    pub fault_injector: Option<Arc<dyn Fn(usize, TaskId) -> bool + Send + Sync>>,
}

impl HtexConfig {
    /// `workers` workers, no healing, no faults.
    pub fn new(workers: usize) -> Self {
        HtexConfig {
            workers: workers.max(1),
            run_id: "run".into(),
            healing: None,
            fault_injector: None,
        }
    }
}

/// What a run produced.
#[derive(Debug)]
pub struct ExecutionReport {
    /// Successful task outputs.
    pub outputs: HashMap<TaskId, Value>,
    /// Failed tasks and their final error.
    pub failures: HashMap<TaskId, String>,
    /// Wall-clock makespan.
    pub makespan: Duration,
    /// Task executions attempted (> tasks when retries fire).
    pub attempts: u64,
    /// Workers blacklisted during the run.
    pub blacklisted_workers: Vec<usize>,
}

enum WorkerMsg {
    Run { task: TaskId, inputs: Vec<Value>, attempt: u32 },
    Stop,
}

struct WorkerResult {
    task: TaskId,
    worker: usize,
    attempt: u32,
    outcome: Result<Value, String>,
}

/// The executor.
pub struct HtexExecutor {
    config: HtexConfig,
    monitor: Arc<dyn Monitor>,
}

impl HtexExecutor {
    /// An executor reporting to `monitor`.
    pub fn new(config: HtexConfig, monitor: Arc<dyn Monitor>) -> Self {
        HtexExecutor { config, monitor }
    }

    /// Execute the graph to completion; blocks until done.
    pub fn run(&self, graph: &TaskGraph) -> ExecutionReport {
        let start = Instant::now();
        let n = graph.len();
        let dependents = graph.dependents();
        let mut missing_deps: Vec<usize> =
            (0..n).map(|i| graph.task(TaskId(i)).deps.len()).collect();

        // per-worker channels so the dispatcher can steer around
        // blacklisted workers
        let (result_tx, result_rx): (Sender<WorkerResult>, Receiver<WorkerResult>) = unbounded();
        let mut worker_txs: Vec<Sender<WorkerMsg>> = Vec::with_capacity(self.config.workers);
        let mut handles = Vec::with_capacity(self.config.workers);
        let blacklist: Arc<RwLock<Vec<usize>>> = Arc::new(RwLock::new(Vec::new()));
        for w in 0..self.config.workers {
            let (tx, rx) = unbounded::<WorkerMsg>();
            worker_txs.push(tx);
            let result_tx = result_tx.clone();
            let monitor = self.monitor.clone();
            let run_id = self.config.run_id.clone();
            let fault = self.config.fault_injector.clone();
            let graph_tasks: Vec<(String, crate::dag::TaskFn)> = (0..n)
                .map(|i| (graph.task(TaskId(i)).name.clone(), graph.task(TaskId(i)).func.clone()))
                .collect();
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WorkerMsg::Stop => break,
                        WorkerMsg::Run { task, inputs, attempt } => {
                            let (name, func) = &graph_tasks[task.0];
                            monitor.record(MonitorEvent {
                                run: run_id.clone(),
                                task: name.clone(),
                                worker: w,
                                phase: "running".into(),
                                timestamp: Timestamp::now(),
                            });
                            let injected =
                                fault.as_ref().is_some_and(|f| f(w, task));
                            let outcome = if injected {
                                Err(format!("injected fault on worker {w}"))
                            } else {
                                func(&inputs)
                            };
                            monitor.record(MonitorEvent {
                                run: run_id.clone(),
                                task: name.clone(),
                                worker: w,
                                phase: if outcome.is_ok() { "done" } else { "failed" }.into(),
                                timestamp: Timestamp::now(),
                            });
                            let _ = result_tx.send(WorkerResult {
                                task,
                                worker: w,
                                attempt,
                                outcome,
                            });
                        }
                    }
                }
            }));
        }
        drop(result_tx);

        let mut outputs: HashMap<TaskId, Value> = HashMap::new();
        let mut failures: HashMap<TaskId, String> = HashMap::new();
        let mut worker_failures: Vec<u32> = vec![0; self.config.workers];
        let mut attempts: u64 = 0;
        let mut next_worker = 0usize;
        let mut completed = 0usize;

        let dispatch = |task: TaskId,
                            attempt: u32,
                            outputs: &HashMap<TaskId, Value>,
                            next_worker: &mut usize,
                            attempts: &mut u64,
                            avoid: Option<usize>| {
            let inputs: Vec<Value> = graph
                .task(task)
                .deps
                .iter()
                .map(|d| outputs.get(d).cloned().unwrap_or(Value::Null))
                .collect();
            // skip blacklisted (and optionally the failing) workers
            let black = blacklist.read();
            let eligible: Vec<usize> = (0..self.config.workers)
                .filter(|w| !black.contains(w) && Some(*w) != avoid)
                .collect();
            drop(black);
            let pool: Vec<usize> = if eligible.is_empty() {
                (0..self.config.workers).collect()
            } else {
                eligible
            };
            let w = pool[*next_worker % pool.len()];
            *next_worker += 1;
            *attempts += 1;
            self.monitor.record(MonitorEvent {
                run: self.config.run_id.clone(),
                task: graph.task(task).name.clone(),
                worker: w,
                phase: "launched".into(),
                timestamp: Timestamp::now(),
            });
            let _ = worker_txs[w].send(WorkerMsg::Run { task, inputs, attempt });
        };

        for root in graph.roots() {
            dispatch(root, 0, &outputs, &mut next_worker, &mut attempts, None);
        }

        while completed < n {
            let Ok(result) = result_rx.recv() else { break };
            match result.outcome {
                Ok(value) => {
                    outputs.insert(result.task, value);
                    completed += 1;
                    for &dep in &dependents[result.task.0] {
                        missing_deps[dep.0] -= 1;
                        if missing_deps[dep.0] == 0 && !failures.contains_key(&dep) {
                            dispatch(dep, 0, &outputs, &mut next_worker, &mut attempts, None);
                        }
                    }
                }
                Err(msg) => {
                    let healing = self.config.healing.unwrap_or_default();
                    if healing.blacklist_after > 0 {
                        worker_failures[result.worker] += 1;
                        if worker_failures[result.worker] >= healing.blacklist_after {
                            let mut black = blacklist.write();
                            if !black.contains(&result.worker) {
                                black.push(result.worker);
                            }
                        }
                    }
                    if result.attempt < healing.max_retries {
                        dispatch(
                            result.task,
                            result.attempt + 1,
                            &outputs,
                            &mut next_worker,
                            &mut attempts,
                            Some(result.worker),
                        );
                    } else {
                        failures.insert(result.task, msg);
                        completed += 1;
                        // dependents can never run
                        let mut doomed = dependents[result.task.0].clone();
                        while let Some(d) = doomed.pop() {
                            if failures.contains_key(&d) || outputs.contains_key(&d) {
                                continue;
                            }
                            failures.insert(d, "dependency failed".into());
                            completed += 1;
                            doomed.extend(dependents[d.0].iter().copied());
                        }
                    }
                }
            }
        }

        for tx in &worker_txs {
            let _ = tx.send(WorkerMsg::Stop);
        }
        for h in handles {
            let _ = h.join();
        }
        self.monitor.flush();
        let blacklisted_workers = blacklist.read().clone();
        ExecutionReport {
            outputs,
            failures,
            makespan: start.elapsed(),
            attempts,
            blacklisted_workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::independent_tasks;
    use crate::monitor::NullMonitor;
    use serde_json::json;

    fn exec(workers: usize) -> HtexExecutor {
        HtexExecutor::new(HtexConfig::new(workers), Arc::new(NullMonitor::new()))
    }

    #[test]
    fn runs_independent_bag() {
        let g = independent_tasks(50, |_| Ok(json!(1)));
        let report = exec(8).run(&g);
        assert_eq!(report.outputs.len(), 50);
        assert!(report.failures.is_empty());
        assert_eq!(report.attempts, 50);
        assert!(report.blacklisted_workers.is_empty());
    }

    #[test]
    fn dataflow_through_diamond() {
        let mut b = TaskGraph::builder();
        let a = b.add("a", &[], |_| Ok(json!(10)));
        let l = b.add("l", &[a], |i| Ok(json!(i[0].as_i64().unwrap() * 2)));
        let r = b.add("r", &[a], |i| Ok(json!(i[0].as_i64().unwrap() * 3)));
        let j = b.add("j", &[l, r], |i| {
            Ok(json!(i[0].as_i64().unwrap() + i[1].as_i64().unwrap()))
        });
        let g = b.build().unwrap();
        let report = exec(4).run(&g);
        assert_eq!(report.outputs[&j], json!(50));
    }

    #[test]
    fn parallelism_shrinks_makespan() {
        let task = |_: &[Value]| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(json!(1))
        };
        let g = independent_tasks(16, task);
        let serial = exec(1).run(&g).makespan;
        let parallel = exec(8).run(&g).makespan;
        assert!(
            parallel < serial / 2,
            "8 workers {parallel:?} should beat 1 worker {serial:?} by >2x"
        );
    }

    #[test]
    fn failed_task_poisons_dependents_only() {
        let mut b = TaskGraph::builder();
        let ok = b.add("ok", &[], |_| Ok(json!(1)));
        let bad = b.add("bad", &[], |_| Err("boom".into()));
        let child = b.add("child", &[bad], |_| Ok(json!(2)));
        let grandchild = b.add("grandchild", &[child], |_| Ok(json!(3)));
        let indep = b.add("indep", &[ok], |_| Ok(json!(4)));
        let g = b.build().unwrap();
        let report = exec(4).run(&g);
        assert_eq!(report.outputs.len(), 2); // ok + indep
        assert_eq!(report.failures.len(), 3);
        assert_eq!(report.failures[&bad], "boom");
        assert_eq!(report.failures[&child], "dependency failed");
        assert_eq!(report.failures[&grandchild], "dependency failed");
        assert!(report.outputs.contains_key(&indep));
    }

    #[test]
    fn monitor_sees_three_phases_per_task() {
        let m = Arc::new(crate::monitor::DbMonitor::new(Duration::ZERO));
        let g = independent_tasks(10, |_| Ok(json!(1)));
        HtexExecutor::new(HtexConfig::new(4), m.clone()).run(&g);
        assert_eq!(m.count(), 30);
        let rows = m.rows();
        for phase in ["launched", "running", "done"] {
            assert_eq!(rows.iter().filter(|r| r.phase == phase).count(), 10, "{phase}");
        }
    }
}
