//! Hermetic stand-in for `crossbeam`, providing the `channel` module
//! this workspace uses: MPMC bounded/unbounded channels implemented
//! over `Mutex<VecDeque>` + `Condvar`.

pub mod channel;
