//! Task graphs: names, dependencies, and task bodies.
//!
//! A task body receives the JSON outputs of its dependencies and
//! produces a JSON output (Parsl apps pass Python objects; JSON is the
//! language-neutral analogue).

use std::collections::HashMap;
use std::sync::Arc;

use serde_json::Value;

use octopus_types::{OctoError, OctoResult};

/// Task identifier within a graph (dense, assigned in insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// A task body: dependency outputs in, output (or error) out.
pub type TaskFn = Arc<dyn Fn(&[Value]) -> Result<Value, String> + Send + Sync>;

/// A task: name, dependencies, body.
#[derive(Clone)]
pub struct TaskSpec {
    /// Human-readable name.
    pub name: String,
    /// Tasks that must complete first; their outputs are the inputs.
    pub deps: Vec<TaskId>,
    /// The body.
    pub func: TaskFn,
}

/// An immutable task graph, validated on construction.
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// Start building a graph.
    pub fn builder() -> TaskGraphBuilder {
        TaskGraphBuilder { tasks: Vec::new() }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// A task by id.
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.0]
    }

    /// Ids of tasks with no dependencies.
    pub fn roots(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.deps.is_empty())
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Reverse edges: for each task, the tasks depending on it.
    pub fn dependents(&self) -> Vec<Vec<TaskId>> {
        let mut out = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                out[d.0].push(TaskId(i));
            }
        }
        out
    }

    /// A topological order (dependencies before dependents).
    pub fn topological_order(&self) -> Vec<TaskId> {
        let mut order = Vec::with_capacity(self.tasks.len());
        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let dependents = self.dependents();
        let mut ready: Vec<TaskId> = self.roots();
        while let Some(id) = ready.pop() {
            order.push(id);
            for &d in &dependents[id.0] {
                indegree[d.0] -= 1;
                if indegree[d.0] == 0 {
                    ready.push(d);
                }
            }
        }
        order
    }
}

/// Builder for [`TaskGraph`].
pub struct TaskGraphBuilder {
    tasks: Vec<TaskSpec>,
}

impl TaskGraphBuilder {
    /// Add a task; returns its id for use as a dependency.
    pub fn add(
        &mut self,
        name: &str,
        deps: &[TaskId],
        func: impl Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(TaskSpec {
            name: name.to_string(),
            deps: deps.to_vec(),
            func: Arc::new(func),
        });
        id
    }

    /// Validate and freeze the graph. Rejects forward/self references
    /// (cycles are unrepresentable since deps must already exist).
    pub fn build(self) -> OctoResult<TaskGraph> {
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                // deps must reference strictly earlier tasks, which also
                // makes cycles unrepresentable
                if d.0 >= i {
                    return Err(OctoError::Invalid(format!(
                        "task `{}` depends on a later or unknown task {d:?}",
                        t.name
                    )));
                }
            }
        }
        Ok(TaskGraph { tasks: self.tasks })
    }
}

/// Convenience: a bag of `n` independent tasks all running `func`
/// (the paper's scaling tests run 128 independent sleep tasks).
pub fn independent_tasks(
    n: usize,
    func: impl Fn(&[Value]) -> Result<Value, String> + Send + Sync + Clone + 'static,
) -> TaskGraph {
    let mut b = TaskGraph::builder();
    for i in 0..n {
        b.add(&format!("task-{i}"), &[], func.clone());
    }
    b.build().expect("independent tasks cannot be invalid")
}

/// Results of a completed run, keyed by task id.
pub type TaskOutputs = HashMap<TaskId, Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn diamond_graph_topology() {
        let mut b = TaskGraph::builder();
        let a = b.add("a", &[], |_| Ok(json!(1)));
        let l = b.add("left", &[a], |inp| Ok(json!(inp[0].as_i64().unwrap() + 1)));
        let r = b.add("right", &[a], |inp| Ok(json!(inp[0].as_i64().unwrap() + 2)));
        let j = b.add("join", &[l, r], |inp| {
            Ok(json!(inp[0].as_i64().unwrap() + inp[1].as_i64().unwrap()))
        });
        let g = b.build().unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.roots(), vec![a]);
        let order = g.topological_order();
        assert_eq!(order.len(), 4);
        let pos = |t: TaskId| order.iter().position(|x| *x == t).unwrap();
        assert!(pos(a) < pos(l));
        assert!(pos(a) < pos(r));
        assert!(pos(l) < pos(j));
        assert!(pos(r) < pos(j));
        assert_eq!(g.dependents()[a.0].len(), 2);
    }

    #[test]
    fn forward_reference_rejected() {
        let mut b = TaskGraph::builder();
        b.add("bad", &[TaskId(5)], |_| Ok(Value::Null));
        assert!(matches!(b.build(), Err(OctoError::Invalid(_))));
    }

    #[test]
    fn independent_bag() {
        let g = independent_tasks(128, |_| Ok(json!("done")));
        assert_eq!(g.len(), 128);
        assert_eq!(g.roots().len(), 128);
        assert!(!g.is_empty());
        assert_eq!(g.task(TaskId(7)).name, "task-7");
    }
}
