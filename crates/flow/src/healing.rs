//! Adaptive healing: retries and worker blacklisting.
//!
//! §VI-E closes with the roadmap this module implements: "we will
//! extend Parsl to use this information in various ways, for example,
//! by retrying failed tasks, blacklisting under-performing nodes, or
//! elastically rescheduling tasks". The executor consults a
//! [`HealingPolicy`] on every failure: the task is retried on a
//! *different* worker, and a worker accumulating failures is removed
//! from the dispatch pool.

use serde::{Deserialize, Serialize};

/// Failure-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealingPolicy {
    /// Retries per task before it is declared failed.
    pub max_retries: u32,
    /// Blacklist a worker after this many failures on it (0 disables).
    pub blacklist_after: u32,
}

impl Default for HealingPolicy {
    /// The zero policy: no retries, no blacklisting (stock executor
    /// behaviour).
    fn default() -> Self {
        HealingPolicy { max_retries: 0, blacklist_after: 0 }
    }
}

impl HealingPolicy {
    /// A forgiving policy: a few retries, quick blacklisting.
    pub fn aggressive() -> Self {
        HealingPolicy { max_retries: 3, blacklist_after: 2 }
    }
}

/// Summary of what healing did during a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryOutcome {
    /// Tasks that succeeded only after retrying.
    pub recovered: u64,
    /// Tasks that failed even after retries.
    pub lost: u64,
    /// Workers blacklisted.
    pub blacklisted: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::independent_tasks;
    use crate::htex::{HtexConfig, HtexExecutor};
    use crate::monitor::NullMonitor;
    use serde_json::json;
    use std::sync::Arc;

    /// One bad worker out of four: every task it touches fails.
    fn config_with_bad_worker(policy: HealingPolicy) -> HtexConfig {
        let mut cfg = HtexConfig::new(4);
        cfg.healing = Some(policy);
        cfg.fault_injector = Some(Arc::new(|worker, _task| worker == 2));
        cfg
    }

    #[test]
    fn without_healing_a_bad_worker_loses_tasks() {
        let cfg = config_with_bad_worker(HealingPolicy::default());
        let g = independent_tasks(40, |_| Ok(json!(1)));
        let report = HtexExecutor::new(cfg, Arc::new(NullMonitor::new())).run(&g);
        assert!(!report.failures.is_empty(), "bad worker must lose tasks without healing");
        assert!(report.blacklisted_workers.is_empty());
    }

    #[test]
    fn retries_recover_all_tasks() {
        let cfg = config_with_bad_worker(HealingPolicy { max_retries: 3, blacklist_after: 0 });
        let g = independent_tasks(40, |_| Ok(json!(1)));
        let report = HtexExecutor::new(cfg, Arc::new(NullMonitor::new())).run(&g);
        assert!(report.failures.is_empty(), "retries on other workers recover everything");
        assert_eq!(report.outputs.len(), 40);
        assert!(report.attempts > 40, "retries cost extra attempts");
    }

    #[test]
    fn blacklisting_quarantines_the_bad_worker() {
        let cfg = config_with_bad_worker(HealingPolicy::aggressive());
        let g = independent_tasks(60, |_| Ok(json!(1)));
        let report = HtexExecutor::new(cfg, Arc::new(NullMonitor::new())).run(&g);
        assert!(report.failures.is_empty());
        assert_eq!(report.blacklisted_workers, vec![2]);
        // Once blacklisted, the bad worker stops receiving work. Tasks
        // already queued to it before the blacklist trips still fail and
        // retry (dispatch is pipelined), so allow one queue's worth of
        // extra attempts — but nowhere near the unbounded-retry worst
        // case.
        assert!(
            report.attempts <= 60 + 60 / 4 + 4,
            "blacklisting bounds wasted attempts: {}",
            report.attempts
        );
    }

    #[test]
    fn healthy_pool_is_untouched_by_policy() {
        let mut cfg = HtexConfig::new(4);
        cfg.healing = Some(HealingPolicy::aggressive());
        let g = independent_tasks(40, |_| Ok(json!(1)));
        let report = HtexExecutor::new(cfg, Arc::new(NullMonitor::new())).run(&g);
        assert!(report.failures.is_empty());
        assert!(report.blacklisted_workers.is_empty());
        assert_eq!(report.attempts, 40);
    }
}
