//! Cluster shapes (Table II) and experiment configurations (Table III).

use serde::{Deserialize, Serialize};

use crate::instance::{ClientLocation, InstanceType, KAFKA_M5_LARGE, KAFKA_M5_XLARGE};

/// A broker fleet shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterShape {
    /// Shape name as used in the paper.
    pub name: &'static str,
    /// Number of brokers.
    pub brokers: u32,
    /// Instance type of every broker.
    pub instance: InstanceType,
}

/// Table II "Baseline": 2 × kafka.m5.large.
pub const BASELINE: ClusterShape =
    ClusterShape { name: "Baseline", brokers: 2, instance: KAFKA_M5_LARGE };

/// Table II "Scale-up": 2 × kafka.m5.xlarge.
pub const SCALE_UP: ClusterShape =
    ClusterShape { name: "Scale-up", brokers: 2, instance: KAFKA_M5_XLARGE };

/// Table II "Scale-out": 4 × kafka.m5.large.
pub const SCALE_OUT: ClusterShape =
    ClusterShape { name: "Scale-out", brokers: 4, instance: KAFKA_M5_LARGE };

/// Producer acknowledgment level (mirrors the broker crate's enum; the
/// fabric model is independent of the threaded broker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Acks {
    /// acks=0.
    None,
    /// acks=1.
    Leader,
    /// acks=all.
    All,
}

/// One fabric experiment configuration (a Table III row, before the
/// producer-count sweep).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ExpConfig {
    /// Cluster shape.
    pub cluster: ClusterShape,
    /// Topic replication factor.
    pub replication: u32,
    /// Number of partitions. Topics × partitions for multi-tenancy runs
    /// (each topic has its own partitions).
    pub partitions: u32,
    /// Number of topics (1 except for Fig. 5).
    pub topics: u32,
    /// Producer acks.
    pub acks: Acks,
    /// Event payload size in bytes.
    pub event_size: usize,
    /// Number of producer (or consumer) clients, split over two client
    /// machines.
    pub clients: u32,
    /// Where the clients run.
    pub location: ClientLocation,
}

impl ExpConfig {
    /// The paper's canonical starting point: baseline cluster, rep 2,
    /// 2 partitions, acks=0, 1 KB events, 100 remote producers.
    pub fn paper_default() -> Self {
        ExpConfig {
            cluster: BASELINE,
            replication: 2,
            partitions: 2,
            topics: 1,
            acks: Acks::None,
            event_size: 1024,
            clients: 100,
            location: ClientLocation::Remote,
        }
    }

    /// Total partitions across topics.
    pub fn total_partitions(&self) -> u32 {
        self.partitions * self.topics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        assert_eq!(BASELINE.brokers, 2);
        assert_eq!(BASELINE.instance.name, "kafka.m5.large");
        assert_eq!(SCALE_UP.brokers, 2);
        assert_eq!(SCALE_UP.instance.name, "kafka.m5.xlarge");
        assert_eq!(SCALE_OUT.brokers, 4);
        assert_eq!(SCALE_OUT.instance.name, "kafka.m5.large");
    }

    #[test]
    fn default_config_is_experiment_2() {
        let c = ExpConfig::paper_default();
        assert_eq!(c.event_size, 1024);
        assert_eq!(c.replication, 2);
        assert_eq!(c.partitions, 2);
        assert_eq!(c.acks, Acks::None);
        assert_eq!(c.total_partitions(), 2);
    }
}
