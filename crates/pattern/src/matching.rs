//! Event matching against compiled patterns.

use serde_json::Value;

use crate::ast::{Matcher, Node, Pattern};
use crate::wildcard::wildcard_match;

impl Pattern {
    /// Whether `event` (a JSON document) satisfies this pattern.
    pub fn matches(&self, event: &Value) -> bool {
        match_node(&self.root, Some(event))
    }

    /// Convenience: match a JSON string; malformed JSON never matches.
    pub fn matches_str(&self, event: &str) -> bool {
        serde_json::from_str::<Value>(event).map(|v| self.matches(&v)).unwrap_or(false)
    }

    /// Convenience: match raw bytes; malformed JSON never matches.
    pub fn matches_bytes(&self, event: &[u8]) -> bool {
        serde_json::from_slice::<Value>(event).map(|v| self.matches(&v)).unwrap_or(false)
    }
}

/// Match one pattern node against an event value (`None` = field absent).
fn match_node(node: &Node, value: Option<&Value>) -> bool {
    match node {
        Node::Or(alternatives) => alternatives.iter().any(|n| match_node(n, value)),
        Node::Object(fields) => {
            // An absent/non-object value can still match if every field
            // rule tolerates absence (i.e. `exists: false` leaves).
            fields.iter().all(|(key, child)| {
                let field = value.and_then(|v| v.as_object()).and_then(|m| m.get(key));
                match_node(child, field)
            })
        }
        Node::Leaf(matchers) => match value {
            None => matchers.iter().any(|m| matches!(m, Matcher::Exists(false))),
            // Array-valued event fields match if any element matches
            // (EventBridge semantics).
            Some(Value::Array(items)) => matchers.iter().any(|m| {
                if let Matcher::Exists(want) = m {
                    return *want;
                }
                items.iter().any(|item| match_scalar(m, item))
            }),
            Some(v) => matchers.iter().any(|m| match_scalar(m, v)),
        },
    }
}

fn match_scalar(m: &Matcher, v: &Value) -> bool {
    match m {
        Matcher::Exact(want) => json_scalar_eq(want, v),
        Matcher::Prefix(p) => v.as_str().is_some_and(|s| s.starts_with(p)),
        Matcher::Suffix(suf) => v.as_str().is_some_and(|s| s.ends_with(suf)),
        Matcher::EqualsIgnoreCase(want) => {
            v.as_str().is_some_and(|s| s.eq_ignore_ascii_case(want))
        }
        Matcher::AnythingBut(excluded) => {
            // EventBridge: matches when the value is present and equals
            // none of the excluded scalars.
            !excluded.iter().any(|ex| json_scalar_eq(ex, v))
        }
        Matcher::AnythingButPrefix(p) => v.as_str().is_some_and(|s| !s.starts_with(p)),
        Matcher::Numeric(cmps) => {
            v.as_f64().is_some_and(|x| cmps.iter().all(|(op, rhs)| op.eval(x, *rhs)))
        }
        Matcher::Exists(want) => *want, // value is present here
        Matcher::Wildcard(pat) => v.as_str().is_some_and(|s| wildcard_match(pat, s)),
        Matcher::Cidr(block) => v.as_str().is_some_and(|s| block.contains_str(s)),
    }
}

/// Scalar equality with numeric coercion (1 == 1.0) but no string/number
/// cross-type coercion, matching EventBridge.
fn json_scalar_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x.as_f64() == y.as_f64(),
        _ => a == b,
    }
}
