//! Property-based tests for the broker substrate: log invariants,
//! compaction semantics, consumer-group partitioning, and cluster
//! produce/fetch round-trips under arbitrary workloads.

use proptest::prelude::*;

use octopus_broker::{
    crc32c, AckLevel, CleanupPolicy, Cluster, Crc32c, GroupCoordinator, PartitionLog,
    RecordBatch, RetentionConfig, TopicConfig,
};
use octopus_types::{Event, Timestamp};

/// Byte-at-a-time single-table CRC32C — the implementation the kernel
/// shipped with before slicing-by-8, kept here as the equivalence
/// oracle.
fn crc32c_reference(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut crc = i as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
        *entry = crc;
    }
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        proptest::option::of("[a-d]{1,3}"),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(key, payload)| {
            let mut b = Event::builder().payload(payload);
            if let Some(k) = key {
                b = b.key(k);
            }
            b.build()
        })
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Event>>> {
    proptest::collection::vec(proptest::collection::vec(arb_event(), 1..8), 1..20)
}

proptest! {
    /// The slicing-by-8 kernel is bit-identical to the table-driven
    /// reference on arbitrary inputs.
    #[test]
    fn crc32c_slicing_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(crc32c(&data), crc32c_reference(&data));
    }

    /// Streaming the same bytes through `Crc32c` in arbitrary chunkings
    /// yields the one-shot checksum.
    #[test]
    fn crc32c_streaming_is_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Crc32c::new();
        let mut prev = 0usize;
        for cut in cuts {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), crc32c(&data));
    }

    /// Appended offsets are dense, start at zero, and reads round-trip
    /// every record in order.
    #[test]
    fn log_offsets_dense_and_roundtrip(batches in arb_batches()) {
        let mut log = PartitionLog::new();
        let mut expected = Vec::new();
        for (i, events) in batches.iter().enumerate() {
            let base = log.append(&RecordBatch::new(events.clone()), Timestamp::from_millis(i as u64)).unwrap();
            prop_assert_eq!(base, expected.len() as u64);
            expected.extend(events.iter().cloned());
        }
        let records = log.read(0, usize::MAX >> 1).unwrap();
        prop_assert_eq!(records.len(), expected.len());
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.offset, i as u64);
            prop_assert_eq!(&r.value, &expected[i].payload);
            prop_assert_eq!(&r.key, &expected[i].key);
        }
        prop_assert_eq!(log.end_offset(), expected.len() as u64);
    }

    /// Reads starting mid-log return exactly the suffix.
    #[test]
    fn log_mid_reads_are_suffixes(batches in arb_batches(), start_frac in 0.0f64..1.0) {
        let mut log = PartitionLog::with_segment_bytes(64); // force many segments
        for (i, events) in batches.iter().enumerate() {
            log.append(&RecordBatch::new(events.clone()), Timestamp::from_millis(i as u64)).unwrap();
        }
        let end = log.end_offset();
        let start = ((end as f64) * start_frac) as u64;
        let records = log.read(start, usize::MAX >> 1).unwrap();
        prop_assert_eq!(records.len() as u64, end - start);
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.offset, start + i as u64);
        }
    }

    /// Compaction keeps exactly the newest record per key among closed
    /// segments, never renumbers offsets, and preserves unkeyed records.
    #[test]
    fn compaction_keeps_latest_per_key(batches in arb_batches()) {
        let mut log = PartitionLog::with_segment_bytes(32);
        let mut all = Vec::new();
        for (i, events) in batches.iter().enumerate() {
            log.append(&RecordBatch::new(events.clone()), Timestamp::from_millis(i as u64)).unwrap();
            all.extend(events.iter().cloned());
        }
        let before = log.read(0, usize::MAX >> 1).unwrap();
        log.compact();
        let after = log.read(log.start_offset(), usize::MAX >> 1).unwrap();
        // offsets preserved and still increasing
        let mut prev = None;
        for r in &after {
            if let Some(p) = prev {
                prop_assert!(r.offset > p);
            }
            prev = Some(r.offset);
        }
        // for every key, the newest record survives
        use std::collections::HashMap;
        let mut newest: HashMap<&[u8], u64> = HashMap::new();
        for r in &before {
            if let Some(k) = &r.key {
                newest.insert(&k[..], r.offset);
            }
        }
        for (key, offset) in &newest {
            prop_assert!(
                after.iter().any(|r| r.offset == *offset),
                "newest record {offset} of key {key:?} must survive"
            );
        }
        // unkeyed records all survive
        let unkeyed_before = before.iter().filter(|r| r.key.is_none()).count();
        let unkeyed_after = after.iter().filter(|r| r.key.is_none()).count();
        prop_assert_eq!(unkeyed_before, unkeyed_after);
    }

    /// Retention drops only whole prefixes: the retained records are
    /// always a contiguous suffix of the log, and the active segment
    /// survives.
    #[test]
    fn retention_drops_prefixes_only(
        batches in arb_batches(),
        retention_bytes in 1u64..500,
    ) {
        let mut log = PartitionLog::with_segment_bytes(48);
        for (i, events) in batches.iter().enumerate() {
            log.append(&RecordBatch::new(events.clone()), Timestamp::from_millis(i as u64)).unwrap();
        }
        let end = log.end_offset();
        let retention = RetentionConfig { retention_ms: None, retention_bytes: Some(retention_bytes) };
        log.enforce_retention(&retention, Timestamp::from_millis(1_000_000));
        prop_assert_eq!(log.end_offset(), end, "retention never drops the tail");
        prop_assert!(!log.is_empty(), "active segment survives");
        let records = log.read(log.start_offset(), usize::MAX >> 1).unwrap();
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.offset, log.start_offset() + i as u64);
        }
    }

    /// Range assignment partitions the topic: every partition is owned
    /// by exactly one member.
    #[test]
    fn group_assignment_is_a_partition(
        members in proptest::collection::btree_set("[a-z]{1,6}", 1..8),
        partitions in 1u32..32,
    ) {
        let gc = GroupCoordinator::new();
        let counts = std::iter::once(("t".to_string(), partitions)).collect();
        for m in &members {
            gc.join("g", m, vec!["t".into()], &counts);
        }
        let mut owned = std::collections::HashMap::new();
        for m in &members {
            let a = gc.assignment_of("g", m).unwrap();
            for (_, p) in a.partitions {
                prop_assert!(owned.insert(p, m.clone()).is_none(), "partition {p} double-owned");
            }
        }
        prop_assert_eq!(owned.len() as u32, partitions, "all partitions owned");
    }

    /// Cluster produce/fetch round-trips arbitrary workloads across
    /// partitions: nothing lost, nothing duplicated, per-partition order
    /// preserved.
    #[test]
    fn cluster_roundtrip(events in proptest::collection::vec(arb_event(), 1..60)) {
        let cluster = Cluster::new(2);
        cluster.create_topic("t", TopicConfig::default().with_partitions(3).with_replication(2)).unwrap();
        let mut receipts = Vec::new();
        for e in &events {
            receipts.push(cluster.produce("t", e.clone(), AckLevel::Leader).unwrap());
        }
        let mut fetched = 0usize;
        for p in 0..3 {
            let records = cluster.fetch("t", p, 0, 10_000).unwrap();
            // offsets dense per partition
            for (i, r) in records.iter().enumerate() {
                prop_assert_eq!(r.offset, i as u64);
            }
            fetched += records.len();
        }
        prop_assert_eq!(fetched, events.len());
        // keyed events all landed in a single partition per key
        use std::collections::HashMap;
        let mut key_partition: HashMap<Vec<u8>, u32> = HashMap::new();
        for (e, r) in events.iter().zip(&receipts) {
            if let Some(k) = &e.key {
                if let Some(prev) = key_partition.insert(k.to_vec(), r.partition) {
                    prop_assert_eq!(prev, r.partition, "key split across partitions");
                }
            }
        }
    }

    /// Cleanup policies never make the log unreadable.
    #[test]
    fn cleanup_preserves_readability(
        batches in arb_batches(),
        policy_idx in 0usize..3,
    ) {
        let policy = [CleanupPolicy::Delete, CleanupPolicy::Compact, CleanupPolicy::CompactAndDelete][policy_idx];
        let retention = RetentionConfig { retention_ms: Some(0), retention_bytes: None };
        let mut log = PartitionLog::with_segment_bytes(40);
        for (i, events) in batches.iter().enumerate() {
            log.append(&RecordBatch::new(events.clone()), Timestamp::from_millis(i as u64)).unwrap();
        }
        log.cleanup(&policy, &retention, Timestamp::from_millis(1_000_000));
        // reads from the (possibly advanced) start offset always succeed
        let records = log.read(log.start_offset(), usize::MAX >> 1).unwrap();
        prop_assert_eq!(records.len(), log.len());
    }
}
