//! Remote fleet scraping: poll many brokers' `DescribeMetrics` /
//! `DescribeHealth` endpoints over TCP and merge the results into one
//! fleet-wide view.
//!
//! Each target is an independent [`TcpTransport`] (its own socket,
//! auth, and retry behavior), so one unreachable broker degrades the
//! merged view instead of failing the poll: its label lands in
//! [`FleetView::unreachable`] and the remaining snapshots still merge.
//! Counter/gauge merges are additive and histograms bucket-merge, so
//! the fleet view reads exactly like a single broker's registry —
//! `octopus_wire_requests_total` in the merged snapshot is the fleet
//! total.

use octopus_types::{OctoError, OctoResult, RegistrySnapshot};

use crate::tcp::{RemoteHealth, RemoteMetrics, TcpTransport, TcpTransportConfig};

/// One broker's scrape result, labeled by the poller's target name.
#[derive(Debug, Clone)]
pub struct BrokerObservation {
    /// The label the target was registered under (usually `host:port`).
    pub source: String,
    pub metrics: RemoteMetrics,
    pub health: RemoteHealth,
}

/// The merged result of polling every registered target once.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// Per-broker observations, in registration order.
    pub brokers: Vec<BrokerObservation>,
    /// All reachable brokers' registry snapshots, merged.
    pub merged: RegistrySnapshot,
    /// Targets that failed this poll, with the error message.
    pub unreachable: Vec<(String, String)>,
}

impl FleetView {
    /// A merged counter's fleet-wide total (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.merged.counters.get(name).copied().unwrap_or(0)
    }

    /// A merged histogram's p99, in the recorded unit (0 if absent).
    pub fn p99(&self, name: &str) -> u64 {
        self.merged.histograms.get(name).map(|h| h.p99()).unwrap_or(0)
    }
}

struct FleetTarget {
    label: String,
    transport: TcpTransport,
}

/// Polls a set of brokers and merges their scrapes into a [`FleetView`].
#[derive(Default)]
pub struct FleetPoller {
    targets: Vec<FleetTarget>,
    include_spans: bool,
}

impl FleetPoller {
    pub fn new() -> Self {
        FleetPoller::default()
    }

    /// Also pull span snapshots on every poll (heavier; for tracing
    /// tools rather than dashboards).
    pub fn with_spans(mut self) -> Self {
        self.include_spans = true;
        self
    }

    /// Register a broker endpoint, dialing with `config`. The label
    /// names the broker in [`FleetView`] results.
    pub fn add_endpoint(
        &mut self,
        label: impl Into<String>,
        addr: impl Into<String>,
        config: TcpTransportConfig,
    ) {
        self.add_transport(label, TcpTransport::connect(addr, config));
    }

    /// Register a broker behind an existing transport (lets tests and
    /// tools share a connection with other traffic).
    pub fn add_transport(&mut self, label: impl Into<String>, transport: TcpTransport) {
        self.targets.push(FleetTarget { label: label.into(), transport });
    }

    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Scrape every target once. Per-target failures are collected,
    /// not fatal; the call itself only errors when *no* target was
    /// reachable (a dashboard over a dead fleet should say so).
    pub fn poll(&self) -> OctoResult<FleetView> {
        let mut brokers = Vec::with_capacity(self.targets.len());
        let mut merged = RegistrySnapshot::default();
        let mut unreachable = Vec::new();
        for t in &self.targets {
            let scraped = t
                .transport
                .describe_metrics(self.include_spans)
                .and_then(|m| t.transport.describe_health().map(|h| (m, h)));
            match scraped {
                Ok((metrics, health)) => {
                    merged.merge(&metrics.snapshot);
                    brokers.push(BrokerObservation {
                        source: t.label.clone(),
                        metrics,
                        health,
                    });
                }
                Err(e) => unreachable.push((t.label.clone(), e.to_string())),
            }
        }
        if brokers.is_empty() && !self.targets.is_empty() {
            let detail = unreachable
                .iter()
                .map(|(l, e)| format!("{l}: {e}"))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(OctoError::Unavailable(format!("no broker reachable ({detail})")));
        }
        Ok(FleetView { brokers, merged, unreachable })
    }
}
