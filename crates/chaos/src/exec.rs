//! Plan execution against a live deployment.
//!
//! [`execute_plan`] walks a [`FaultPlan`] on a compressed wall-clock
//! timeline, mapping each abstract [`FaultKind`] onto concrete
//! operations against the broker cluster and the zoo ensemble, and
//! records what it did in a [`FaultTrace`]. The trace's *signature* is
//! the `(at, kind)` sequence — outcomes are recorded for humans but
//! excluded from the signature, because a threaded deployment may
//! answer the same fault differently run to run (e.g. "already dead")
//! while the injected chaos is still identical.

use std::time::{Duration, Instant};

use octopus_broker::{BrokerId, Cluster, DeliveryFault};
use octopus_types::TopicName;
use octopus_zoo::ZooService;

use crate::plan::{FaultKind, FaultPlan, ScheduledFault};

/// The deployment a plan is executed against.
pub struct ChaosTarget {
    /// Broker cluster (shared handle).
    pub cluster: Cluster,
    /// Optional zoo ensemble for replica-flap faults.
    pub zoo: Option<ZooService>,
    /// Topic whose partition 0 is the subject of log-corruption
    /// faults.
    pub topic: TopicName,
}

/// One executed fault: where it was scheduled, what it was, and what
/// actually happened.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Scheduled virtual time (not the wall-clock instant it ran).
    pub at: Duration,
    /// The injected fault.
    pub kind: FaultKind,
    /// Human-readable outcome ("killed broker 2", "skipped: no
    /// follower", ...). Excluded from the determinism signature.
    pub outcome: String,
}

/// The record of one plan execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTrace {
    /// Entries in execution order.
    pub entries: Vec<TraceEntry>,
}

impl FaultTrace {
    /// The deterministic part of the trace: the `(at, kind)` sequence.
    /// Replaying a plan must yield an identical signature.
    pub fn signature(&self) -> Vec<(Duration, FaultKind)> {
        self.entries.iter().map(|e| (e.at, e.kind)).collect()
    }
}

/// Wrap a plan-level index onto the live broker topology.
fn broker(target: &ChaosTarget, raw: u32) -> BrokerId {
    BrokerId(raw % target.cluster.broker_count().max(1) as u32)
}

/// Apply a single fault to the target, returning an outcome note.
pub fn apply_fault(target: &ChaosTarget, kind: &FaultKind) -> String {
    let cluster = &target.cluster;
    let fault = cluster.fault_injector();
    match *kind {
        FaultKind::BrokerCrash { broker: b } => {
            let id = broker(target, b);
            match cluster.kill_broker(id) {
                Ok(()) => format!("killed broker {}", id.0),
                Err(e) => format!("kill no-op: {e}"),
            }
        }
        FaultKind::BrokerRestart { broker: b } => {
            let id = broker(target, b);
            match cluster.restart_broker(id) {
                Ok(()) => format!("restarted broker {}", id.0),
                Err(e) => format!("restart no-op: {e}"),
            }
        }
        FaultKind::ZooReplicaFlap { replica } => match &target.zoo {
            Some(zoo) => {
                let r = replica as usize % zoo.replica_count().max(1);
                zoo.kill_replica(r);
                match zoo.restart_replica(r) {
                    Ok(()) => format!("flapped zoo replica {r}"),
                    Err(e) => format!("zoo replica {r} restart failed: {e}"),
                }
            }
            None => "skipped: no zoo ensemble".to_string(),
        },
        FaultKind::NetworkPartition { a, b } => {
            let (x, y) = (broker(target, a), broker(target, b));
            if x == y {
                return format!("skipped: degenerate partition ({},{})", x.0, y.0);
            }
            fault.sever_link(x, y);
            format!("severed link {}<->{}", x.0, y.0)
        }
        FaultKind::NetworkHeal => {
            fault.heal_all_links();
            let mut resynced = 0;
            for i in 0..cluster.broker_count() as u32 {
                if cluster.resync_broker(BrokerId(i)).is_ok() {
                    resynced += 1;
                }
            }
            format!("healed all links, resynced {resynced} live brokers")
        }
        FaultKind::SlowBroker { broker: b, multiplier_pct } => {
            let id = broker(target, b);
            fault.set_slow(id, f64::from(multiplier_pct) / 100.0);
            format!("broker {} at {multiplier_pct}% service time", id.0)
        }
        FaultKind::MessageDrop { broker: b, count } => {
            let id = broker(target, b);
            fault.inject_delivery(id, DeliveryFault::Drop, count);
            format!("next {count} fetches from broker {} drop", id.0)
        }
        FaultKind::MessageDuplicate { broker: b, rewind, count } => {
            let id = broker(target, b);
            fault.inject_delivery(id, DeliveryFault::Duplicate { rewind: u64::from(rewind) }, count);
            format!("next {count} fetches from broker {} rewind {rewind}", id.0)
        }
        FaultKind::MessageDelay { broker: b, millis, count } => {
            let id = broker(target, b);
            fault.inject_delivery(id, DeliveryFault::Delay { millis: u64::from(millis) }, count);
            format!("next {count} fetches from broker {} delayed {millis}ms", id.0)
        }
        FaultKind::AmbiguousAck { broker: b, count } => {
            let id = broker(target, b);
            fault.inject_ack_drop(id, count);
            format!("next {count} produce acks from broker {} drop after the durable append", id.0)
        }
        FaultKind::LogTailCorruption { records } => corrupt_follower_tail(target, records),
        FaultKind::PowerLoss { broker: b, entropy } => {
            let id = broker(target, b);
            match cluster.power_loss_broker(id, entropy) {
                Ok(r) => format!(
                    "power loss on broker {}: {} partitions, {} bytes torn from unflushed tails",
                    id.0, r.partitions, r.bytes_torn
                ),
                Err(e) => format!("power-loss no-op: {e}"),
            }
        }
    }
}

/// Corrupt a *follower's* log tail, then crash and restart it so CRC
/// recovery truncates the damage and leader resync restores it.
///
/// The follower-only rule is load-bearing: corrupting the leader and
/// restarting it would truncate *committed* records while it remains
/// leader (restart resync skips the leader's own partitions), turning
/// an injected disk fault into real data loss the oracles would — and
/// should — reject. A real deployment handles that case by demoting
/// the broker first; this harness models the recoverable variant.
fn corrupt_follower_tail(target: &ChaosTarget, records: u32) -> String {
    let cluster = &target.cluster;
    let leader = match cluster.leader_broker(&target.topic, 0) {
        Ok(l) => l,
        Err(e) => return format!("skipped: no leader ({e})"),
    };
    let isr = match cluster.isr_of(&target.topic, 0) {
        Ok(i) => i,
        Err(e) => return format!("skipped: no isr ({e})"),
    };
    let Some(follower) = isr.into_iter().find(|b| *b != leader) else {
        return "skipped: no in-sync follower to corrupt".to_string();
    };
    let n = match cluster.corrupt_log_tail(follower, &target.topic, 0, records as usize) {
        Ok(n) => n,
        Err(e) => return format!("skipped: corrupt failed ({e})"),
    };
    if let Err(e) = cluster.kill_broker(follower) {
        return format!("corrupted {n} records on broker {} but kill failed: {e}", follower.0);
    }
    match cluster.restart_broker(follower) {
        Ok(()) => format!(
            "corrupted {n} records on follower {}, crash+restart recovered via CRC truncation",
            follower.0
        ),
        Err(e) => format!("corrupted {n} records on broker {} but restart failed: {e}", follower.0),
    }
}

/// Execute `plan` against `target` on a compressed wall-clock
/// timeline: each fault fires once its virtual `at` has elapsed since
/// the call started. Returns the trace.
pub fn execute_plan(target: &ChaosTarget, plan: &FaultPlan) -> FaultTrace {
    let t0 = Instant::now();
    let mut trace = FaultTrace::default();
    for ScheduledFault { at, kind } in plan.faults() {
        let elapsed = t0.elapsed();
        if *at > elapsed {
            std::thread::sleep(*at - elapsed);
        }
        let outcome = apply_fault(target, kind);
        trace.entries.push(TraceEntry { at: *at, kind: *kind, outcome });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_broker::config::TopicConfig;
    use octopus_broker::AckLevel;
    use octopus_types::Event;

    fn target() -> ChaosTarget {
        let cluster = Cluster::new(3);
        cluster
            .create_topic(
                "t",
                TopicConfig::default().with_partitions(1).with_replication(3).with_min_insync(2),
            )
            .unwrap();
        ChaosTarget { cluster, zoo: None, topic: "t".into() }
    }

    #[test]
    fn crash_and_restart_round_trip() {
        let t = target();
        let a = apply_fault(&t, &FaultKind::BrokerCrash { broker: 1 });
        assert_eq!(a, "killed broker 1");
        // killing again is a typed no-op, not a panic
        let b = apply_fault(&t, &FaultKind::BrokerCrash { broker: 1 });
        assert!(b.starts_with("kill no-op"), "{b}");
        let c = apply_fault(&t, &FaultKind::BrokerRestart { broker: 1 });
        assert_eq!(c, "restarted broker 1");
    }

    #[test]
    fn corruption_targets_follower_and_recovers() {
        let t = target();
        for i in 0..10 {
            t.cluster
                .produce("t", Event::from_bytes(vec![i]), AckLevel::All)
                .unwrap();
        }
        let out = apply_fault(&t, &FaultKind::LogTailCorruption { records: 3 });
        assert!(out.contains("recovered via CRC truncation"), "{out}");
        // all three replicas in sync again, nothing lost
        assert_eq!(t.cluster.isr_of("t", 0).unwrap().len(), 3);
        assert_eq!(t.cluster.fetch("t", 0, 0, 100).unwrap().len(), 10);
    }

    #[test]
    fn degenerate_partition_is_skipped() {
        let t = target();
        let out = apply_fault(&t, &FaultKind::NetworkPartition { a: 1, b: 4 });
        assert!(out.starts_with("skipped: degenerate"), "{out}");
    }

    #[test]
    fn executed_trace_signature_matches_plan() {
        let t = target();
        let plan = FaultPlan::new(7)
            .at(0, FaultKind::SlowBroker { broker: 0, multiplier_pct: 150 })
            .at(1, FaultKind::NetworkPartition { a: 0, b: 1 })
            .at(2, FaultKind::NetworkHeal);
        let trace = execute_plan(&t, &plan);
        assert_eq!(trace.signature(), plan.signature());
    }
}
