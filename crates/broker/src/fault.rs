//! Broker-side fault injection hooks.
//!
//! A [`FaultInjector`] is a shared handle the cluster consults on its
//! produce/fetch/replication paths. It stays inert (one relaxed atomic
//! load) until a chaos harness arms a fault, so production paths pay
//! nothing. The injector models *infrastructure* faults only — severed
//! inter-broker links, degraded (slow) brokers, and lossy/duplicating/
//! delaying delivery on a broker's client link. Broker crashes and log
//! corruption are injected through [`crate::Cluster`] directly, since
//! they mutate broker state rather than the message paths.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::broker::BrokerId;

/// A fault applied to the next fetches served by a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFault {
    /// Serve an empty response (the records are "lost in transit"; the
    /// consumer's next poll re-reads them — at-least-once holds).
    Drop,
    /// Re-deliver up to `rewind` records *before* the requested offset
    /// (the duplicate-delivery shape real consumers see after an
    /// unacked fetch is retried).
    Duplicate {
        /// How many already-delivered records to replay.
        rewind: u64,
    },
    /// Stall the response.
    Delay {
        /// Added latency in milliseconds.
        millis: u64,
    },
}

#[derive(Default)]
struct FaultState {
    /// Symmetric severed broker↔broker links.
    severed: HashSet<(BrokerId, BrokerId)>,
    /// Service-time multiplier per degraded broker (1.0 = healthy).
    slow: HashMap<BrokerId, f64>,
    /// Queued one-shot faults on each broker's client delivery path.
    delivery: HashMap<BrokerId, VecDeque<DeliveryFault>>,
    /// Pending ambiguous-ack injections per broker: the next `n`
    /// produces durably append, then the ack is dropped on the way back.
    ack_drops: HashMap<BrokerId, u32>,
}

/// Callback invoked when a link is severed; lets transports that hold
/// real OS resources for the link (sockets) tear them down too.
pub type SeverObserver = Box<dyn Fn(BrokerId, BrokerId) + Send + Sync>;

/// Shared, thread-safe fault switchboard. Clones share state.
#[derive(Clone, Default)]
pub struct FaultInjector {
    armed: Arc<AtomicBool>,
    state: Arc<Mutex<FaultState>>,
    /// Observers notified on every `sever_link`. Kept outside
    /// `FaultState` so firing them never holds the fault lock.
    sever_observers: Arc<Mutex<Vec<SeverObserver>>>,
}

/// Baseline per-operation service time a slow broker's multiplier
/// scales. Kept small so even 10x degradation stays test-friendly.
const BASE_SERVICE_TIME: Duration = Duration::from_micros(200);

impl FaultInjector {
    /// A quiescent injector (all paths clean).
    pub fn new() -> Self {
        Self::default()
    }

    fn rearm(&self) {
        let s = self.state.lock();
        let active = !s.severed.is_empty()
            || !s.slow.is_empty()
            || !s.delivery.is_empty()
            || !s.ack_drops.is_empty();
        self.armed.store(active, Ordering::Release);
    }

    /// Whether any fault is currently active.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    // ----- network partitions -----

    /// Sever the (symmetric) link between two brokers: replication
    /// across it fails until [`FaultInjector::heal_link`] or
    /// [`FaultInjector::heal_all_links`].
    pub fn sever_link(&self, a: BrokerId, b: BrokerId) {
        let mut s = self.state.lock();
        s.severed.insert(ordered(a, b));
        drop(s);
        self.rearm();
        // fire after the partition is in effect, so an observer that
        // kills sockets sees the in-process link already down
        let observers = self.sever_observers.lock();
        for obs in observers.iter() {
            obs(a, b);
        }
    }

    /// Register a callback fired on every [`FaultInjector::sever_link`].
    ///
    /// The wire server uses this to shut down the real TCP connections
    /// it serves when the chaos layer partitions its broker, so under a
    /// `TcpTransport` a simulated severed link also severs the socket.
    pub fn on_sever(&self, observer: SeverObserver) {
        self.sever_observers.lock().push(observer);
    }

    /// Restore one severed link.
    pub fn heal_link(&self, a: BrokerId, b: BrokerId) {
        self.state.lock().severed.remove(&ordered(a, b));
        self.rearm();
    }

    /// Restore every severed link.
    pub fn heal_all_links(&self) {
        self.state.lock().severed.clear();
        self.rearm();
    }

    /// Whether the link between two brokers is currently severed.
    pub fn is_severed(&self, a: BrokerId, b: BrokerId) -> bool {
        if !self.is_armed() {
            return false;
        }
        self.state.lock().severed.contains(&ordered(a, b))
    }

    // ----- slow brokers -----

    /// Degrade a broker: its produce/fetch service time is multiplied
    /// by `multiplier` (values <= 1.0 clear the degradation).
    pub fn set_slow(&self, broker: BrokerId, multiplier: f64) {
        let mut s = self.state.lock();
        if multiplier > 1.0 {
            s.slow.insert(broker, multiplier);
        } else {
            s.slow.remove(&broker);
        }
        drop(s);
        self.rearm();
    }

    /// The extra latency a degraded broker adds to one operation
    /// (zero for healthy brokers).
    pub fn service_penalty(&self, broker: BrokerId) -> Duration {
        if !self.is_armed() {
            return Duration::ZERO;
        }
        match self.state.lock().slow.get(&broker) {
            Some(m) => BASE_SERVICE_TIME.mul_f64(m - 1.0),
            None => Duration::ZERO,
        }
    }

    // ----- delivery faults (client link) -----

    /// Queue `count` one-shot delivery faults on a broker's fetch path.
    pub fn inject_delivery(&self, broker: BrokerId, fault: DeliveryFault, count: u32) {
        let mut s = self.state.lock();
        let q = s.delivery.entry(broker).or_default();
        for _ in 0..count {
            q.push_back(fault);
        }
        drop(s);
        self.rearm();
    }

    /// Pop the next delivery fault for a broker, if any.
    pub fn take_delivery_fault(&self, broker: BrokerId) -> Option<DeliveryFault> {
        if !self.is_armed() {
            return None;
        }
        let mut s = self.state.lock();
        let fault = s.delivery.get_mut(&broker).and_then(|q| q.pop_front());
        if fault.is_some() {
            if s.delivery.get(&broker).map(|q| q.is_empty()).unwrap_or(false) {
                s.delivery.remove(&broker);
            }
            drop(s);
            self.rearm();
        }
        fault
    }

    // ----- ambiguous acks (produce path) -----

    /// Arm `count` ambiguous acks on a broker: each affected produce
    /// appends durably (and replicates) but the client sees a timeout —
    /// the canonical duplicate generator an idempotent producer must
    /// survive.
    pub fn inject_ack_drop(&self, broker: BrokerId, count: u32) {
        if count == 0 {
            return;
        }
        let mut s = self.state.lock();
        *s.ack_drops.entry(broker).or_insert(0) += count;
        drop(s);
        self.rearm();
    }

    /// Consume one pending ack drop for a broker. `true` means the
    /// produce path must swallow this ack after the durable append.
    pub fn take_ack_drop(&self, broker: BrokerId) -> bool {
        if !self.is_armed() {
            return false;
        }
        let mut s = self.state.lock();
        match s.ack_drops.get_mut(&broker) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    s.ack_drops.remove(&broker);
                }
                drop(s);
                self.rearm();
                true
            }
            None => false,
        }
    }

    /// Clear every active fault (the harness's final heal step).
    pub fn clear_all(&self) {
        let mut s = self.state.lock();
        s.severed.clear();
        s.slow.clear();
        s.delivery.clear();
        s.ack_drops.clear();
        drop(s);
        self.rearm();
    }
}

fn ordered(a: BrokerId, b: BrokerId) -> (BrokerId, BrokerId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_injector_is_disarmed() {
        let f = FaultInjector::new();
        assert!(!f.is_armed());
        assert!(!f.is_severed(BrokerId(0), BrokerId(1)));
        assert_eq!(f.service_penalty(BrokerId(0)), Duration::ZERO);
        assert_eq!(f.take_delivery_fault(BrokerId(0)), None);
    }

    #[test]
    fn links_are_symmetric_and_healable() {
        let f = FaultInjector::new();
        f.sever_link(BrokerId(1), BrokerId(0));
        assert!(f.is_armed());
        assert!(f.is_severed(BrokerId(0), BrokerId(1)));
        assert!(f.is_severed(BrokerId(1), BrokerId(0)));
        assert!(!f.is_severed(BrokerId(0), BrokerId(2)));
        f.heal_link(BrokerId(0), BrokerId(1));
        assert!(!f.is_severed(BrokerId(0), BrokerId(1)));
        assert!(!f.is_armed(), "healing the last fault disarms");
    }

    #[test]
    fn slow_broker_penalty_scales() {
        let f = FaultInjector::new();
        f.set_slow(BrokerId(0), 3.0);
        let p = f.service_penalty(BrokerId(0));
        assert_eq!(p, BASE_SERVICE_TIME.mul_f64(2.0));
        assert_eq!(f.service_penalty(BrokerId(1)), Duration::ZERO);
        f.set_slow(BrokerId(0), 1.0); // clears
        assert_eq!(f.service_penalty(BrokerId(0)), Duration::ZERO);
    }

    #[test]
    fn delivery_faults_are_one_shot_fifo() {
        let f = FaultInjector::new();
        f.inject_delivery(BrokerId(2), DeliveryFault::Drop, 2);
        f.inject_delivery(BrokerId(2), DeliveryFault::Duplicate { rewind: 3 }, 1);
        assert_eq!(f.take_delivery_fault(BrokerId(2)), Some(DeliveryFault::Drop));
        assert_eq!(f.take_delivery_fault(BrokerId(2)), Some(DeliveryFault::Drop));
        assert_eq!(
            f.take_delivery_fault(BrokerId(2)),
            Some(DeliveryFault::Duplicate { rewind: 3 })
        );
        assert_eq!(f.take_delivery_fault(BrokerId(2)), None);
        assert!(!f.is_armed());
    }

    #[test]
    fn ack_drops_are_counted_and_one_shot() {
        let f = FaultInjector::new();
        assert!(!f.take_ack_drop(BrokerId(0)));
        f.inject_ack_drop(BrokerId(0), 2);
        assert!(f.is_armed());
        assert!(f.take_ack_drop(BrokerId(0)));
        assert!(!f.take_ack_drop(BrokerId(1)), "scoped to the armed broker");
        assert!(f.take_ack_drop(BrokerId(0)));
        assert!(!f.take_ack_drop(BrokerId(0)));
        assert!(!f.is_armed(), "consuming the last drop disarms");
    }

    #[test]
    fn sever_observers_fire_per_severed_link() {
        use std::sync::atomic::AtomicU32;
        let f = FaultInjector::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        f.on_sever(Box::new(move |a, b| {
            assert_eq!(ordered(a, b), (BrokerId(0), BrokerId(2)));
            h.fetch_add(1, Ordering::SeqCst);
        }));
        f.sever_link(BrokerId(2), BrokerId(0));
        f.sever_link(BrokerId(0), BrokerId(2));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        f.heal_all_links();
        assert_eq!(hits.load(Ordering::SeqCst), 2, "healing does not fire observers");
    }

    #[test]
    fn clear_all_resets_everything() {
        let f = FaultInjector::new();
        f.sever_link(BrokerId(0), BrokerId(1));
        f.set_slow(BrokerId(1), 5.0);
        f.inject_delivery(BrokerId(0), DeliveryFault::Delay { millis: 5 }, 3);
        f.inject_ack_drop(BrokerId(2), 4);
        f.clear_all();
        assert!(!f.is_armed());
        assert_eq!(f.take_delivery_fault(BrokerId(0)), None);
        assert!(!f.take_ack_drop(BrokerId(2)));
    }
}
