//! The networked data plane, end to end over real loopback sockets:
//! SCRAM-authenticated produce→fetch round trips, the delivery-
//! guarantee drill across a severed socket (zero loss, zero
//! duplicates via the EOS idempotent producer), chaos-to-socket
//! integration, and the revoked-token regression.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus::auth::globus::AuthServer;
use octopus::auth::scram::ScramStore;
use octopus::auth::Scope;
use octopus::broker::{BrokerId, RecordBatch};
use octopus::prelude::*;
use octopus::sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
use octopus::wire::{
    Authenticator, Credentials, TcpTransport, TcpTransportConfig, Transport, WireServer,
    WireServerConfig,
};

fn ev(s: &str) -> Event {
    Event::from_bytes(s.as_bytes().to_vec())
}

/// Spin up a cluster + wire server with one SCRAM user, returning a
/// connected transport for that user.
fn scram_fixture(
    partitions: u32,
) -> (Cluster, WireServer, Arc<TcpTransport>) {
    let cluster = Cluster::new(2);
    cluster
        .create_topic("t", TopicConfig::default().with_partitions(partitions))
        .unwrap();
    let scram = Arc::new(ScramStore::new());
    scram.add_user("ada", "correct horse", Uid(7));
    let server = WireServer::bind(
        cluster.clone(),
        Authenticator::closed().with_scram(scram),
        "127.0.0.1:0",
        WireServerConfig::default(),
    )
    .unwrap();
    let transport = Arc::new(TcpTransport::connect(
        server.local_addr().to_string(),
        TcpTransportConfig {
            credentials: Credentials::Scram {
                username: "ada".into(),
                password: "correct horse".into(),
            },
            ..Default::default()
        },
    ));
    (cluster, server, transport)
}

#[test]
fn scram_produce_fetch_roundtrip_over_loopback() {
    let (_cluster, _server, transport) = scram_fixture(2);
    // the handshake authenticates eagerly and yields the principal
    assert_eq!(transport.principal().unwrap(), Some(Uid(7)));

    let producer = Producer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ProducerConfig::default(),
        None,
    );
    for i in 0..25 {
        producer
            .send("t", Event::builder().key("k").payload(format!("m{i}").into_bytes()).build())
            .unwrap();
    }
    producer.flush();

    let mut consumer = Consumer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ConsumerConfig { group: "g".into(), auto_commit_interval: None, ..Default::default() },
        None,
    );
    consumer.subscribe(&["t"]).unwrap();
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < 25 && Instant::now() < deadline {
        got.extend(consumer.poll().unwrap());
    }
    assert_eq!(got.len(), 25, "every produced record consumed back over TCP");
    consumer.commit_sync().unwrap();
    // committed offsets are visible through the same wire APIs
    let committed = transport.offset_committed("g", "t", got[0].partition).unwrap();
    assert!(committed.is_some());
}

#[test]
fn wrong_scram_password_is_refused_not_hung() {
    let (_cluster, server, _good) = scram_fixture(1);
    let bad = TcpTransport::connect(
        server.local_addr().to_string(),
        TcpTransportConfig {
            credentials: Credentials::Scram {
                username: "ada".into(),
                password: "incorrect horse".into(),
            },
            ..Default::default()
        },
    );
    let start = Instant::now();
    let err = bad.ensure_connected().unwrap_err();
    assert!(
        matches!(err, OctoError::Unauthenticated(_)),
        "expected Unauthenticated, got {err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(5), "refusal was prompt, not a hang");
}

/// The delivery-guarantee drill over real sockets: an idempotent
/// producer keeps sending while the server severs every live
/// connection mid-stream. The SDK retry layer reconnects and re-sends;
/// acked records must all be present exactly once afterwards.
#[test]
fn acked_records_survive_severed_socket_without_duplicates() {
    let (cluster, server, transport) = scram_fixture(1);
    let producer = Producer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ProducerConfig {
            retries: 40,
            retry_backoff: Duration::from_millis(25),
            linger: Duration::from_millis(1),
            ..ProducerConfig::idempotent()
        },
        None,
    );

    const TOTAL: usize = 120;
    let mut handles = Vec::new();
    for i in 0..TOTAL {
        // sever every live socket a third of the way in — acked and
        // in-flight records alike must survive the reconnect
        if i == TOTAL / 3 {
            producer.flush();
            assert!(server.sever_connections() > 0, "a live connection was cut");
        }
        loop {
            match producer.send("t", ev(&format!("rec-{i}"))) {
                Ok(h) => {
                    handles.push(h);
                    break;
                }
                // BufferFull can only appear while the cut connection
                // is re-dialing; drain and retry
                Err(OctoError::BufferFull { .. }) => producer.flush(),
                Err(e) => panic!("send failed: {e}"),
            }
        }
    }
    producer.flush();
    let mut acked = 0;
    for h in handles {
        if let octopus::sdk::DeliveryReport::Delivered(_) = h.wait() {
            acked += 1;
        }
    }
    assert_eq!(acked, TOTAL, "every record was acknowledged despite the severed socket");

    // audit the log directly (bypassing the wire) for loss/duplication
    let records = cluster.fetch("t", 0, 0, 10_000).unwrap();
    let mut seen = HashSet::new();
    for r in &records {
        let payload = String::from_utf8_lossy(&r.value).to_string();
        assert!(seen.insert(payload.clone()), "duplicate record {payload}");
    }
    assert_eq!(records.len(), TOTAL, "zero loss, zero duplicates");
}

/// Chaos integration: `FaultKind::NetworkPartition` (a severed link in
/// the fault injector) must shut down the wire server's real sockets,
/// and the transport must transparently reconnect once re-dialed.
#[test]
fn chaos_partition_severs_real_sockets_and_client_reconnects() {
    let (cluster, server, transport) = scram_fixture(1);
    transport.ensure_connected().unwrap();
    assert!(server.connection_count() >= 1);

    // partition the server's broker: the observer kills live sockets
    cluster.fault_injector().sever_link(BrokerId(0), BrokerId(1));
    cluster.fault_injector().heal_all_links();

    // the next call may land on the dead connection (retriable error)
    // but a fresh call after that re-dials and re-authenticates
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match transport.latest_offset("t", 0) {
            Ok(_) => break,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("transport never recovered: {e}"),
        }
    }
    assert_eq!(transport.principal().unwrap(), Some(Uid(7)), "re-authenticated after the cut");

    // the recovery left an audit trail in the transport's registry:
    // the poisoned connection, the re-dial, and the re-authentication
    // are all counted events, not silent magic
    let metrics = transport.metrics();
    assert!(
        metrics.counter("octopus_tcp_poisoned_connections_total").get() >= 1,
        "the severed connection was poisoned"
    );
    assert!(metrics.counter("octopus_tcp_redials_total").get() >= 1, "client re-dialed");
    assert!(metrics.counter("octopus_tcp_reauths_total").get() >= 1, "client re-authenticated");
    assert!(
        metrics.counter("octopus_tcp_connects_total").get() >= 2,
        "first dial plus at least one recovery dial"
    );
}

/// Distributed-trace continuity across a chaos cut: produce frames
/// carry the client's trace context, so broker-side spans keep joining
/// the client's traces even after the socket was severed and the
/// transport re-dialed.
#[test]
fn trace_ids_stay_continuous_across_sever_and_reconnect() {
    use octopus::types::SpanSink;
    use std::collections::BTreeSet;

    let cluster = Cluster::builder(2).spans(Arc::new(SpanSink::new(1))).build();
    cluster.create_topic("t", TopicConfig::default()).unwrap();
    let scram = Arc::new(ScramStore::new());
    scram.add_user("ada", "correct horse", Uid(7));
    let server = WireServer::bind(
        cluster.clone(),
        Authenticator::closed().with_scram(scram),
        "127.0.0.1:0",
        WireServerConfig::default(),
    )
    .unwrap();
    let transport = Arc::new(TcpTransport::connect(
        server.local_addr().to_string(),
        TcpTransportConfig {
            credentials: Credentials::Scram {
                username: "ada".into(),
                password: "correct horse".into(),
            },
            trace_sample_every: 1,
            ..Default::default()
        },
    ));
    let producer = Producer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ProducerConfig {
            retries: 40,
            retry_backoff: Duration::from_millis(25),
            ..ProducerConfig::idempotent()
        },
        None,
    );

    for i in 0..5 {
        producer.send_sync("t", ev(&format!("pre-{i}"))).unwrap();
    }
    let traces_before: BTreeSet<u64> =
        transport.span_sink().snapshot().iter().map(|s| s.trace_id).collect();
    assert!(!traces_before.is_empty(), "pre-cut produces were traced");

    // cut every live socket, then keep producing: the SDK retry layer
    // re-dials and the new connection keeps stamping trace contexts
    assert!(server.sever_connections() > 0);
    for i in 0..5 {
        producer.send_sync("t", ev(&format!("post-{i}"))).unwrap();
    }

    let client_traces: BTreeSet<u64> =
        transport.span_sink().snapshot().iter().map(|s| s.trace_id).collect();
    let broker_traces: BTreeSet<u64> =
        cluster.span_sink().snapshot().iter().map(|s| s.trace_id).collect();
    let post_cut: BTreeSet<u64> = client_traces.difference(&traces_before).copied().collect();
    assert!(!post_cut.is_empty(), "post-cut produces were traced");
    for id in &post_cut {
        assert!(
            broker_traces.contains(id),
            "trace {id} produced after the reconnect never reached the broker's spans"
        );
    }
    assert!(
        transport.metrics().counter("octopus_tcp_redials_total").get() >= 1,
        "the continuity really crossed a reconnect"
    );
}

/// Remote scraping end to end: `DescribeMetrics` returns a registry
/// snapshot that renders to parseable exposition text, and
/// `DescribeHealth` a decodable health report — the fleet poller's
/// building blocks.
#[test]
fn describe_metrics_roundtrips_exposition_over_loopback() {
    use octopus::types::parse_exposition;

    let (_cluster, _server, transport) = scram_fixture(1);
    let producer = Producer::over(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ProducerConfig::default(),
        None,
    );
    for i in 0..3 {
        producer.send_sync("t", ev(&format!("m{i}"))).unwrap();
    }

    let remote = transport.describe_metrics(false).unwrap();
    assert_eq!(remote.broker_id, 0);
    assert!(remote.spans.is_empty(), "spans not requested, none shipped");
    let requests = remote
        .snapshot
        .counters
        .get("octopus_wire_requests_total")
        .copied()
        .unwrap_or(0);
    assert!(requests > 0, "the scrape sees the requests that preceded it");

    // the snapshot renders into the same exposition format the OWS
    // /metrics route serves, and that text parses back
    let text = remote.snapshot.render_text();
    let samples = parse_exposition(&text).unwrap();
    let sample = samples
        .iter()
        .find(|s| s.name == "octopus_wire_requests_total")
        .expect("exposition carries the wire counter");
    assert!(sample.value > 0.0);
    assert!(
        samples.iter().any(|s| s.name == "octopus_wire_api_requests_total"
            && s.label("api") == Some("produce")),
        "per-api labeled counters survive the trip"
    );

    let health = transport.describe_health().unwrap();
    assert!(!health.report.brokers.is_empty(), "health report covers the brokers");
    assert!(health.lag.is_empty(), "no consumer groups yet");
}

/// Regression: a revoked bearer token draws `AuthFailed` promptly —
/// mapped to a non-retriable `Unauthenticated` — instead of hanging
/// until some outer timeout.
#[test]
fn revoked_token_gets_auth_failed_within_idle_timeout() {
    let cluster = Cluster::new(2);
    cluster.create_topic("t", TopicConfig::default()).unwrap();
    let auth = AuthServer::new();
    auth.register_provider("lab.org", "Lab");
    auth.register_user("grace@lab.org", "pw").unwrap();
    let client = auth.register_client("octopus", vec![]);
    let (token, _refresh, _info) = auth
        .login("grace@lab.org", "pw", client.id, vec![Scope("fabric".into())])
        .unwrap();
    auth.revoke(&token);

    let idle_timeout = Duration::from_secs(2);
    let _server = WireServer::bind(
        cluster,
        Authenticator::closed().with_tokens(auth),
        "127.0.0.1:0",
        WireServerConfig { idle_timeout, ..Default::default() },
    )
    .unwrap();
    let transport = TcpTransport::connect(
        _server.local_addr().to_string(),
        TcpTransportConfig {
            credentials: Credentials::Token(token.0),
            ..Default::default()
        },
    );
    let start = Instant::now();
    let err = transport.ensure_connected().unwrap_err();
    assert!(
        matches!(&err, OctoError::Unauthenticated(msg) if msg.contains("revoked")),
        "expected revoked-token AuthFailed, got {err:?}"
    );
    assert!(start.elapsed() < idle_timeout, "the refusal beat the idle timeout");
}

/// Admin over the wire: topic create/list/config/delete through the
/// typed client's wire backend.
#[test]
fn topic_admin_over_wire_backend() {
    let (_cluster, _server, transport) = scram_fixture(1);
    let admin =
        octopus::sdk::OctopusClient::over_wire(Arc::clone(&transport) as Arc<dyn Transport>);
    admin
        .register_topic("flows", serde_json::json!({"partitions": 3}))
        .unwrap();
    let mut topics = admin.list_topics().unwrap();
    topics.sort();
    assert_eq!(topics, vec!["flows".to_string(), "t".to_string()]);
    assert_eq!(transport.partition_count("flows").unwrap(), 3);
    let cfg = admin.topic_config("flows").unwrap();
    assert_eq!(cfg["partitions"], 3);
    admin.release_topic("flows").unwrap();
    // control-plane-only calls are typed errors on the wire backend
    assert!(matches!(
        admin.create_key(),
        Err(OctoError::Invalid(_))
    ));
}

/// Regression (stale metadata after a leadership move): with
/// strict-leadership servers fronting each broker, a produce routed by
/// a long-TTL metadata cache at a demoted leader must invalidate the
/// cache on the `NotLeader` bounce and re-route to the hinted leader's
/// peer immediately — not wait out the TTL, not duplicate, not drop.
#[test]
fn stale_leader_cache_invalidated_on_not_leader_bounce() {
    let cluster = Cluster::new(2);
    cluster
        .create_topic(
            "t",
            TopicConfig::default().with_partitions(1).with_replication(2),
        )
        .unwrap();
    let bind = |id: u32| {
        WireServer::bind(
            cluster.clone(),
            Authenticator::open(),
            "127.0.0.1:0",
            WireServerConfig {
                broker_id: BrokerId(id),
                strict_leadership: true,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let server0 = bind(0);
    let server1 = bind(1);
    let servers = [&server0, &server1];
    let leader = cluster.leader_broker("t", 0).unwrap();
    let follower = BrokerId(1 - leader.0);

    // client connects to the current leader's server, with a metadata
    // TTL so long that only explicit invalidation can refresh it
    let transport = TcpTransport::connect(
        servers[leader.0 as usize].local_addr().to_string(),
        TcpTransportConfig { metadata_ttl: Duration::from_secs(3600), ..Default::default() },
    );
    transport.add_peer(follower.0, servers[follower.0 as usize].local_addr().to_string());
    transport.add_peer(leader.0, servers[leader.0 as usize].local_addr().to_string());

    let r = transport
        .produce_batch("t", 0, RecordBatch::new(vec![ev("before-move")]), AckLevel::Leader)
        .unwrap();
    assert_eq!(r.base_offset, 0);

    // leadership moves mid-session; the cached route is now stale
    cluster.move_leader("t", 0, follower).unwrap();
    assert_eq!(cluster.leader_broker("t", 0).unwrap(), follower);

    let start = Instant::now();
    let r = transport
        .produce_batch("t", 0, RecordBatch::new(vec![ev("after-move")]), AckLevel::Leader)
        .unwrap();
    assert_eq!(r.base_offset, 1, "re-routed produce appended exactly once");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "re-route was immediate, not a TTL wait"
    );

    let bounced = transport
        .metrics()
        .snapshot()
        .counters
        .get("octopus_tcp_stale_metadata_retries_total")
        .copied()
        .unwrap_or(0);
    assert!(bounced >= 1, "the NotLeader bounce was counted (got {bounced})");

    // both records present exactly once, in order
    let records = transport.fetch("t", 0, 0, 10, None).unwrap();
    let payloads: Vec<&[u8]> = records.iter().map(|r| r.value.as_ref()).collect();
    assert_eq!(payloads, vec![b"before-move".as_ref(), b"after-move".as_ref()]);
}
