//! Payload compression.
//!
//! §VII-C lists compression among the cost-mitigation levers ("any
//! service could use these and other methods (e.g., rate-limiting
//! consumers, compression, proxies) to manage costs"): egress is billed
//! per byte, and scientific event payloads (JSON telemetry, file paths)
//! compress well. This module implements an LZSS-style codec — greedy
//! longest-match against a sliding window, literal/match tokens packed
//! under flag bytes — with no external dependencies.
//!
//! Framing: output starts with a 1-byte tag ([`Codec`] discriminant).
//! `Codec::None` passes data through, so decompression is total over
//! anything `compress` produced.

use serde::{Deserialize, Serialize};

use crate::{OctoError, OctoResult};

/// Compression codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Codec {
    /// No compression (tag 0).
    #[default]
    None,
    /// LZSS sliding-window compression (tag 1).
    Lzss,
}

const TAG_NONE: u8 = 0;
const TAG_LZSS: u8 = 1;

/// Sliding-window size (12-bit distances).
const WINDOW: usize = 4096;
/// Minimum match worth encoding (a token costs 2 bytes + flag bit).
const MIN_MATCH: usize = 3;
/// Maximum match length (4-bit length field + MIN_MATCH).
const MAX_MATCH: usize = MIN_MATCH + 15;

/// Compress `data` with `codec`. Output is framed with the codec tag.
/// LZSS falls back to `None` framing when compression would not shrink
/// the payload (incompressible data costs only the 1-byte tag).
pub fn compress(codec: Codec, data: &[u8]) -> Vec<u8> {
    match codec {
        Codec::None => frame_none(data),
        Codec::Lzss => {
            let body = lzss_compress(data);
            if body.len() + 1 < data.len() {
                let mut out = Vec::with_capacity(body.len() + 1);
                out.push(TAG_LZSS);
                out.extend_from_slice(&body);
                out
            } else {
                frame_none(data)
            }
        }
    }
}

fn frame_none(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 1);
    out.push(TAG_NONE);
    out.extend_from_slice(data);
    out
}

/// Decompress framed data produced by [`compress`].
pub fn decompress(data: &[u8]) -> OctoResult<Vec<u8>> {
    match data.first() {
        None => Err(OctoError::Invalid("empty compressed frame".into())),
        Some(&TAG_NONE) => Ok(data[1..].to_vec()),
        Some(&TAG_LZSS) => lzss_decompress(&data[1..]),
        Some(tag) => Err(OctoError::Invalid(format!("unknown codec tag {tag}"))),
    }
}

/// Greedy LZSS: 8 tokens per flag byte; flag bit 1 = (distance, length)
/// match encoded as 12+4 bits in two bytes, flag bit 0 = literal byte.
fn lzss_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0usize;
    // token buffer under a shared flag byte
    let mut flags = 0u8;
    let mut nflags = 0u8;
    let mut pending: Vec<u8> = Vec::with_capacity(17);
    // hash chains for match finding: 3-byte prefix -> most recent pos
    let mut head = vec![usize::MAX; 1 << 13];
    let mut prev = vec![usize::MAX; data.len().max(1)];
    let hash = |d: &[u8]| -> usize {
        let h = (d[0] as usize) | ((d[1] as usize) << 8) | ((d[2] as usize) << 16);
        (h.wrapping_mul(0x9E37_79B1) >> 19) & ((1 << 13) - 1)
    };
    let flush = |out: &mut Vec<u8>, flags: &mut u8, nflags: &mut u8, pending: &mut Vec<u8>| {
        out.push(*flags);
        out.extend_from_slice(pending);
        *flags = 0;
        *nflags = 0;
        pending.clear();
    };
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(&data[i..]);
            let mut cand = head[h];
            let mut steps = 0;
            while cand != usize::MAX && i - cand <= WINDOW && steps < 32 {
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                }
                cand = prev[cand];
                steps += 1;
            }
            // insert current position into the chain
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            // match token: 12-bit distance (1..=4096), 4-bit length
            let d = best_dist - 1; // 0..4095
            let l = best_len - MIN_MATCH; // 0..15
            pending.push((d & 0xff) as u8);
            pending.push((((d >> 8) & 0x0f) as u8) | ((l as u8) << 4));
            flags |= 1 << nflags;
            // index the skipped positions so later matches can find them
            for k in 1..best_len {
                let pos = i + k;
                if pos + MIN_MATCH <= data.len() {
                    let h = hash(&data[pos..]);
                    prev[pos] = head[h];
                    head[h] = pos;
                }
            }
            i += best_len;
        } else {
            pending.push(data[i]);
            i += 1;
        }
        nflags += 1;
        if nflags == 8 {
            flush(&mut out, &mut flags, &mut nflags, &mut pending);
        }
    }
    if nflags > 0 {
        flush(&mut out, &mut flags, &mut nflags, &mut pending);
    }
    out
}

fn lzss_decompress(body: &[u8]) -> OctoResult<Vec<u8>> {
    let mut out = Vec::with_capacity(body.len() * 2);
    let mut i = 0usize;
    while i < body.len() {
        let flags = body[i];
        i += 1;
        for bit in 0..8 {
            if i >= body.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 1 >= body.len() {
                    return Err(OctoError::Invalid("truncated LZSS match token".into()));
                }
                let b0 = body[i] as usize;
                let b1 = body[i + 1] as usize;
                i += 2;
                let dist = (b0 | ((b1 & 0x0f) << 8)) + 1;
                let len = (b1 >> 4) + MIN_MATCH;
                if dist > out.len() {
                    return Err(OctoError::Invalid(format!(
                        "LZSS distance {dist} exceeds output {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: Codec, data: &[u8]) -> Vec<u8> {
        let framed = compress(codec, data);
        decompress(&framed).unwrap()
    }

    #[test]
    fn none_codec_roundtrips() {
        for data in [&b""[..], b"x", b"hello world"] {
            assert_eq!(roundtrip(Codec::None, data), data);
        }
    }

    #[test]
    fn lzss_roundtrips_repetitive_data() {
        let data = b"abcabcabcabcabcabcabcabcabc".repeat(10);
        let framed = compress(Codec::Lzss, &data);
        assert!(framed.len() < data.len() / 3, "{} vs {}", framed.len(), data.len());
        assert_eq!(decompress(&framed).unwrap(), data);
    }

    #[test]
    fn lzss_shrinks_jsonish_events() {
        let event = serde_json::json!({
            "event_type": "created",
            "path": "/pfs/experiment-42/jobs/run-000133/out-0042.h5",
            "fs": "pfs0",
            "size": 67108864,
            "metadata": {"instrument": "xrd-beamline", "operator": "alice@uchicago.edu"}
        });
        let data = serde_json::to_vec(&vec![event.clone(), event.clone(), event]).unwrap();
        let framed = compress(Codec::Lzss, &data);
        assert!(framed.len() < data.len() * 2 / 3, "{} vs {}", framed.len(), data.len());
        assert_eq!(decompress(&framed).unwrap(), data);
    }

    #[test]
    fn incompressible_data_falls_back_to_none() {
        // pseudo-random bytes: LZSS would expand them, so the frame is
        // tagged None and costs exactly one byte
        let mut state = 0x853c_49e6_748f_ea9bu64;
        let data: Vec<u8> = (0..1000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect();
        let framed = compress(Codec::Lzss, &data);
        assert_eq!(framed.len(), data.len() + 1);
        assert_eq!(framed[0], TAG_NONE);
        assert_eq!(decompress(&framed).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(roundtrip(Codec::Lzss, b""), b"");
        assert_eq!(roundtrip(Codec::Lzss, b"a"), b"a");
        assert_eq!(roundtrip(Codec::Lzss, b"ab"), b"ab");
        assert_eq!(roundtrip(Codec::Lzss, b"aaa"), b"aaa");
    }

    #[test]
    fn malformed_frames_error() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[99, 1, 2]).is_err()); // unknown tag
        // truncated match token
        assert!(decompress(&[TAG_LZSS, 0b0000_0001, 0x05]).is_err());
        // distance beyond output
        assert!(decompress(&[TAG_LZSS, 0b0000_0001, 0xff, 0x0f]).is_err());
    }

    #[test]
    fn long_runs_compress_hard() {
        let data = vec![b'x'; 10_000];
        let framed = compress(Codec::Lzss, &data);
        assert!(framed.len() < 1500, "run-length-ish case: {}", framed.len());
        assert_eq!(decompress(&framed).unwrap(), data);
    }
}
