//! The login manager: authentication flow + token caching + refresh.
//!
//! "The SDK ... includes a Globus Auth login manager to perform an
//! authentication flow and cache tokens on the user's behalf. Tokens and
//! MSK secrets are stored in a local SQLite database and automatically
//! refreshed as needed" (§IV-E).

use std::sync::Arc;

use octopus_auth::{AccessToken, AuthServer, Scope, TokenStatus};
use octopus_types::{OctoError, OctoResult, Uid};

use crate::tokenstore::TokenStore;

/// Manages a user's tokens against an authorization server.
pub struct LoginManager {
    auth: AuthServer,
    client_id: Uid,
    store: Arc<TokenStore>,
}

impl LoginManager {
    /// A manager for `client_id` (the registered SDK application),
    /// caching into `store`.
    pub fn new(auth: AuthServer, client_id: Uid, store: Arc<TokenStore>) -> Self {
        LoginManager { auth, client_id, store }
    }

    /// Perform the authentication flow and cache the resulting tokens.
    pub fn login(&self, username: &str, password: &str, scopes: Vec<Scope>) -> OctoResult<AccessToken> {
        let (token, refresh, info) = self.auth.login(username, password, self.client_id, scopes)?;
        self.store.put("access_token", token.as_str())?;
        self.store.put("refresh_token", &refresh)?;
        self.store.put("username", &info.username)?;
        Ok(token)
    }

    /// The cached identity's username, if logged in.
    pub fn username(&self) -> Option<String> {
        self.store.get("username")
    }

    /// Whether a cached login exists (it may still be expired — `token`
    /// will transparently refresh it).
    pub fn is_logged_in(&self) -> bool {
        self.store.get("access_token").is_some()
    }

    /// A valid access token: the cached one if still active, otherwise
    /// refreshed via the cached refresh token ("automatically refreshed
    /// as needed").
    pub fn token(&self) -> OctoResult<AccessToken> {
        let cached = self
            .store
            .get("access_token")
            .ok_or_else(|| OctoError::Unauthenticated("not logged in".into()))?;
        let token = AccessToken(cached);
        match self.auth.introspect(&token).0 {
            TokenStatus::Active => Ok(token),
            _ => self.refresh(),
        }
    }

    /// Force a refresh, rotating both tokens in the store.
    pub fn refresh(&self) -> OctoResult<AccessToken> {
        let refresh = self
            .store
            .get("refresh_token")
            .ok_or_else(|| OctoError::Unauthenticated("no refresh token cached".into()))?;
        let (token, _info) = self.auth.refresh(&refresh)?;
        self.store.put("access_token", token.as_str())?;
        if let Some(new_refresh) = self.auth.refresh_token_of(&token) {
            self.store.put("refresh_token", &new_refresh)?;
        }
        Ok(token)
    }

    /// Drop the cached login.
    pub fn logout(&self) -> OctoResult<()> {
        if let Some(t) = self.store.get("access_token") {
            self.auth.revoke(&AccessToken(t));
        }
        self.store.delete("access_token")?;
        self.store.delete("refresh_token")?;
        self.store.delete("username")?;
        Ok(())
    }

    /// Cache an IAM key pair (MSK credentials) alongside the tokens.
    pub fn store_iam_key(&self, key_id: &str, secret: &str) -> OctoResult<()> {
        self.store.put("iam_key_id", key_id)?;
        self.store.put("iam_secret", secret)
    }

    /// The cached IAM key pair, if any.
    pub fn iam_key(&self) -> Option<(String, String)> {
        Some((self.store.get("iam_key_id")?, self.store.get("iam_secret")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::{ManualClock, Timestamp};
    use std::time::Duration;

    fn setup() -> (LoginManager, AuthServer, ManualClock) {
        let clock = ManualClock::new(Timestamp::from_millis(0));
        let auth = AuthServer::with_clock(Arc::new(clock.clone()));
        auth.register_provider("anl.gov", "Argonne");
        auth.register_user("ryan@anl.gov", "pw").unwrap();
        let client = auth.register_client("octopus-sdk", vec![]);
        let lm = LoginManager::new(auth.clone(), client.id, Arc::new(TokenStore::in_memory()));
        (lm, auth, clock)
    }

    #[test]
    fn login_caches_tokens() {
        let (lm, _auth, _clock) = setup();
        assert!(!lm.is_logged_in());
        assert!(lm.token().is_err());
        let t = lm.login("ryan@anl.gov", "pw", vec![Scope::new("ows:all")]).unwrap();
        assert!(lm.is_logged_in());
        assert_eq!(lm.username().as_deref(), Some("ryan@anl.gov"));
        assert_eq!(lm.token().unwrap(), t);
    }

    #[test]
    fn expired_token_is_refreshed_transparently() {
        let (lm, auth, clock) = setup();
        auth.set_token_ttl(Duration::from_secs(60));
        let t1 = lm.login("ryan@anl.gov", "pw", vec![]).unwrap();
        clock.advance(Duration::from_secs(120));
        let t2 = lm.token().unwrap();
        assert_ne!(t1, t2, "token must rotate");
        assert_eq!(auth.introspect(&t2).0, TokenStatus::Active);
        // repeated refreshes keep working (refresh token rotates too)
        clock.advance(Duration::from_secs(120));
        let t3 = lm.token().unwrap();
        assert_ne!(t2, t3);
        assert_eq!(auth.introspect(&t3).0, TokenStatus::Active);
    }

    #[test]
    fn logout_revokes_and_clears() {
        let (lm, auth, _clock) = setup();
        let t = lm.login("ryan@anl.gov", "pw", vec![]).unwrap();
        lm.logout().unwrap();
        assert!(!lm.is_logged_in());
        assert_eq!(auth.introspect(&t).0, TokenStatus::Revoked);
        assert!(lm.token().is_err());
    }

    #[test]
    fn iam_keys_cached() {
        let (lm, _auth, _clock) = setup();
        assert!(lm.iam_key().is_none());
        lm.store_iam_key("OKIA123", "s3cr3t").unwrap();
        assert_eq!(lm.iam_key(), Some(("OKIA123".into(), "s3cr3t".into())));
    }

    #[test]
    fn bad_credentials_leave_store_clean() {
        let (lm, _auth, _clock) = setup();
        assert!(lm.login("ryan@anl.gov", "wrong", vec![]).is_err());
        assert!(!lm.is_logged_in());
    }
}
