//! Flush-policy sweep: append latency and throughput of the durable
//! storage engine under each [`FlushPolicy`], against the volatile
//! baseline.
//!
//! The sweep quantifies the durability tax: `PerBatch` pays an fsync on
//! every acknowledged batch (the only policy whose acks survive power
//! loss), `IntervalMs` amortizes it over a time window, `OsManaged`
//! leaves flushing to the page cache. Results land in
//! `results/flush_policies.txt`.
//!
//! `cargo run --release -p octopus-bench --bin flush_policies [-- records]`

use std::time::Instant;

use octopus_bench::{figure_header, human_rate, write_result};
use octopus_broker::{AckLevel, Cluster, FlushPolicy, RecordBatch, TempDir, TopicConfig};
use octopus_types::{AtomicHistogram, Event};

struct Sweep {
    label: &'static str,
    policy: Option<FlushPolicy>,
}

struct Row {
    label: &'static str,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    eps: f64,
    flushes: u64,
}

fn run(policy: Option<FlushPolicy>, records: usize) -> (AtomicHistogram, f64, u64) {
    let tmp = TempDir::new("octopus-data-bench");
    let cluster = match policy {
        Some(p) => Cluster::builder(1).data_dir(tmp.path()).flush_policy(p).build(),
        None => Cluster::builder(1).build(),
    };
    cluster
        .create_topic("bench", TopicConfig::default().with_partitions(1).with_replication(1))
        .expect("bench topic");
    let payload = vec![0xA5u8; 1024];
    let hist = AtomicHistogram::new();
    let t0 = Instant::now();
    for _ in 0..records {
        let batch = RecordBatch::new(vec![Event::from_bytes(payload.clone())]);
        let t = Instant::now();
        cluster.produce_batch("bench", 0, batch, AckLevel::All).expect("append");
        hist.record(t.elapsed().as_nanos() as u64);
    }
    let eps = records as f64 / t0.elapsed().as_secs_f64();
    let flushes = cluster
        .metrics()
        .snapshot()
        .counters
        .get("octopus_store_flushes_total")
        .copied()
        .unwrap_or(0);
    (hist, eps, flushes)
}

fn main() {
    let records: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    figure_header(
        "FLUSH POLICIES — append latency vs durability guarantee",
        "1 broker, 1 KB events, acks=all; PerBatch survives power loss, the rest trade that away",
    );

    let sweeps = [
        Sweep { label: "volatile (baseline)", policy: None },
        Sweep { label: "PerBatch", policy: Some(FlushPolicy::PerBatch) },
        Sweep { label: "IntervalMs(5)", policy: Some(FlushPolicy::IntervalMs(5)) },
        Sweep { label: "OsManaged", policy: Some(FlushPolicy::OsManaged) },
    ];

    let mut rows = Vec::new();
    for s in &sweeps {
        let (hist, eps, flushes) = run(s.policy, records);
        let snap = hist.snapshot();
        rows.push(Row {
            label: s.label,
            p50_us: snap.median() as f64 / 1e3,
            p99_us: snap.p99() as f64 / 1e3,
            max_us: snap.max() as f64 / 1e3,
            eps,
            flushes,
        });
    }

    let mut table = String::new();
    table.push_str(&format!(
        "{:<20} {:>10} {:>10} {:>10} {:>12} {:>9}\n",
        "policy", "p50 us", "p99 us", "max us", "records/s", "fsyncs"
    ));
    for r in &rows {
        table.push_str(&format!(
            "{:<20} {:>10.1} {:>10.1} {:>10.1} {:>12} {:>9}\n",
            r.label,
            r.p50_us,
            r.p99_us,
            r.max_us,
            human_rate(r.eps),
            r.flushes
        ));
    }
    print!("{table}");

    let base = rows[0].p50_us.max(0.001);
    println!("\nshape checks:");
    println!("  PerBatch durability tax at p50: {:.1}x the volatile baseline", rows[1].p50_us / base);
    println!(
        "  PerBatch fsynced every batch: {} fsyncs / {} records",
        rows[1].flushes, records
    );
    println!(
        "  IntervalMs(5) amortizes: {} fsyncs (vs {} for PerBatch)",
        rows[2].flushes, rows[1].flushes
    );

    match write_result("flush_policies.txt", &table) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write results: {e}"),
    }
}
