#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint.
#
# Usage: scripts/ci.sh
# Runs from the repo root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --release -q"
cargo test --release -q

echo "==> cargo clippy (workspace)"
cargo clippy --release --no-deps --workspace -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> observatory smoke (health/lag/SLO/trace export)"
cargo run --release -q --example observatory
test -s results/trace.json

echo "==> ci green"
