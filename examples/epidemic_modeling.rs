//! Epidemic modeling and response (§VI-D): public-health feeds stream
//! through Octopus; a trigger ingests/cleans/validates the data,
//! refits the transmission model, and alerts decision makers when the
//! estimated reproduction number crosses 1.
//!
//! Run with: `cargo run --example epidemic_modeling`

use octopus::apps::epidemic::{DataSource, EpidemicPlatform};
use octopus::prelude::*;

fn main() -> OctoResult<()> {
    let platform = EpidemicPlatform::new(Cluster::new(2))?;

    // phase 1: a growing outbreak (15% daily growth)
    let mut feed = DataSource::new("public-health-dept", 120.0, 1.15, 99);
    println!("day | reported | R estimate | alerts");
    for day in 0..20 {
        let report = feed.next_report();
        let cases = report.new_cases;
        platform.publish_report(&report)?;
        platform.process()?;
        println!(
            "{:>3} | {:>8} | {:>10} | {:>6}",
            day,
            cases,
            platform
                .current_r()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
            platform.alert_count()?
        );
    }
    let r_growth = platform.current_r().expect("enough data");
    let alerts_during_growth = platform.alert_count()?;
    println!("\npeak-growth R estimate: {r_growth:.2} (alerts: {alerts_during_growth})");
    assert!(r_growth > 1.0, "growing outbreak must estimate R > 1");
    assert!(alerts_during_growth > 0, "decision makers must have been alerted");

    // phase 2: interventions bite — the same pipeline watches R fall
    let mut receding = DataSource::new("public-health-dept", 800.0, 0.88, 100);
    for day in 20..40 {
        let mut report = receding.next_report();
        report.day = day;
        platform.publish_report(&report)?;
        platform.process()?;
    }
    let r_decline = platform.current_r().expect("enough data");
    println!("post-intervention R estimate: {r_decline:.2}");
    assert!(r_decline < r_growth, "R must fall after interventions");
    println!(
        "cleaning rejected {} malformed reports along the way",
        platform.rejected_reports()
    );
    println!("\nepidemic_modeling OK");
    Ok(())
}
