//! Filesystem event infrastructure for the Scientific Data Automation
//! use case (§VI-B, Figs. 6–7).
//!
//! The paper's pipeline: **FSMon** (a parallel-filesystem monitor from
//! prior work) publishes raw events to a *local* Kafka topic; a *local
//! aggregator* "selects important and unique events for publication to
//! Octopus"; an Octopus trigger filters for file-creation events
//! (Listing 1) and calls the Globus Transfer service to replicate data.
//! HPC filesystems can emit "billions of events per day" (§III-A), so
//! the hierarchical reduction is load-bearing (§VII-B).
//!
//! - [`fs`]: a synthetic parallel filesystem generating a bursty,
//!   seed-deterministic stream of create/modify/delete operations —
//!   the substitute for a production Lustre/GPFS changelog.
//! - [`monitor`]: FSMon — tails a filesystem's events into a local
//!   broker topic.
//! - [`aggregate`]: the hierarchical aggregator — dedup window +
//!   importance filter + batched re-publication to the cloud fabric,
//!   with a measured reduction factor.
//! - [`transfer`]: a Globus-Transfer-like service — bandwidth-modelled
//!   asynchronous transfers with completion events.

pub mod aggregate;
pub mod fs;
pub mod monitor;
pub mod transfer;

pub use aggregate::{Aggregator, AggregatorConfig};
pub use fs::{FsEvent, FsOp, SyntheticFs, WorkloadProfile};
pub use monitor::FsMonitor;
pub use transfer::{TransferRequest, TransferService, TransferStatus};
