//! Binary payload codec for every request and response type.
//!
//! The payload format is hand-rolled little-endian binary: fixed-width
//! integers, `u32`-length-prefixed byte strings, `u8` tags for enums
//! and options, and `u32`-count-prefixed collections. Two properties
//! are load-bearing:
//!
//! - **No decode path panics.** Every read is bounds-checked through
//!   [`WireReader`] and returns [`WireError::Truncated`] or
//!   [`WireError::Malformed`] on bad input. Collection counts are
//!   validated against the bytes actually remaining before any
//!   allocation is sized from them.
//! - **Encode→decode is the identity** for every type, which the
//!   round-trip proptests in this module enforce.
//!
//! One deliberate exception to "binary everywhere":
//! [`TopicConfig`](octopus_broker::TopicConfig) is
//! carried as a JSON blob inside the `CreateTopic` request and the
//! `Metadata` response. Topic configuration is low-rate control-plane
//! traffic whose schema grows every few PRs; JSON keeps it evolvable
//! without burning a protocol version per new retention knob.

use octopus_broker::{
    AckLevel, ControlMarker, MemberAssignment, ProduceReceipt, ProducerIdentity, ProducerStamp,
    Record, RecordBatch, RecordEos, TxnOffset,
};
use octopus_types::{Event, Header, Offset, PartitionId, Timestamp, Uid};

use crate::error::{ErrorCode, WireError, WireFault};

// ---------------------------------------------------------------------------
// primitive writer / reader
// ---------------------------------------------------------------------------

/// Append-only payload builder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn put_opt_bytes(&mut self, v: Option<&[u8]>) {
        match v {
            Some(b) => {
                self.put_u8(1);
                self.put_bytes(b);
            }
            None => self.put_u8(0),
        }
    }
}

/// Bounds-checked payload reader over a borrowed slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The decode succeeded only if every byte was consumed; trailing
    /// garbage means the peer and we disagree about the schema.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::Malformed(format!("bool tag {v}"))),
        }
    }

    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn get_u128(&mut self) -> Result<u128, WireError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Length-prefixed byte string. The declared length is checked
    /// against the remaining bytes before anything is copied, so a
    /// hostile length cannot drive an over-allocation.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    pub fn get_str(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| WireError::Malformed("non-utf8 string".into()))
    }

    pub fn get_opt_bytes(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_bytes()?)),
            v => Err(WireError::Malformed(format!("option tag {v}"))),
        }
    }

    /// Validate a collection count against the minimum bytes each
    /// element must occupy; prevents `count=u32::MAX` from sizing an
    /// allocation that the payload could never back.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let count = self.get_u32()? as usize;
        let floor = count.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::Malformed(format!(
                "collection of {count} elements cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }
}

// ---------------------------------------------------------------------------
// api keys
// ---------------------------------------------------------------------------

/// The API key space. Values are part of the protocol: never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ApiKey {
    Handshake = 0,
    Produce = 1,
    Fetch = 2,
    Metadata = 3,
    ListOffsets = 4,
    CreateTopic = 5,
    DeleteTopic = 6,
    GroupJoin = 7,
    GroupHeartbeat = 8,
    GroupLeave = 9,
    OffsetCommit = 10,
    OffsetFetch = 11,
    RegisterPid = 12,
    TxnBegin = 13,
    TxnProduce = 14,
    TxnOffsets = 15,
    TxnCommit = 16,
    TxnAbort = 17,
    FetchCommitted = 18,
    /// Remote scrape: a mergeable metrics-registry snapshot (plus,
    /// optionally, the broker's span snapshot) over the wire.
    DescribeMetrics = 19,
    /// Remote scrape: cluster health rollup + consumer-lag reports.
    DescribeHealth = 20,
    /// Admin: move one partition replica to another broker (throttled
    /// learner catch-up + epoch-fenced swap).
    AlterPartitionAssignments = 21,
    /// Admin: snapshot of active and recent partition reassignments.
    DescribeReassignments = 22,
}

impl ApiKey {
    /// Every api key, in protocol order. Index = the wire value, so
    /// per-api metric tables can be arrays indexed by `ApiKey as u16`.
    pub const ALL: [ApiKey; 23] = [
        ApiKey::Handshake,
        ApiKey::Produce,
        ApiKey::Fetch,
        ApiKey::Metadata,
        ApiKey::ListOffsets,
        ApiKey::CreateTopic,
        ApiKey::DeleteTopic,
        ApiKey::GroupJoin,
        ApiKey::GroupHeartbeat,
        ApiKey::GroupLeave,
        ApiKey::OffsetCommit,
        ApiKey::OffsetFetch,
        ApiKey::RegisterPid,
        ApiKey::TxnBegin,
        ApiKey::TxnProduce,
        ApiKey::TxnOffsets,
        ApiKey::TxnCommit,
        ApiKey::TxnAbort,
        ApiKey::FetchCommitted,
        ApiKey::DescribeMetrics,
        ApiKey::DescribeHealth,
        ApiKey::AlterPartitionAssignments,
        ApiKey::DescribeReassignments,
    ];

    /// Stable lowercase name, used as the `api` label on wire metrics.
    pub fn name(self) -> &'static str {
        match self {
            ApiKey::Handshake => "handshake",
            ApiKey::Produce => "produce",
            ApiKey::Fetch => "fetch",
            ApiKey::Metadata => "metadata",
            ApiKey::ListOffsets => "list_offsets",
            ApiKey::CreateTopic => "create_topic",
            ApiKey::DeleteTopic => "delete_topic",
            ApiKey::GroupJoin => "group_join",
            ApiKey::GroupHeartbeat => "group_heartbeat",
            ApiKey::GroupLeave => "group_leave",
            ApiKey::OffsetCommit => "offset_commit",
            ApiKey::OffsetFetch => "offset_fetch",
            ApiKey::RegisterPid => "register_pid",
            ApiKey::TxnBegin => "txn_begin",
            ApiKey::TxnProduce => "txn_produce",
            ApiKey::TxnOffsets => "txn_offsets",
            ApiKey::TxnCommit => "txn_commit",
            ApiKey::TxnAbort => "txn_abort",
            ApiKey::FetchCommitted => "fetch_committed",
            ApiKey::DescribeMetrics => "describe_metrics",
            ApiKey::DescribeHealth => "describe_health",
            ApiKey::AlterPartitionAssignments => "alter_partition_assignments",
            ApiKey::DescribeReassignments => "describe_reassignments",
        }
    }

    pub fn from_u16(v: u16) -> Result<Self, WireError> {
        Ok(match v {
            0 => ApiKey::Handshake,
            1 => ApiKey::Produce,
            2 => ApiKey::Fetch,
            3 => ApiKey::Metadata,
            4 => ApiKey::ListOffsets,
            5 => ApiKey::CreateTopic,
            6 => ApiKey::DeleteTopic,
            7 => ApiKey::GroupJoin,
            8 => ApiKey::GroupHeartbeat,
            9 => ApiKey::GroupLeave,
            10 => ApiKey::OffsetCommit,
            11 => ApiKey::OffsetFetch,
            12 => ApiKey::RegisterPid,
            13 => ApiKey::TxnBegin,
            14 => ApiKey::TxnProduce,
            15 => ApiKey::TxnOffsets,
            16 => ApiKey::TxnCommit,
            17 => ApiKey::TxnAbort,
            18 => ApiKey::FetchCommitted,
            19 => ApiKey::DescribeMetrics,
            20 => ApiKey::DescribeHealth,
            21 => ApiKey::AlterPartitionAssignments,
            22 => ApiKey::DescribeReassignments,
            other => return Err(WireError::UnknownApiKey(other)),
        })
    }
}

// ---------------------------------------------------------------------------
// shared sub-structures
// ---------------------------------------------------------------------------

fn put_event(w: &mut WireWriter, e: &Event) {
    w.put_opt_bytes(e.key.as_deref());
    w.put_bytes(&e.payload);
    w.put_u32(e.headers.len() as u32);
    for h in &e.headers {
        w.put_str(&h.key);
        w.put_bytes(&h.value);
    }
    w.put_u64(e.timestamp.0);
}

fn get_event(r: &mut WireReader<'_>) -> Result<Event, WireError> {
    let key = r.get_opt_bytes()?.map(Into::into);
    let payload = r.get_bytes()?.into();
    let n = r.get_count(8)?;
    let mut headers = Vec::with_capacity(n);
    for _ in 0..n {
        headers.push(Header { key: r.get_str()?, value: r.get_bytes()? });
    }
    let timestamp = Timestamp(r.get_u64()?);
    Ok(Event { key, payload, headers, timestamp })
}

fn put_control(w: &mut WireWriter, c: Option<ControlMarker>) {
    w.put_u8(match c {
        None => 0,
        Some(ControlMarker::Commit) => 1,
        Some(ControlMarker::Abort) => 2,
    });
}

fn get_control(r: &mut WireReader<'_>) -> Result<Option<ControlMarker>, WireError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(ControlMarker::Commit)),
        2 => Ok(Some(ControlMarker::Abort)),
        v => Err(WireError::Malformed(format!("control marker tag {v}"))),
    }
}

fn put_batch(w: &mut WireWriter, b: &RecordBatch) {
    w.put_u32(b.events.len() as u32);
    for e in &b.events {
        put_event(w, e);
    }
    w.put_u32(b.crc);
    match b.producer {
        Some(s) => {
            w.put_u8(1);
            w.put_u64(s.pid);
            w.put_u32(s.epoch);
            w.put_u64(s.seq);
        }
        None => w.put_u8(0),
    }
    w.put_bool(b.txn);
    put_control(w, b.control);
}

fn get_batch(r: &mut WireReader<'_>) -> Result<RecordBatch, WireError> {
    let n = r.get_count(14)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(get_event(r)?);
    }
    let crc = r.get_u32()?;
    let producer = match r.get_u8()? {
        0 => None,
        1 => Some(ProducerStamp { pid: r.get_u64()?, epoch: r.get_u32()?, seq: r.get_u64()? }),
        v => return Err(WireError::Malformed(format!("producer tag {v}"))),
    };
    let txn = r.get_bool()?;
    let control = get_control(r)?;
    Ok(RecordBatch { events, crc, producer, txn, control })
}

fn put_record(w: &mut WireWriter, rec: &Record) {
    w.put_u64(rec.offset);
    w.put_u64(rec.append_time.0);
    w.put_opt_bytes(rec.key.as_deref());
    w.put_bytes(&rec.value);
    w.put_u32(rec.headers.len() as u32);
    for h in &rec.headers {
        w.put_str(&h.key);
        w.put_bytes(&h.value);
    }
    w.put_u64(rec.producer_time.0);
    w.put_u32(rec.crc);
    match &rec.eos {
        Some(e) => {
            w.put_u8(1);
            w.put_u64(e.pid);
            w.put_u32(e.epoch);
            w.put_u64(e.seq);
            w.put_bool(e.txn);
            put_control(w, e.control);
        }
        None => w.put_u8(0),
    }
}

fn get_record(r: &mut WireReader<'_>) -> Result<Record, WireError> {
    let offset = r.get_u64()?;
    let append_time = Timestamp(r.get_u64()?);
    let key = r.get_opt_bytes()?.map(Into::into);
    let value = r.get_bytes()?.into();
    let n = r.get_count(8)?;
    let mut headers = Vec::with_capacity(n);
    for _ in 0..n {
        headers.push(Header { key: r.get_str()?, value: r.get_bytes()? });
    }
    let producer_time = Timestamp(r.get_u64()?);
    let crc = r.get_u32()?;
    let eos = match r.get_u8()? {
        0 => None,
        1 => Some(RecordEos {
            pid: r.get_u64()?,
            epoch: r.get_u32()?,
            seq: r.get_u64()?,
            txn: r.get_bool()?,
            control: get_control(r)?,
        }),
        v => return Err(WireError::Malformed(format!("eos tag {v}"))),
    };
    Ok(Record { offset, append_time, key, value, headers, producer_time, crc, eos })
}

fn put_acks(w: &mut WireWriter, a: AckLevel) {
    w.put_u8(match a {
        AckLevel::None => 0,
        AckLevel::Leader => 1,
        AckLevel::All => 2,
    });
}

fn get_acks(r: &mut WireReader<'_>) -> Result<AckLevel, WireError> {
    match r.get_u8()? {
        0 => Ok(AckLevel::None),
        1 => Ok(AckLevel::Leader),
        2 => Ok(AckLevel::All),
        v => Err(WireError::Malformed(format!("ack level tag {v}"))),
    }
}

fn put_assignment(w: &mut WireWriter, a: &MemberAssignment) {
    w.put_u64(a.generation);
    w.put_u32(a.partitions.len() as u32);
    for (t, p) in &a.partitions {
        w.put_str(t);
        w.put_u32(*p);
    }
}

fn get_assignment(r: &mut WireReader<'_>) -> Result<MemberAssignment, WireError> {
    let generation = r.get_u64()?;
    let n = r.get_count(8)?;
    let mut partitions = Vec::with_capacity(n);
    for _ in 0..n {
        partitions.push((r.get_str()?, r.get_u32()?));
    }
    Ok(MemberAssignment { generation, partitions })
}

fn put_counts(w: &mut WireWriter, counts: &[(String, u32)]) {
    w.put_u32(counts.len() as u32);
    for (t, n) in counts {
        w.put_str(t);
        w.put_u32(*n);
    }
}

fn get_counts(r: &mut WireReader<'_>) -> Result<Vec<(String, u32)>, WireError> {
    let n = r.get_count(8)?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push((r.get_str()?, r.get_u32()?));
    }
    Ok(counts)
}

fn put_uid(w: &mut WireWriter, u: Option<Uid>) {
    match u {
        Some(id) => {
            w.put_u8(1);
            w.put_u128(id.0);
        }
        None => w.put_u8(0),
    }
}

fn get_uid(r: &mut WireReader<'_>) -> Result<Option<Uid>, WireError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(Uid(r.get_u128()?))),
        v => Err(WireError::Malformed(format!("uid tag {v}"))),
    }
}

fn put_pid(w: &mut WireWriter, id: ProducerIdentity) {
    w.put_u64(id.pid);
    w.put_u32(id.epoch);
}

fn get_pid(r: &mut WireReader<'_>) -> Result<ProducerIdentity, WireError> {
    Ok(ProducerIdentity { pid: r.get_u64()?, epoch: r.get_u32()? })
}

fn put_proof(w: &mut WireWriter, p: &[u8; 32]) {
    w.put_bytes(p);
}

fn get_proof(r: &mut WireReader<'_>) -> Result<[u8; 32], WireError> {
    let v = r.get_bytes()?;
    let a: [u8; 32] =
        v.try_into().map_err(|_| WireError::Malformed("proof must be 32 bytes".into()))?;
    Ok(a)
}

// ---------------------------------------------------------------------------
// handshake messages
// ---------------------------------------------------------------------------

/// Client → server authentication opener, always the first frame on a
/// connection. `client_id` is a free-form diagnostic label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeRequest {
    /// No credentials; accepted only by servers configured as open.
    Anonymous { client_id: String },
    /// Bearer token, introspected against the auth server.
    Token { client_id: String, token: String },
    /// SCRAM step 1: client offers a username and a fresh nonce.
    ScramFirst { client_id: String, username: String, nonce: String },
    /// SCRAM step 2: client answers the challenge with its proof.
    ScramFinal { username: String, nonce: String, proof: [u8; 32] },
}

/// Server → client handshake reply (failures use an error frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeResponse {
    /// Authentication complete; `principal` is the identity requests
    /// will be authorized as (None for anonymous connections).
    Welcome { principal: Option<Uid> },
    /// SCRAM step 1 reply: salt, iteration count, and the combined
    /// nonce the client must echo.
    ScramChallenge { nonce: String, salt: Vec<u8>, iterations: u32 },
    /// SCRAM step 2 reply: the server's own proof of the password,
    /// giving the client mutual authentication.
    ScramWelcome { principal: Option<Uid>, server_signature: [u8; 32] },
}

// ---------------------------------------------------------------------------
// requests
// ---------------------------------------------------------------------------

/// Per-topic metadata returned by [`Response::Metadata`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicMeta {
    pub name: String,
    pub partitions: u32,
    /// `TopicConfig` as JSON (see the module docs for why).
    pub config_json: Vec<u8>,
}

/// Offset query selector for `ListOffsets`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetSpec {
    Earliest,
    Latest,
    /// First offset with `append_time >= t` (milliseconds).
    Timestamp(u64),
    /// Last stable offset (EOS read-committed bound).
    LastStable,
}

/// Every client → server request the protocol carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Handshake(HandshakeRequest),
    Produce { topic: String, partition: PartitionId, batch: RecordBatch, acks: AckLevel },
    Fetch { topic: String, partition: PartitionId, offset: Offset, max_records: u32 },
    FetchCommitted { topic: String, partition: PartitionId, offset: Offset, max_records: u32 },
    /// `topic: None` lists every topic; `Some` describes just one.
    Metadata { topic: Option<String> },
    ListOffsets { topic: String, partition: PartitionId, spec: OffsetSpec },
    CreateTopic { topic: String, config_json: Vec<u8> },
    DeleteTopic { topic: String },
    GroupJoin { group: String, member: String, topics: Vec<String>, counts: Vec<(String, u32)> },
    GroupHeartbeat { group: String, member: String },
    GroupLeave { group: String, member: String, counts: Vec<(String, u32)> },
    OffsetCommit { group: String, generation: u64, topic: String, partition: PartitionId, offset: Offset },
    OffsetFetch { group: String, topic: String, partition: PartitionId },
    RegisterPid { name: String },
    TxnBegin { name: String, id: ProducerIdentity },
    TxnProduce { name: String, id: ProducerIdentity, topic: String, partition: PartitionId, events: Vec<Event> },
    TxnOffsets { name: String, id: ProducerIdentity, offsets: Vec<TxnOffset> },
    TxnCommit { name: String, id: ProducerIdentity },
    TxnAbort { name: String, id: ProducerIdentity },
    /// Scrape this broker's metrics registry; `include_spans` also
    /// pulls the span sink's snapshot for cross-process trace merging.
    DescribeMetrics { include_spans: bool },
    /// Scrape this broker's cluster-health rollup and consumer lag.
    DescribeHealth,
    /// Move one partition replica from broker `from` to broker `to`,
    /// copying at most `throttle_bytes_per_sec` during catch-up
    /// (`u64::MAX` = unthrottled).
    AlterPartitionAssignment {
        topic: String,
        partition: PartitionId,
        from: u32,
        to: u32,
        throttle_bytes_per_sec: u64,
    },
    /// Snapshot the broker's reassignment tracker.
    DescribeReassignments,
}

impl Request {
    /// The api key that names this request on the wire.
    pub fn api_key(&self) -> ApiKey {
        match self {
            Request::Handshake(_) => ApiKey::Handshake,
            Request::Produce { .. } => ApiKey::Produce,
            Request::Fetch { .. } => ApiKey::Fetch,
            Request::FetchCommitted { .. } => ApiKey::FetchCommitted,
            Request::Metadata { .. } => ApiKey::Metadata,
            Request::ListOffsets { .. } => ApiKey::ListOffsets,
            Request::CreateTopic { .. } => ApiKey::CreateTopic,
            Request::DeleteTopic { .. } => ApiKey::DeleteTopic,
            Request::GroupJoin { .. } => ApiKey::GroupJoin,
            Request::GroupHeartbeat { .. } => ApiKey::GroupHeartbeat,
            Request::GroupLeave { .. } => ApiKey::GroupLeave,
            Request::OffsetCommit { .. } => ApiKey::OffsetCommit,
            Request::OffsetFetch { .. } => ApiKey::OffsetFetch,
            Request::RegisterPid { .. } => ApiKey::RegisterPid,
            Request::TxnBegin { .. } => ApiKey::TxnBegin,
            Request::TxnProduce { .. } => ApiKey::TxnProduce,
            Request::TxnOffsets { .. } => ApiKey::TxnOffsets,
            Request::TxnCommit { .. } => ApiKey::TxnCommit,
            Request::TxnAbort { .. } => ApiKey::TxnAbort,
            Request::DescribeMetrics { .. } => ApiKey::DescribeMetrics,
            Request::DescribeHealth => ApiKey::DescribeHealth,
            Request::AlterPartitionAssignment { .. } => ApiKey::AlterPartitionAssignments,
            Request::DescribeReassignments => ApiKey::DescribeReassignments,
        }
    }

    /// Encode the payload bytes (frame header not included).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Handshake(h) => match h {
                HandshakeRequest::Anonymous { client_id } => {
                    w.put_u8(0);
                    w.put_str(client_id);
                }
                HandshakeRequest::Token { client_id, token } => {
                    w.put_u8(1);
                    w.put_str(client_id);
                    w.put_str(token);
                }
                HandshakeRequest::ScramFirst { client_id, username, nonce } => {
                    w.put_u8(2);
                    w.put_str(client_id);
                    w.put_str(username);
                    w.put_str(nonce);
                }
                HandshakeRequest::ScramFinal { username, nonce, proof } => {
                    w.put_u8(3);
                    w.put_str(username);
                    w.put_str(nonce);
                    put_proof(&mut w, proof);
                }
            },
            Request::Produce { topic, partition, batch, acks } => {
                w.put_str(topic);
                w.put_u32(*partition);
                put_acks(&mut w, *acks);
                put_batch(&mut w, batch);
            }
            Request::Fetch { topic, partition, offset, max_records }
            | Request::FetchCommitted { topic, partition, offset, max_records } => {
                w.put_str(topic);
                w.put_u32(*partition);
                w.put_u64(*offset);
                w.put_u32(*max_records);
            }
            Request::Metadata { topic } => {
                w.put_opt_bytes(topic.as_ref().map(|t| t.as_bytes()));
            }
            Request::ListOffsets { topic, partition, spec } => {
                w.put_str(topic);
                w.put_u32(*partition);
                match spec {
                    OffsetSpec::Earliest => w.put_u8(0),
                    OffsetSpec::Latest => w.put_u8(1),
                    OffsetSpec::Timestamp(t) => {
                        w.put_u8(2);
                        w.put_u64(*t);
                    }
                    OffsetSpec::LastStable => w.put_u8(3),
                }
            }
            Request::CreateTopic { topic, config_json } => {
                w.put_str(topic);
                w.put_bytes(config_json);
            }
            Request::DeleteTopic { topic } => w.put_str(topic),
            Request::GroupJoin { group, member, topics, counts } => {
                w.put_str(group);
                w.put_str(member);
                w.put_u32(topics.len() as u32);
                for t in topics {
                    w.put_str(t);
                }
                put_counts(&mut w, counts);
            }
            Request::GroupHeartbeat { group, member } => {
                w.put_str(group);
                w.put_str(member);
            }
            Request::GroupLeave { group, member, counts } => {
                w.put_str(group);
                w.put_str(member);
                put_counts(&mut w, counts);
            }
            Request::OffsetCommit { group, generation, topic, partition, offset } => {
                w.put_str(group);
                w.put_u64(*generation);
                w.put_str(topic);
                w.put_u32(*partition);
                w.put_u64(*offset);
            }
            Request::OffsetFetch { group, topic, partition } => {
                w.put_str(group);
                w.put_str(topic);
                w.put_u32(*partition);
            }
            Request::RegisterPid { name } => w.put_str(name),
            Request::TxnBegin { name, id }
            | Request::TxnCommit { name, id }
            | Request::TxnAbort { name, id } => {
                w.put_str(name);
                put_pid(&mut w, *id);
            }
            Request::TxnProduce { name, id, topic, partition, events } => {
                w.put_str(name);
                put_pid(&mut w, *id);
                w.put_str(topic);
                w.put_u32(*partition);
                w.put_u32(events.len() as u32);
                for e in events {
                    put_event(&mut w, e);
                }
            }
            Request::TxnOffsets { name, id, offsets } => {
                w.put_str(name);
                put_pid(&mut w, *id);
                w.put_u32(offsets.len() as u32);
                for o in offsets {
                    w.put_str(&o.group);
                    w.put_str(&o.topic);
                    w.put_u32(o.partition);
                    w.put_u64(o.offset);
                }
            }
            Request::DescribeMetrics { include_spans } => w.put_bool(*include_spans),
            Request::DescribeHealth => {}
            Request::AlterPartitionAssignment {
                topic,
                partition,
                from,
                to,
                throttle_bytes_per_sec,
            } => {
                w.put_str(topic);
                w.put_u32(*partition);
                w.put_u32(*from);
                w.put_u32(*to);
                w.put_u64(*throttle_bytes_per_sec);
            }
            Request::DescribeReassignments => {}
        }
        w.finish()
    }

    /// Decode a request payload for the given api key.
    pub fn decode(api_key: ApiKey, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(payload);
        let req = match api_key {
            ApiKey::Handshake => Request::Handshake(match r.get_u8()? {
                0 => HandshakeRequest::Anonymous { client_id: r.get_str()? },
                1 => HandshakeRequest::Token { client_id: r.get_str()?, token: r.get_str()? },
                2 => HandshakeRequest::ScramFirst {
                    client_id: r.get_str()?,
                    username: r.get_str()?,
                    nonce: r.get_str()?,
                },
                3 => HandshakeRequest::ScramFinal {
                    username: r.get_str()?,
                    nonce: r.get_str()?,
                    proof: get_proof(&mut r)?,
                },
                v => return Err(WireError::Malformed(format!("handshake tag {v}"))),
            }),
            ApiKey::Produce => {
                let topic = r.get_str()?;
                let partition = r.get_u32()?;
                let acks = get_acks(&mut r)?;
                let batch = get_batch(&mut r)?;
                Request::Produce { topic, partition, batch, acks }
            }
            ApiKey::Fetch | ApiKey::FetchCommitted => {
                let topic = r.get_str()?;
                let partition = r.get_u32()?;
                let offset = r.get_u64()?;
                let max_records = r.get_u32()?;
                if api_key == ApiKey::Fetch {
                    Request::Fetch { topic, partition, offset, max_records }
                } else {
                    Request::FetchCommitted { topic, partition, offset, max_records }
                }
            }
            ApiKey::Metadata => Request::Metadata {
                topic: match r.get_opt_bytes()? {
                    None => None,
                    Some(b) => Some(
                        String::from_utf8(b)
                            .map_err(|_| WireError::Malformed("non-utf8 topic".into()))?,
                    ),
                },
            },
            ApiKey::ListOffsets => {
                let topic = r.get_str()?;
                let partition = r.get_u32()?;
                let spec = match r.get_u8()? {
                    0 => OffsetSpec::Earliest,
                    1 => OffsetSpec::Latest,
                    2 => OffsetSpec::Timestamp(r.get_u64()?),
                    3 => OffsetSpec::LastStable,
                    v => return Err(WireError::Malformed(format!("offset spec tag {v}"))),
                };
                Request::ListOffsets { topic, partition, spec }
            }
            ApiKey::CreateTopic => {
                Request::CreateTopic { topic: r.get_str()?, config_json: r.get_bytes()? }
            }
            ApiKey::DeleteTopic => Request::DeleteTopic { topic: r.get_str()? },
            ApiKey::GroupJoin => {
                let group = r.get_str()?;
                let member = r.get_str()?;
                let n = r.get_count(4)?;
                let mut topics = Vec::with_capacity(n);
                for _ in 0..n {
                    topics.push(r.get_str()?);
                }
                let counts = get_counts(&mut r)?;
                Request::GroupJoin { group, member, topics, counts }
            }
            ApiKey::GroupHeartbeat => {
                Request::GroupHeartbeat { group: r.get_str()?, member: r.get_str()? }
            }
            ApiKey::GroupLeave => Request::GroupLeave {
                group: r.get_str()?,
                member: r.get_str()?,
                counts: get_counts(&mut r)?,
            },
            ApiKey::OffsetCommit => Request::OffsetCommit {
                group: r.get_str()?,
                generation: r.get_u64()?,
                topic: r.get_str()?,
                partition: r.get_u32()?,
                offset: r.get_u64()?,
            },
            ApiKey::OffsetFetch => Request::OffsetFetch {
                group: r.get_str()?,
                topic: r.get_str()?,
                partition: r.get_u32()?,
            },
            ApiKey::RegisterPid => Request::RegisterPid { name: r.get_str()? },
            ApiKey::TxnBegin => Request::TxnBegin { name: r.get_str()?, id: get_pid(&mut r)? },
            ApiKey::TxnCommit => Request::TxnCommit { name: r.get_str()?, id: get_pid(&mut r)? },
            ApiKey::TxnAbort => Request::TxnAbort { name: r.get_str()?, id: get_pid(&mut r)? },
            ApiKey::TxnProduce => {
                let name = r.get_str()?;
                let id = get_pid(&mut r)?;
                let topic = r.get_str()?;
                let partition = r.get_u32()?;
                let n = r.get_count(14)?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(get_event(&mut r)?);
                }
                Request::TxnProduce { name, id, topic, partition, events }
            }
            ApiKey::TxnOffsets => {
                let name = r.get_str()?;
                let id = get_pid(&mut r)?;
                let n = r.get_count(20)?;
                let mut offsets = Vec::with_capacity(n);
                for _ in 0..n {
                    offsets.push(TxnOffset {
                        group: r.get_str()?,
                        topic: r.get_str()?,
                        partition: r.get_u32()?,
                        offset: r.get_u64()?,
                    });
                }
                Request::TxnOffsets { name, id, offsets }
            }
            ApiKey::DescribeMetrics => {
                Request::DescribeMetrics { include_spans: r.get_bool()? }
            }
            ApiKey::DescribeHealth => Request::DescribeHealth,
            ApiKey::AlterPartitionAssignments => Request::AlterPartitionAssignment {
                topic: r.get_str()?,
                partition: r.get_u32()?,
                from: r.get_u32()?,
                to: r.get_u32()?,
                throttle_bytes_per_sec: r.get_u64()?,
            },
            ApiKey::DescribeReassignments => Request::DescribeReassignments,
        };
        r.expect_end()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------------

/// Every server → client success response. Failures travel as error
/// frames carrying a [`WireFault`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Handshake(HandshakeResponse),
    Produce(ProduceReceipt),
    Fetch { records: Vec<Record> },
    FetchCommitted { records: Vec<Record>, next: Offset },
    Metadata { topics: Vec<TopicMeta> },
    ListOffsets { offset: Offset },
    GroupJoin { assignment: MemberAssignment },
    GroupHeartbeat { assignment: Option<MemberAssignment> },
    OffsetFetch { offset: Option<Offset> },
    RegisterPid { id: ProducerIdentity },
    /// A mergeable [`RegistrySnapshot`](octopus_types::RegistrySnapshot)
    /// as JSON, plus (optionally) the broker's span snapshot as JSON.
    /// JSON keeps the scrape payload schema-evolvable, mirroring the
    /// `TopicMeta::config_json` precedent.
    DescribeMetrics { broker_id: u32, snapshot_json: Vec<u8>, spans_json: Vec<u8> },
    /// A `HealthReport` and a `Vec<LagReport>`, both as JSON blobs.
    DescribeHealth { report_json: Vec<u8>, lag_json: Vec<u8> },
    /// The post-move assignment epoch.
    AlterPartitionAssignment { epoch: u64 },
    /// A `Vec<ReassignStatus>` as a JSON blob (same schema-evolvable
    /// precedent as `DescribeHealth`).
    DescribeReassignments { reassignments_json: Vec<u8> },
    /// Unit acknowledgement for requests with no result body.
    Ok,
}

impl Response {
    /// Encode the payload bytes (frame header not included).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Handshake(h) => match h {
                HandshakeResponse::Welcome { principal } => {
                    w.put_u8(0);
                    put_uid(&mut w, *principal);
                }
                HandshakeResponse::ScramChallenge { nonce, salt, iterations } => {
                    w.put_u8(1);
                    w.put_str(nonce);
                    w.put_bytes(salt);
                    w.put_u32(*iterations);
                }
                HandshakeResponse::ScramWelcome { principal, server_signature } => {
                    w.put_u8(2);
                    put_uid(&mut w, *principal);
                    put_proof(&mut w, server_signature);
                }
            },
            Response::Produce(rc) => {
                w.put_u32(rc.partition);
                w.put_u64(rc.base_offset);
                w.put_u64(rc.count as u64);
                w.put_bool(rc.persisted);
                w.put_bool(rc.deduplicated);
            }
            Response::Fetch { records } => {
                w.put_u32(records.len() as u32);
                for rec in records {
                    put_record(&mut w, rec);
                }
            }
            Response::FetchCommitted { records, next } => {
                w.put_u32(records.len() as u32);
                for rec in records {
                    put_record(&mut w, rec);
                }
                w.put_u64(*next);
            }
            Response::Metadata { topics } => {
                w.put_u32(topics.len() as u32);
                for t in topics {
                    w.put_str(&t.name);
                    w.put_u32(t.partitions);
                    w.put_bytes(&t.config_json);
                }
            }
            Response::ListOffsets { offset } => w.put_u64(*offset),
            Response::GroupJoin { assignment } => put_assignment(&mut w, assignment),
            Response::GroupHeartbeat { assignment } => match assignment {
                Some(a) => {
                    w.put_u8(1);
                    put_assignment(&mut w, a);
                }
                None => w.put_u8(0),
            },
            Response::OffsetFetch { offset } => match offset {
                Some(o) => {
                    w.put_u8(1);
                    w.put_u64(*o);
                }
                None => w.put_u8(0),
            },
            Response::RegisterPid { id } => put_pid(&mut w, *id),
            Response::DescribeMetrics { broker_id, snapshot_json, spans_json } => {
                w.put_u32(*broker_id);
                w.put_bytes(snapshot_json);
                w.put_bytes(spans_json);
            }
            Response::DescribeHealth { report_json, lag_json } => {
                w.put_bytes(report_json);
                w.put_bytes(lag_json);
            }
            Response::AlterPartitionAssignment { epoch } => w.put_u64(*epoch),
            Response::DescribeReassignments { reassignments_json } => {
                w.put_bytes(reassignments_json);
            }
            Response::Ok => {}
        }
        w.finish()
    }

    /// Decode a success response payload for the given api key.
    pub fn decode(api_key: ApiKey, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = WireReader::new(payload);
        let resp = match api_key {
            ApiKey::Handshake => Response::Handshake(match r.get_u8()? {
                0 => HandshakeResponse::Welcome { principal: get_uid(&mut r)? },
                1 => HandshakeResponse::ScramChallenge {
                    nonce: r.get_str()?,
                    salt: r.get_bytes()?,
                    iterations: r.get_u32()?,
                },
                2 => HandshakeResponse::ScramWelcome {
                    principal: get_uid(&mut r)?,
                    server_signature: get_proof(&mut r)?,
                },
                v => return Err(WireError::Malformed(format!("handshake resp tag {v}"))),
            }),
            ApiKey::Produce | ApiKey::TxnProduce => Response::Produce(ProduceReceipt {
                partition: r.get_u32()?,
                base_offset: r.get_u64()?,
                count: r.get_u64()? as usize,
                persisted: r.get_bool()?,
                deduplicated: r.get_bool()?,
            }),
            ApiKey::Fetch => {
                let n = r.get_count(32)?;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(get_record(&mut r)?);
                }
                Response::Fetch { records }
            }
            ApiKey::FetchCommitted => {
                let n = r.get_count(32)?;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(get_record(&mut r)?);
                }
                let next = r.get_u64()?;
                Response::FetchCommitted { records, next }
            }
            ApiKey::Metadata => {
                let n = r.get_count(12)?;
                let mut topics = Vec::with_capacity(n);
                for _ in 0..n {
                    topics.push(TopicMeta {
                        name: r.get_str()?,
                        partitions: r.get_u32()?,
                        config_json: r.get_bytes()?,
                    });
                }
                Response::Metadata { topics }
            }
            ApiKey::ListOffsets => Response::ListOffsets { offset: r.get_u64()? },
            ApiKey::GroupJoin => Response::GroupJoin { assignment: get_assignment(&mut r)? },
            ApiKey::GroupHeartbeat => Response::GroupHeartbeat {
                assignment: match r.get_u8()? {
                    0 => None,
                    1 => Some(get_assignment(&mut r)?),
                    v => return Err(WireError::Malformed(format!("assignment tag {v}"))),
                },
            },
            ApiKey::OffsetFetch => Response::OffsetFetch {
                offset: match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_u64()?),
                    v => return Err(WireError::Malformed(format!("offset tag {v}"))),
                },
            },
            ApiKey::RegisterPid => Response::RegisterPid { id: get_pid(&mut r)? },
            ApiKey::DescribeMetrics => Response::DescribeMetrics {
                broker_id: r.get_u32()?,
                snapshot_json: r.get_bytes()?,
                spans_json: r.get_bytes()?,
            },
            ApiKey::DescribeHealth => Response::DescribeHealth {
                report_json: r.get_bytes()?,
                lag_json: r.get_bytes()?,
            },
            ApiKey::AlterPartitionAssignments => {
                Response::AlterPartitionAssignment { epoch: r.get_u64()? }
            }
            ApiKey::DescribeReassignments => {
                Response::DescribeReassignments { reassignments_json: r.get_bytes()? }
            }
            ApiKey::CreateTopic
            | ApiKey::DeleteTopic
            | ApiKey::GroupLeave
            | ApiKey::OffsetCommit
            | ApiKey::TxnBegin
            | ApiKey::TxnOffsets
            | ApiKey::TxnCommit
            | ApiKey::TxnAbort => Response::Ok,
        };
        r.expect_end()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// error payloads
// ---------------------------------------------------------------------------

impl WireFault {
    /// Encode as an error-frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u16(self.code as u16);
        w.put_str(&self.message);
        for a in self.aux {
            w.put_u64(a);
        }
        w.finish()
    }

    /// Decode an error-frame payload.
    pub fn decode(payload: &[u8]) -> Result<WireFault, WireError> {
        let mut r = WireReader::new(payload);
        let code = ErrorCode::from_u16(r.get_u16()?);
        let message = r.get_str()?;
        let aux = [r.get_u64()?, r.get_u64()?, r.get_u64()?];
        r.expect_end()?;
        Ok(WireFault { code, message, aux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event::builder()
            .key("sensor-7")
            .payload(b"temperature=293.1".to_vec())
            .header("site", b"aps")
            .timestamp(Timestamp(1_720_000_000_000))
            .build()
    }

    fn roundtrip_request(req: Request) {
        let key = req.api_key();
        let bytes = req.encode();
        let back = Request::decode(key, &bytes).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_response(key: ApiKey, resp: Response) {
        let bytes = resp.encode();
        let back = Response::decode(key, &bytes).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn every_request_type_roundtrips() {
        let id = ProducerIdentity { pid: 7, epoch: 2 };
        let reqs = vec![
            Request::Handshake(HandshakeRequest::Anonymous { client_id: "c1".into() }),
            Request::Handshake(HandshakeRequest::Token {
                client_id: "c1".into(),
                token: "tok-abc".into(),
            }),
            Request::Handshake(HandshakeRequest::ScramFirst {
                client_id: "c1".into(),
                username: "alice".into(),
                nonce: "n-abc".into(),
            }),
            Request::Handshake(HandshakeRequest::ScramFinal {
                username: "alice".into(),
                nonce: "n-abc.n-srv".into(),
                proof: [7; 32],
            }),
            Request::Produce {
                topic: "sdl.actions".into(),
                partition: 3,
                batch: RecordBatch::new(vec![sample_event()])
                    .with_producer(ProducerStamp { pid: 9, epoch: 1, seq: 40 }, false),
                acks: AckLevel::All,
            },
            Request::Fetch { topic: "t".into(), partition: 0, offset: 12, max_records: 500 },
            Request::FetchCommitted { topic: "t".into(), partition: 1, offset: 0, max_records: 10 },
            Request::Metadata { topic: None },
            Request::Metadata { topic: Some("t".into()) },
            Request::ListOffsets { topic: "t".into(), partition: 0, spec: OffsetSpec::Earliest },
            Request::ListOffsets {
                topic: "t".into(),
                partition: 0,
                spec: OffsetSpec::Timestamp(123_456),
            },
            Request::CreateTopic { topic: "t".into(), config_json: b"{\"partitions\":4}".to_vec() },
            Request::DeleteTopic { topic: "t".into() },
            Request::GroupJoin {
                group: "g".into(),
                member: "m-1".into(),
                topics: vec!["a".into(), "b".into()],
                counts: vec![("a".into(), 4), ("b".into(), 2)],
            },
            Request::GroupHeartbeat { group: "g".into(), member: "m-1".into() },
            Request::GroupLeave { group: "g".into(), member: "m-1".into(), counts: vec![] },
            Request::OffsetCommit {
                group: "g".into(),
                generation: 3,
                topic: "t".into(),
                partition: 1,
                offset: 99,
            },
            Request::OffsetFetch { group: "g".into(), topic: "t".into(), partition: 1 },
            Request::RegisterPid { name: "etl".into() },
            Request::TxnBegin { name: "etl".into(), id },
            Request::TxnProduce {
                name: "etl".into(),
                id,
                topic: "t".into(),
                partition: 0,
                events: vec![sample_event()],
            },
            Request::TxnOffsets {
                name: "etl".into(),
                id,
                offsets: vec![TxnOffset {
                    group: "g".into(),
                    topic: "t".into(),
                    partition: 2,
                    offset: 17,
                }],
            },
            Request::TxnCommit { name: "etl".into(), id },
            Request::TxnAbort { name: "etl".into(), id },
            Request::DescribeMetrics { include_spans: true },
            Request::DescribeMetrics { include_spans: false },
            Request::DescribeHealth,
            Request::AlterPartitionAssignment {
                topic: "t".into(),
                partition: 3,
                from: 0,
                to: 5,
                throttle_bytes_per_sec: 1 << 20,
            },
            Request::DescribeReassignments,
        ];
        for req in reqs {
            roundtrip_request(req);
        }
    }

    #[test]
    fn every_response_type_roundtrips() {
        let record = Record {
            offset: 41,
            append_time: Timestamp(1000),
            key: Some(b"k".to_vec().into()),
            value: b"v".to_vec().into(),
            headers: vec![Header { key: "h".into(), value: b"x".to_vec() }],
            producer_time: Timestamp(999),
            crc: 0xDEAD_BEEF,
            eos: Some(RecordEos { pid: 1, epoch: 0, seq: 41, txn: true, control: None }),
        };
        let assignment = MemberAssignment {
            generation: 5,
            partitions: vec![("t".into(), 0), ("t".into(), 1)],
        };
        let cases = vec![
            (
                ApiKey::Handshake,
                Response::Handshake(HandshakeResponse::Welcome {
                    principal: Some(Uid::from_parts(1, 2)),
                }),
            ),
            (
                ApiKey::Handshake,
                Response::Handshake(HandshakeResponse::ScramChallenge {
                    nonce: "n1.n2".into(),
                    salt: vec![1, 2, 3, 4],
                    iterations: 4096,
                }),
            ),
            (
                ApiKey::Handshake,
                Response::Handshake(HandshakeResponse::ScramWelcome {
                    principal: None,
                    server_signature: [9; 32],
                }),
            ),
            (
                ApiKey::Produce,
                Response::Produce(ProduceReceipt {
                    partition: 2,
                    base_offset: 100,
                    count: 3,
                    persisted: true,
                    deduplicated: true,
                }),
            ),
            (ApiKey::Fetch, Response::Fetch { records: vec![record.clone()] }),
            (
                ApiKey::FetchCommitted,
                Response::FetchCommitted { records: vec![record], next: 44 },
            ),
            (
                ApiKey::Metadata,
                Response::Metadata {
                    topics: vec![TopicMeta {
                        name: "t".into(),
                        partitions: 4,
                        config_json: b"{}".to_vec(),
                    }],
                },
            ),
            (ApiKey::ListOffsets, Response::ListOffsets { offset: 77 }),
            (ApiKey::GroupJoin, Response::GroupJoin { assignment: assignment.clone() }),
            (
                ApiKey::GroupHeartbeat,
                Response::GroupHeartbeat { assignment: Some(assignment) },
            ),
            (ApiKey::GroupHeartbeat, Response::GroupHeartbeat { assignment: None }),
            (ApiKey::OffsetFetch, Response::OffsetFetch { offset: Some(13) }),
            (ApiKey::OffsetFetch, Response::OffsetFetch { offset: None }),
            (
                ApiKey::RegisterPid,
                Response::RegisterPid { id: ProducerIdentity { pid: 3, epoch: 9 } },
            ),
            (ApiKey::OffsetCommit, Response::Ok),
            (ApiKey::TxnCommit, Response::Ok),
            (
                ApiKey::DescribeMetrics,
                Response::DescribeMetrics {
                    broker_id: 2,
                    snapshot_json: b"{\"counters\":{}}".to_vec(),
                    spans_json: b"[]".to_vec(),
                },
            ),
            (
                ApiKey::DescribeHealth,
                Response::DescribeHealth {
                    report_json: b"{\"status\":\"healthy\"}".to_vec(),
                    lag_json: b"[]".to_vec(),
                },
            ),
            (
                ApiKey::AlterPartitionAssignments,
                Response::AlterPartitionAssignment { epoch: 42 },
            ),
            (
                ApiKey::DescribeReassignments,
                Response::DescribeReassignments { reassignments_json: b"[]".to_vec() },
            ),
        ];
        for (key, resp) in cases {
            roundtrip_response(key, resp);
        }
    }

    #[test]
    fn api_key_table_is_dense_and_names_are_unique() {
        for (i, key) in ApiKey::ALL.iter().enumerate() {
            assert_eq!(*key as u16, i as u16, "ALL must be indexed by wire value");
            assert_eq!(ApiKey::from_u16(i as u16).unwrap(), *key);
        }
        let names: std::collections::BTreeSet<&str> =
            ApiKey::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ApiKey::ALL.len());
        assert!(ApiKey::from_u16(ApiKey::ALL.len() as u16).is_err());
    }

    #[test]
    fn fault_roundtrips() {
        let fault = WireFault {
            code: ErrorCode::OffsetOutOfRange,
            message: "offset 9 out of range".into(),
            aux: [9, 10, 20],
        };
        let back = WireFault::decode(&fault.encode()).unwrap();
        assert_eq!(back, fault);
    }

    #[test]
    fn hostile_collection_count_is_rejected_without_allocation() {
        // Fetch response declaring u32::MAX records in a 10-byte payload
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        w.put_u32(0);
        let err = Response::decode(ApiKey::Fetch, &w.finish()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "got {err:?}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Request::DeleteTopic { topic: "t".into() }.encode();
        bytes.push(0xAB);
        assert!(matches!(
            Request::decode(ApiKey::DeleteTopic, &bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn non_utf8_string_is_malformed_not_panic() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE, 0xFD]);
        assert!(matches!(
            Request::decode(ApiKey::DeleteTopic, &w.finish()),
            Err(WireError::Malformed(_))
        ));
    }
}
