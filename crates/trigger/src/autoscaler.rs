//! Processing-pressure autoscaling.
//!
//! "Lambda functions can scale automatically by evaluating *processing
//! pressure* (the number of pending events in a topic). Lambda evaluates
//! the processing pressure at 1 min intervals, and scales concurrent
//! invocations of the function dynamically when warranted" (§IV-D).
//!
//! The policy mirrors Lambda's MSK event-source scaling: start small,
//! and at every evaluation
//! - scale **up** multiplicatively while a backlog persists (bounded by
//!   the partition count — one consumer per partition is the hard cap —
//!   and a configurable max),
//! - scale **down** toward the minimum when the backlog clears.
//!
//! This staircase is exactly what Fig. 4 plots: concurrency 3 → 128 in
//! about four evaluation periods against a 128-partition topic, then
//! back down shortly before the workload drains.

use serde::{Deserialize, Serialize};

/// Autoscaler tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// Concurrency floor (Lambda starts MSK sources at ~1–3 pollers).
    pub min_concurrency: u32,
    /// Concurrency ceiling (beyond partitions, extra workers idle).
    pub max_concurrency: u32,
    /// Evaluation cadence in milliseconds (60 000 on Lambda).
    pub evaluation_interval_ms: u64,
    /// Multiplicative growth factor per evaluation while backlogged.
    pub scale_up_factor: f64,
    /// Backlog-per-worker threshold above which we grow.
    pub backlog_per_worker_target: u64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_concurrency: 3,
            max_concurrency: 128,
            evaluation_interval_ms: 60_000,
            scale_up_factor: 4.0,
            backlog_per_worker_target: 10,
        }
    }
}

/// The autoscaler state machine. Feed it the observed backlog at each
/// evaluation; read the concurrency decision.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    concurrency: u32,
    partition_cap: u32,
    history: Vec<(u64, u32)>, // (eval index, concurrency) for Fig 4
    evaluations: u64,
}

impl Autoscaler {
    /// A scaler for a topic with `partitions` partitions.
    pub fn new(config: AutoscalerConfig, partitions: u32) -> Self {
        let start = config.min_concurrency.min(partitions).max(1);
        Autoscaler {
            config,
            concurrency: start,
            partition_cap: partitions.max(1),
            history: vec![(0, start)],
            evaluations: 0,
        }
    }

    /// Current concurrency decision.
    pub fn concurrency(&self) -> u32 {
        self.concurrency
    }

    /// Hard cap: partitions bound useful concurrency.
    pub fn cap(&self) -> u32 {
        self.partition_cap.min(self.config.max_concurrency)
    }

    /// Run one evaluation with the observed backlog (pending events).
    /// Returns the new concurrency.
    pub fn evaluate(&mut self, backlog: u64) -> u32 {
        self.evaluations += 1;
        let cap = self.cap();
        let per_worker = backlog as f64 / self.concurrency.max(1) as f64;
        if backlog == 0 {
            // drain: drop toward the floor quickly (Lambda deprovisions
            // idle pollers within a few evaluations)
            self.concurrency =
                (self.concurrency / 2).max(self.config.min_concurrency.min(cap)).max(1);
        } else if per_worker > self.config.backlog_per_worker_target as f64 {
            let grown = ((self.concurrency as f64) * self.config.scale_up_factor).ceil() as u32;
            self.concurrency = grown.min(cap);
        }
        // else: within target, hold steady
        self.history.push((self.evaluations, self.concurrency));
        self.concurrency
    }

    /// The (evaluation index, concurrency) staircase — Fig. 4's series.
    pub fn history(&self) -> &[(u64, u32)] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler(partitions: u32) -> Autoscaler {
        Autoscaler::new(AutoscalerConfig::default(), partitions)
    }

    #[test]
    fn starts_at_min_concurrency() {
        assert_eq!(scaler(128).concurrency(), 3);
        // partition-bounded start
        assert_eq!(scaler(2).concurrency(), 2);
        assert_eq!(scaler(1).concurrency(), 1);
    }

    #[test]
    fn fig4_staircase_3_to_128_within_four_evaluations() {
        // ">5000 tasks ... the number of trigger consumers is scaled up
        // from 3 to 128 within four minutes" — with 1-minute evaluations
        // that is four evaluations.
        let mut s = scaler(128);
        let mut evals = 0;
        while s.concurrency() < 128 {
            s.evaluate(5000); // persistent backlog
            evals += 1;
            assert!(evals <= 4, "took more than 4 evaluations to reach 128");
        }
        assert_eq!(s.concurrency(), 128);
    }

    #[test]
    fn concurrency_never_exceeds_partitions() {
        let mut s = scaler(8);
        for _ in 0..10 {
            s.evaluate(1_000_000);
        }
        assert_eq!(s.concurrency(), 8);
    }

    #[test]
    fn max_concurrency_caps_even_many_partitions() {
        let cfg = AutoscalerConfig { max_concurrency: 16, ..AutoscalerConfig::default() };
        let mut s = Autoscaler::new(cfg, 1024);
        for _ in 0..10 {
            s.evaluate(1_000_000);
        }
        assert_eq!(s.concurrency(), 16);
    }

    #[test]
    fn scales_down_when_backlog_clears() {
        let mut s = scaler(128);
        for _ in 0..4 {
            s.evaluate(100_000);
        }
        assert_eq!(s.concurrency(), 128);
        let mut evals = 0;
        while s.concurrency() > 3 {
            s.evaluate(0);
            evals += 1;
            assert!(evals < 20);
        }
        assert_eq!(s.concurrency(), 3);
        // and holds at the floor
        s.evaluate(0);
        assert_eq!(s.concurrency(), 3);
    }

    #[test]
    fn holds_steady_when_backlog_within_target() {
        let mut s = scaler(128);
        s.evaluate(100_000);
        let c = s.concurrency();
        // backlog small relative to workers: no growth
        s.evaluate((c as u64) * 5);
        assert_eq!(s.concurrency(), c);
    }

    #[test]
    fn history_records_the_staircase() {
        let mut s = scaler(128);
        s.evaluate(100_000);
        s.evaluate(100_000);
        s.evaluate(0);
        let h = s.history();
        assert_eq!(h.len(), 4); // initial + 3 evaluations
        assert_eq!(h[0], (0, 3));
        assert!(h[1].1 > h[0].1);
        assert!(h[3].1 < h[2].1);
    }
}
