//! Regenerates **Table I**: characteristics of events for the Octopus
//! use cases, and validates each workload generator's achieved rate.
//!
//! `cargo run --release -p octopus-bench --bin table1 [-- R]`

use octopus_apps::table1::{table1_rows, ConsumerKind};
use octopus_bench::figure_header;

fn main() {
    let resources: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    figure_header(
        "TABLE I — Characteristics of events for Octopus use cases",
        &format!("R = number of managed resources (here R = {resources})"),
    );
    println!(
        "{:<12} {:>14} {:>10} {:>8} {:>10} {:>10} {:>12}",
        "Use Case", "Events/Hour", "Size", "Topics", "Producers", "Consumers", "Bytes/sec"
    );
    for row in table1_rows() {
        let consumers = match row.consumers {
            ConsumerKind::Fixed(n) => n.to_string(),
            ConsumerKind::PerResource => "R".to_string(),
            ConsumerKind::Trigger => "Trigger".to_string(),
        };
        println!(
            "{:<12} {:>11}xR={:>9} {:>7}B {:>8} {:>10} {:>10} {:>10.1}",
            row.name,
            row.events_per_hour_per_resource,
            row.events_per_hour(resources),
            row.mean_event_size,
            row.topics(resources),
            resources,
            consumers,
            row.bytes_per_second(resources),
        );
    }
    let sched = &table1_rows()[2];
    println!(
        "\npaper check: peak rates 'exceeding 10,000 events per minute' (§III-B): \
         scheduling reaches {} events/min at R={resources}; R >= {} crosses 10,000/min",
        sched.events_per_hour(resources) / 60,
        (10_000u64 * 60).div_ceil(sched.events_per_hour_per_resource)
    );
}
