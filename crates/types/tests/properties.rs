//! Property-based tests for the shared types: codec totality and
//! round-trips, event builder invariants, and timestamp arithmetic.

use proptest::prelude::*;

use octopus_types::{codec, Codec, Event, Timestamp};

proptest! {
    /// Compression round-trips arbitrary bytes under every codec.
    #[test]
    fn codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        for c in [Codec::None, Codec::Lzss] {
            let framed = codec::compress(c, &data);
            prop_assert_eq!(codec::decompress(&framed).unwrap(), data.clone());
        }
    }

    /// Highly repetitive inputs always shrink under LZSS.
    #[test]
    fn codec_shrinks_repetition(unit in proptest::collection::vec(any::<u8>(), 1..16), reps in 20usize..100) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let framed = codec::compress(Codec::Lzss, &data);
        prop_assert!(framed.len() < data.len(), "{} !< {}", framed.len(), data.len());
        prop_assert_eq!(codec::decompress(&framed).unwrap(), data);
    }

    /// Decompression never panics on arbitrary (possibly garbage) input.
    #[test]
    fn decompress_is_total(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let _ = codec::decompress(&data);
    }

    /// Event wire size equals the sum of its parts, and JSON payloads
    /// round-trip through the builder.
    #[test]
    fn event_wire_size_and_json(
        key in proptest::option::of("[a-z]{1,10}"),
        n in 0usize..500,
        header_val in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let mut b = Event::builder().payload(vec![7u8; n]).header("h", &header_val);
        let key_len = key.as_ref().map(|k| k.len()).unwrap_or(0);
        if let Some(k) = key {
            b = b.key(k);
        }
        let e = b.build();
        prop_assert_eq!(e.wire_size(), key_len + n + 1 + header_val.len());
    }

    /// Timestamp plus/since are inverses and never panic.
    #[test]
    fn timestamp_arithmetic(start in 0u64..u64::MAX / 4, delta_ms in 0u64..1_000_000_000) {
        let t0 = Timestamp::from_millis(start);
        let t1 = t0.plus(std::time::Duration::from_millis(delta_ms));
        prop_assert_eq!(t1.since(t0).as_millis() as u64, delta_ms);
        prop_assert_eq!(t0.since(t1), std::time::Duration::ZERO);
    }
}
