//! Fuzz-style property tests: the decoder stack must survive arbitrary
//! attacker-controlled bytes without panicking.
//!
//! Three layers get hammered:
//!
//! - the frame decoder on pure random byte streams,
//! - the frame decoder on *bit-flipped valid frames* (the deadliest
//!   corpus: almost-valid input reaches the deepest code paths),
//! - the request/response codecs on random payloads under every api
//!   key (what a malicious client can feed the server once it has
//!   learned to produce a well-formed frame).
//!
//! Success is simply "returns `Ok` or a typed `WireError`" — the
//! process reaching the assertion at all proves no panic, no OOM from a
//! hostile length, no slice-index abort.

use proptest::prelude::*;

use octopus_broker::{AckLevel, ProduceReceipt, Record, RecordBatch};
use octopus_types::{Event, Header, Timestamp};
use octopus_wire::codec::{ApiKey, OffsetSpec, Request, Response};
use octopus_wire::frame::{decode_frame, Frame, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use octopus_wire::{WireError, WireFault};

/// Every api key the protocol defines, for exhaustive codec fuzzing.
const ALL_API_KEYS: &[ApiKey] = &[
    ApiKey::Handshake,
    ApiKey::Produce,
    ApiKey::Fetch,
    ApiKey::Metadata,
    ApiKey::ListOffsets,
    ApiKey::CreateTopic,
    ApiKey::DeleteTopic,
    ApiKey::GroupJoin,
    ApiKey::GroupHeartbeat,
    ApiKey::GroupLeave,
    ApiKey::OffsetCommit,
    ApiKey::OffsetFetch,
    ApiKey::RegisterPid,
    ApiKey::TxnBegin,
    ApiKey::TxnProduce,
    ApiKey::TxnOffsets,
    ApiKey::TxnCommit,
    ApiKey::TxnAbort,
    ApiKey::FetchCommitted,
];

proptest! {
    /// Pure noise: random byte strings never panic the frame decoder,
    /// and anything it does accept must re-encode to the bytes it
    /// consumed (no phantom frames).
    #[test]
    fn random_bytes_never_panic_frame_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // typed rejection is the expected outcome; anything accepted
        // must re-encode to exactly the bytes consumed
        if let Ok((frame, used)) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            prop_assert!(used <= bytes.len());
            prop_assert_eq!(&frame.encode()[..], &bytes[..used]);
        }
    }

    /// Bit-flipped valid frames: flip one bit anywhere in a well-formed
    /// frame. The decoder must never panic, and a flip inside the
    /// payload or the CRC field must never be silently accepted.
    #[test]
    fn bit_flipped_frames_never_panic_and_never_lie(
        api_key in any::<u16>(),
        corr in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flip_byte in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let original = Frame::new(api_key, corr, payload);
        let mut bytes = original.encode();
        let idx = flip_byte as usize % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            Ok((frame, _)) => {
                // flips in flags/api_key/correlation_id produce a
                // different-but-valid frame; flips touching the payload
                // length, CRC, or payload bytes must have been caught
                prop_assert!(
                    (3..14).contains(&idx),
                    "accepted a frame with byte {idx} flipped"
                );
                prop_assert_eq!(frame.payload, original.payload);
            }
            Err(WireError::Truncated { .. }) => {
                // a flip in payload_len that *lowers* the declared
                // length (or raises it past the buffer) looks truncated
                prop_assert!(
                    (14..18).contains(&idx),
                    "truncation from a flip at byte {idx}"
                );
            }
            Err(_) => {}
        }
    }

    /// A truncated prefix of a valid frame is always a typed error,
    /// never a panic and never an accepted frame.
    #[test]
    fn truncated_prefixes_always_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        cut_frac in any::<u16>(),
    ) {
        let bytes = Frame::new(2, 99, payload).encode();
        let cut = cut_frac as usize % bytes.len(); // strictly short
        let err = decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
        prop_assert!(matches!(
            err,
            WireError::Truncated { .. } | WireError::BadMagic(_)
        ));
    }

    /// Random payload bytes under every api key: the request codec
    /// returns a typed error or a value, never panics — even for
    /// payloads declaring collection counts in the billions.
    #[test]
    fn random_payloads_never_panic_request_codec(
        payload in proptest::collection::vec(any::<u8>(), 0..192),
    ) {
        for &key in ALL_API_KEYS {
            let _ = Request::decode(key, &payload);
        }
    }

    /// Same for the response codec (a hostile *server* must not be able
    /// to crash a client) and the error-payload codec.
    #[test]
    fn random_payloads_never_panic_response_codec(
        payload in proptest::collection::vec(any::<u8>(), 0..192),
    ) {
        for &key in ALL_API_KEYS {
            let _ = Response::decode(key, &payload);
        }
        let _ = WireFault::decode(&payload);
    }

    /// Truncating a *valid encoded request* at every byte boundary is
    /// rejected with a typed error — the codec's bounds checks hold at
    /// every cut point, not just on random noise.
    #[test]
    fn truncated_valid_request_payloads_rejected(
        topic in "[a-z]{1,12}",
        group in "[a-z]{1,12}",
        offset in any::<u64>(),
    ) {
        let req = Request::OffsetCommit {
            group,
            generation: 3,
            topic,
            partition: 1,
            offset,
        };
        let full = req.encode();
        for cut in 0..full.len() {
            prop_assert!(
                Request::decode(ApiKey::OffsetCommit, &full[..cut]).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }
}

/// Deterministic sweep (not property-based): a frame whose header
/// declares `u32::MAX` payload bytes is refused on the length cap
/// before any allocation happens, for every cap we might configure.
#[test]
fn hostile_length_declarations_never_allocate() {
    for cap in [0u32, 1, 1024, DEFAULT_MAX_PAYLOAD] {
        let mut bytes = Frame::new(1, 1, vec![]).encode();
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&bytes, cap) {
            Err(WireError::FrameTooLarge { declared, cap: c }) => {
                assert_eq!(declared, u32::MAX);
                assert_eq!(c, cap);
            }
            other => panic!("cap {cap}: expected FrameTooLarge, got {other:?}"),
        }
    }
    // and a declaration just over a tiny cap is likewise refused
    let f = Frame::new(1, 1, vec![0u8; 64]);
    assert!(matches!(
        decode_frame(&f.encode(), 63),
        Err(WireError::FrameTooLarge { declared: 64, cap: 63 })
    ));
    assert!(decode_frame(&f.encode(), 64).is_ok());
}

/// The header is exactly 22 bytes and the empty frame is exactly the
/// header — the layout contract DESIGN.md documents.
#[test]
fn header_layout_is_stable() {
    let bytes = Frame::new(0x1234, 0xDEAD_BEEF, vec![]).encode();
    assert_eq!(bytes.len(), HEADER_LEN);
    assert_eq!(&bytes[0..2], b"OC");
    assert_eq!(bytes[2], octopus_wire::VERSION);
}

// ---------------------------------------------------------------------------
// randomized encode→decode identity (the codec module's unit tests
// cover every variant once; these drive the hot variants with
// arbitrary field values, through a full frame cycle as well)
// ---------------------------------------------------------------------------

proptest! {
    /// Requests with randomized topics, partitions, offsets, group
    /// state, and record payloads survive encode→decode unchanged —
    /// and so does the full frame wrapping them.
    #[test]
    fn randomized_requests_roundtrip(
        topic in "[a-z][a-z0-9._-]{0,23}",
        group in "[a-z]{1,12}",
        member in "[a-z0-9-]{1,16}",
        partition in any::<u32>(),
        offset in any::<u64>(),
        generation in any::<u64>(),
        max_records in 0u32..100_000,
        key in proptest::option::of("[ -~]{0,24}"),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        counts in proptest::collection::vec(("[a-z]{1,8}", any::<u32>()), 0..4),
        corr in any::<u64>(),
    ) {
        let mut builder = Event::builder().payload(payload);
        if let Some(k) = key {
            builder = builder.key(k);
        }
        let event = builder.build();
        let reqs = vec![
            Request::Produce {
                topic: topic.clone(),
                partition,
                batch: RecordBatch::new(vec![event.clone()]),
                acks: AckLevel::Leader,
            },
            Request::Fetch { topic: topic.clone(), partition, offset, max_records },
            Request::FetchCommitted { topic: topic.clone(), partition, offset, max_records },
            Request::ListOffsets {
                topic: topic.clone(),
                partition,
                spec: OffsetSpec::Timestamp(offset),
            },
            Request::GroupJoin {
                group: group.clone(),
                member: member.clone(),
                topics: counts.iter().map(|(t, _)| t.clone()).collect(),
                counts: counts.clone(),
            },
            Request::OffsetCommit {
                group: group.clone(),
                generation,
                topic: topic.clone(),
                partition,
                offset,
            },
            Request::OffsetFetch { group, topic, partition },
        ];
        for req in reqs {
            let api_key = req.api_key();
            let bytes = req.encode();
            let back = Request::decode(api_key, &bytes).unwrap();
            prop_assert_eq!(&back, &req);
            // and through a whole frame: header + CRC + payload
            let frame = Frame::new(api_key as u16, corr, bytes);
            let encoded = frame.encode();
            let (decoded, used) = decode_frame(&encoded, DEFAULT_MAX_PAYLOAD).unwrap();
            prop_assert_eq!(used, encoded.len());
            prop_assert_eq!(decoded.correlation_id, corr);
            prop_assert_eq!(
                Request::decode(api_key, &decoded.payload).unwrap(),
                req
            );
        }
    }

    /// Responses carrying randomized records and offsets survive
    /// encode→decode unchanged.
    #[test]
    fn randomized_responses_roundtrip(
        offsets in proptest::collection::vec(any::<u64>(), 1..8),
        value in proptest::collection::vec(any::<u8>(), 0..256),
        key in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..32)),
        ts in any::<u64>(),
        crc in any::<u32>(),
        partition in any::<u32>(),
        count in 0usize..1_000_000,
        persisted in any::<bool>(),
        deduplicated in any::<bool>(),
        next in any::<u64>(),
    ) {
        let records: Vec<Record> = offsets
            .iter()
            .map(|&o| Record {
                offset: o,
                append_time: Timestamp(ts),
                key: key.clone().map(Into::into),
                value: value.clone().into(),
                headers: vec![Header { key: "h".into(), value: value.clone() }],
                producer_time: Timestamp(ts),
                crc,
                eos: None,
            })
            .collect();
        let cases = vec![
            (ApiKey::Fetch, Response::Fetch { records: records.clone() }),
            (ApiKey::FetchCommitted, Response::FetchCommitted { records, next }),
            (
                ApiKey::Produce,
                Response::Produce(ProduceReceipt {
                    partition,
                    base_offset: next,
                    count,
                    persisted,
                    deduplicated,
                }),
            ),
            (ApiKey::ListOffsets, Response::ListOffsets { offset: next }),
            (ApiKey::OffsetFetch, Response::OffsetFetch { offset: Some(next) }),
        ];
        for (api_key, resp) in cases {
            let bytes = resp.encode();
            prop_assert_eq!(Response::decode(api_key, &bytes).unwrap(), resp);
        }
    }
}
