//! Fault taxonomy and deterministic fault schedules.
//!
//! A [`FaultPlan`] is the unit of chaos: an ordered schedule of typed
//! faults, either composed by hand with [`FaultPlan::at`] or generated
//! from a seed with [`FaultPlan::generate`]. Generation is a pure
//! function of `(seed, profile)` — the same inputs always yield the
//! same schedule, which is what makes a chaos failure reproducible
//! from nothing but the seed printed in the test log.

use std::time::Duration;

/// One injectable fault. Identifiers are raw indices (broker number,
/// zoo replica number) rather than typed ids so plans can be built
/// without a handle on the deployment; the executor maps them onto the
/// live topology, wrapping out-of-range indices with a modulo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Kill a broker process (all partitions it hosts go dark).
    BrokerCrash { broker: u32 },
    /// Restart a dead broker: CRC-verify + truncate its log tails,
    /// resync from partition leaders, rejoin ISRs.
    BrokerRestart { broker: u32 },
    /// Kill and immediately restart one zoo ensemble replica.
    ZooReplicaFlap { replica: u32 },
    /// Sever the inter-broker link between two brokers (replication
    /// between them fails; both stay up).
    NetworkPartition { a: u32, b: u32 },
    /// Heal every severed link and resync live brokers so ISRs can
    /// re-converge.
    NetworkHeal,
    /// Degrade one broker's service time by `multiplier_pct` percent
    /// of the base (300 = 3x slower). 100 restores full speed.
    SlowBroker { broker: u32, multiplier_pct: u32 },
    /// Drop the next `count` fetch responses served by a broker.
    MessageDrop { broker: u32, count: u32 },
    /// Rewind the next `count` fetch requests by `rewind` offsets,
    /// redelivering already-consumed records (at-least-once pressure).
    MessageDuplicate { broker: u32, rewind: u32, count: u32 },
    /// Delay the next `count` fetch responses by `millis`.
    MessageDelay { broker: u32, millis: u32, count: u32 },
    /// Flip bits in the last `records` records of a follower's log,
    /// then crash + restart it so CRC recovery must detect and
    /// truncate the damage before the leader resyncs it.
    LogTailCorruption { records: u32 },
    /// Cut power to a broker: it dies *and* the unflushed suffix of
    /// each durable partition log it hosts survives only up to an
    /// `entropy`-seeded byte boundary (fsynced bytes always survive).
    /// No-op byte-wise on volatile deployments (plain crash).
    PowerLoss { broker: u32, entropy: u64 },
    /// Drop the next `count` produce acks from a broker *after* the
    /// append is durably applied. The producer sees a timeout on a
    /// write that actually happened — the ambiguity that makes retries
    /// duplicate under at-least-once and that exactly-once dedup must
    /// absorb.
    AmbiguousAck { broker: u32, count: u32 },
}

impl FaultKind {
    /// Stable one-word label, used in traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BrokerCrash { .. } => "broker-crash",
            FaultKind::BrokerRestart { .. } => "broker-restart",
            FaultKind::ZooReplicaFlap { .. } => "zoo-replica-flap",
            FaultKind::NetworkPartition { .. } => "network-partition",
            FaultKind::NetworkHeal => "network-heal",
            FaultKind::SlowBroker { .. } => "slow-broker",
            FaultKind::MessageDrop { .. } => "message-drop",
            FaultKind::MessageDuplicate { .. } => "message-duplicate",
            FaultKind::MessageDelay { .. } => "message-delay",
            FaultKind::LogTailCorruption { .. } => "log-tail-corruption",
            FaultKind::PowerLoss { .. } => "power-loss",
            FaultKind::AmbiguousAck { .. } => "ambiguous-ack",
        }
    }
}

/// A fault pinned to a point on the plan's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledFault {
    /// Virtual time offset from the start of the run.
    pub at: Duration,
    /// What to inject.
    pub kind: FaultKind,
}

/// Tuning knobs for seeded plan generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanProfile {
    /// Virtual length of the schedule; fault times are drawn from
    /// `[0, duration)`.
    pub duration: Duration,
    /// Number of faults to draw.
    pub faults: usize,
    /// Broker count of the target deployment (indices are drawn below
    /// this).
    pub brokers: u32,
    /// Zoo replica count of the target deployment.
    pub zoo_replicas: u32,
}

impl Default for PlanProfile {
    fn default() -> Self {
        PlanProfile {
            duration: Duration::from_millis(400),
            faults: 8,
            brokers: 3,
            zoo_replicas: 3,
        }
    }
}

/// A deterministic, seeded schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<ScheduledFault>,
}

/// splitmix64: tiny, seedable, and good enough for schedule shuffling.
/// Kept inline so plan generation has zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan to extend with [`FaultPlan::at`].
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Schedule `kind` at `at_ms` on the virtual timeline (builder
    /// style). Faults may be added in any order; the schedule is kept
    /// sorted by time, ties preserving insertion order.
    pub fn at(mut self, at_ms: u64, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault { at: Duration::from_millis(at_ms), kind });
        self.faults.sort_by_key(|f| f.at);
        self
    }

    /// Draw a pseudo-random schedule from `seed`. Pure: the same
    /// `(seed, profile)` always produces the same plan. The generator
    /// biases towards recoverable chaos — every partition is followed
    /// by a heal drawn later in the timeline, and crashed brokers get
    /// a matching restart — so generated plans exercise recovery paths
    /// rather than just leaving the deployment dark.
    pub fn generate(seed: u64, profile: PlanProfile) -> Self {
        let mut rng = seed;
        let brokers = profile.brokers.max(1);
        let replicas = profile.zoo_replicas.max(1);
        let span = profile.duration.as_millis().max(1) as u64;
        let mut plan = FaultPlan::new(seed);
        for _ in 0..profile.faults {
            let t = splitmix64(&mut rng) % span;
            let broker = (splitmix64(&mut rng) % u64::from(brokers)) as u32;
            let kind = match splitmix64(&mut rng) % 10 {
                0 => {
                    // crash now, restart later in the window
                    let back = t + 1 + splitmix64(&mut rng) % (span - t.min(span - 1)).max(1);
                    plan.faults.push(ScheduledFault {
                        at: Duration::from_millis(back),
                        kind: FaultKind::BrokerRestart { broker },
                    });
                    FaultKind::BrokerCrash { broker }
                }
                8 => {
                    // power loss now, restart later so recovery runs
                    let back = t + 1 + splitmix64(&mut rng) % (span - t.min(span - 1)).max(1);
                    plan.faults.push(ScheduledFault {
                        at: Duration::from_millis(back),
                        kind: FaultKind::BrokerRestart { broker },
                    });
                    FaultKind::PowerLoss { broker, entropy: splitmix64(&mut rng) }
                }
                1 => FaultKind::ZooReplicaFlap {
                    replica: (splitmix64(&mut rng) % u64::from(replicas)) as u32,
                },
                2 => {
                    let other = (broker + 1 + (splitmix64(&mut rng) % u64::from(brokers.max(2) - 1)) as u32)
                        % brokers.max(2);
                    let back = t + 1 + splitmix64(&mut rng) % (span - t.min(span - 1)).max(1);
                    plan.faults.push(ScheduledFault {
                        at: Duration::from_millis(back),
                        kind: FaultKind::NetworkHeal,
                    });
                    FaultKind::NetworkPartition { a: broker, b: other }
                }
                3 => FaultKind::SlowBroker {
                    broker,
                    multiplier_pct: 200 + (splitmix64(&mut rng) % 400) as u32,
                },
                4 => FaultKind::MessageDrop { broker, count: 1 + (splitmix64(&mut rng) % 3) as u32 },
                5 => FaultKind::MessageDuplicate {
                    broker,
                    rewind: 1 + (splitmix64(&mut rng) % 8) as u32,
                    count: 1 + (splitmix64(&mut rng) % 3) as u32,
                },
                6 => FaultKind::MessageDelay {
                    broker,
                    millis: 1 + (splitmix64(&mut rng) % 10) as u32,
                    count: 1 + (splitmix64(&mut rng) % 3) as u32,
                },
                9 => FaultKind::AmbiguousAck { broker, count: 1 + (splitmix64(&mut rng) % 2) as u32 },
                _ => FaultKind::LogTailCorruption { records: 1 + (splitmix64(&mut rng) % 4) as u32 },
            };
            plan.faults.push(ScheduledFault { at: Duration::from_millis(t), kind });
        }
        plan.faults.sort_by_key(|f| f.at);
        plan
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule, sorted by virtual time.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of distinct fault *types* (labels) scheduled.
    pub fn distinct_kinds(&self) -> usize {
        let mut labels: Vec<&str> = self.faults.iter().map(|f| f.kind.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// The plan's deterministic signature: the `(at, kind)` sequence.
    /// Two plans with equal signatures inject identical chaos.
    pub fn signature(&self) -> Vec<(Duration, FaultKind)> {
        self.faults.iter().map(|f| (f.at, f.kind)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_by_time() {
        let p = FaultPlan::new(1)
            .at(50, FaultKind::NetworkHeal)
            .at(10, FaultKind::BrokerCrash { broker: 0 })
            .at(30, FaultKind::SlowBroker { broker: 1, multiplier_pct: 300 });
        let times: Vec<u64> = p.faults().iter().map(|f| f.at.as_millis() as u64).collect();
        assert_eq!(times, vec![10, 30, 50]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(42, PlanProfile::default());
        let b = FaultPlan::generate(42, PlanProfile::default());
        assert_eq!(a, b);
        assert_eq!(a.signature(), b.signature());
        let c = FaultPlan::generate(43, PlanProfile::default());
        assert_ne!(a.signature(), c.signature(), "different seeds diverge");
    }

    #[test]
    fn generated_partitions_are_followed_by_heals() {
        for seed in 0..20 {
            let p = FaultPlan::generate(seed, PlanProfile::default());
            for (i, f) in p.faults().iter().enumerate() {
                if matches!(f.kind, FaultKind::NetworkPartition { .. }) {
                    assert!(
                        p.faults()[i..].iter().any(|g| g.kind == FaultKind::NetworkHeal),
                        "partition at {:?} in seed {seed} has no later heal",
                        f.at
                    );
                }
            }
        }
    }

    #[test]
    fn generated_power_losses_are_followed_by_restarts() {
        let mut seen_any = false;
        for seed in 0..50 {
            let p = FaultPlan::generate(seed, PlanProfile::default());
            for (i, f) in p.faults().iter().enumerate() {
                if let FaultKind::PowerLoss { broker, .. } = f.kind {
                    seen_any = true;
                    assert!(
                        p.faults()[i..]
                            .iter()
                            .any(|g| g.kind == FaultKind::BrokerRestart { broker }),
                        "power loss on broker {broker} at {:?} in seed {seed} has no later restart",
                        f.at
                    );
                }
            }
        }
        assert!(seen_any, "50 seeds never drew a power loss");
    }

    #[test]
    fn distinct_kind_count() {
        let p = FaultPlan::new(0)
            .at(0, FaultKind::BrokerCrash { broker: 0 })
            .at(1, FaultKind::BrokerCrash { broker: 1 })
            .at(2, FaultKind::NetworkHeal)
            .at(3, FaultKind::LogTailCorruption { records: 2 })
            .at(4, FaultKind::MessageDrop { broker: 0, count: 1 })
            .at(5, FaultKind::SlowBroker { broker: 0, multiplier_pct: 200 });
        assert_eq!(p.distinct_kinds(), 5);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }
}
