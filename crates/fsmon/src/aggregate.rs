//! The hierarchical aggregator: local firehose → important, unique
//! events on the cloud fabric.
//!
//! "A local aggregator selects important and unique events for
//! publication to Octopus" (§VI-B). Two reductions compose:
//!
//! - **dedup window**: repeated (path, op) pairs within a time window
//!   collapse to one event (checkpoint rewrites, parallel writers);
//! - **importance filter**: scratch/temporary paths are dropped
//!   entirely (they will never be replicated).
//!
//! §VII-C credits exactly this with reducing trigger invocations "by
//! orders of magnitude"; the aggregator reports its reduction factor so
//! the `fig7` harness can print it.

use std::collections::HashMap;

use octopus_broker::{AckLevel, Cluster};
use octopus_types::{Event, OctoResult, Timestamp};

use crate::fs::FsOp;

/// Aggregator tuning.
#[derive(Debug, Clone)]
pub struct AggregatorConfig {
    /// Dedup window: a (path, op) pair seen within this many ms of its
    /// previous emission is suppressed.
    pub dedup_window_ms: u64,
    /// Path substrings that mark unimportant files.
    pub unimportant_markers: Vec<String>,
    /// Only these operations are forwarded (data automation cares about
    /// creations and modifications; deletes of scratch are noise).
    pub forwarded_ops: Vec<FsOp>,
}

impl AggregatorConfig {
    /// Disable every reduction: forward all raw events (the ablation
    /// baseline quantifying what the hierarchy saves, §VII-C).
    pub fn passthrough() -> Self {
        AggregatorConfig {
            dedup_window_ms: 0,
            unimportant_markers: Vec::new(),
            forwarded_ops: vec![FsOp::Created, FsOp::Modified, FsOp::Deleted],
        }
    }
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            dedup_window_ms: 5_000,
            unimportant_markers: vec!["/tmp/".into(), ".tmp".into(), ".lock".into()],
            forwarded_ops: vec![FsOp::Created, FsOp::Modified],
        }
    }
}

/// The aggregator: consumes a local topic, publishes the distillate to
/// a cloud-fabric topic.
pub struct Aggregator {
    local: Cluster,
    cloud: Cluster,
    local_topic: String,
    cloud_topic: String,
    config: AggregatorConfig,
    /// Last emission time per (path, op-name).
    last_emitted: HashMap<(String, String), Timestamp>,
    /// Next local offset per partition.
    positions: HashMap<u32, u64>,
    seen: u64,
    forwarded: u64,
}

impl Aggregator {
    /// Wire `local_topic` on the local cluster to `cloud_topic` on the
    /// cloud fabric. The cloud topic must already exist (it is
    /// provisioned through OWS by the owning user).
    pub fn new(
        local: Cluster,
        local_topic: &str,
        cloud: Cluster,
        cloud_topic: &str,
        config: AggregatorConfig,
    ) -> Self {
        Aggregator {
            local,
            cloud,
            local_topic: local_topic.to_string(),
            cloud_topic: cloud_topic.to_string(),
            config,
            last_emitted: HashMap::new(),
            positions: HashMap::new(),
            seen: 0,
            forwarded: 0,
        }
    }

    /// Drain currently available local events, forwarding the
    /// important, unique ones. Returns (seen, forwarded) for this pass.
    pub fn run_once(&mut self) -> OctoResult<(u64, u64)> {
        let parts = self.local.partition_count(&self.local_topic)?;
        let mut seen = 0u64;
        let mut forwarded = 0u64;
        for p in 0..parts {
            let mut pos = self.positions.get(&p).copied().unwrap_or(0);
            loop {
                let records = self.local.fetch(&self.local_topic, p, pos, 1000)?;
                if records.is_empty() {
                    self.positions.insert(p, pos);
                    break;
                }
                pos = records.last().expect("non-empty").offset + 1;
                for r in records {
                    seen += 1;
                    let Ok(json) = serde_json::from_slice::<serde_json::Value>(&r.value) else {
                        continue; // malformed events never leave the edge
                    };
                    if self.should_forward(&json, r.append_time) {
                        let event = Event::builder()
                            .key(json["path"].as_str().unwrap_or_default())
                            .json(&json)?
                            .header("aggregated-by", b"octopus-fsmon")
                            .timestamp(r.append_time)
                            .build();
                        self.cloud.produce(&self.cloud_topic, event, AckLevel::Leader)?;
                        forwarded += 1;
                    }
                }
            }
        }
        self.seen += seen;
        self.forwarded += forwarded;
        Ok((seen, forwarded))
    }

    fn should_forward(&mut self, json: &serde_json::Value, now: Timestamp) -> bool {
        let path = json["path"].as_str().unwrap_or_default();
        let op = json["event_type"].as_str().unwrap_or_default();
        // importance: drop scratch
        if self.config.unimportant_markers.iter().any(|m| path.contains(m.as_str())) {
            return false;
        }
        // op filter
        if !self.config.forwarded_ops.iter().any(|o| o.as_str() == op) {
            return false;
        }
        // dedup window
        let key = (path.to_string(), op.to_string());
        match self.last_emitted.get(&key) {
            Some(&prev) if now.since(prev).as_millis() < self.config.dedup_window_ms as u128 => {
                false
            }
            _ => {
                self.last_emitted.insert(key, now);
                true
            }
        }
    }

    /// Lifetime reduction factor (`seen / forwarded`).
    pub fn reduction_factor(&self) -> f64 {
        if self.forwarded == 0 {
            self.seen as f64
        } else {
            self.seen as f64 / self.forwarded as f64
        }
    }

    /// Totals: (events seen, events forwarded).
    pub fn totals(&self) -> (u64, u64) {
        (self.seen, self.forwarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{SyntheticFs, WorkloadProfile};
    use crate::monitor::FsMonitor;
    use octopus_broker::TopicConfig;

    fn setup() -> (Cluster, Cluster, FsMonitor, Aggregator) {
        let local = Cluster::new(2);
        let cloud = Cluster::new(2);
        cloud.create_topic("fsmon.events", TopicConfig::default()).unwrap();
        let mon = FsMonitor::new(local.clone(), "raw").unwrap();
        let agg = Aggregator::new(
            local.clone(),
            "raw",
            cloud.clone(),
            "fsmon.events",
            AggregatorConfig::default(),
        );
        (local, cloud, mon, agg)
    }

    fn cloud_events(cloud: &Cluster) -> Vec<serde_json::Value> {
        let mut out = Vec::new();
        for p in 0..cloud.partition_count("fsmon.events").unwrap() {
            for r in cloud.fetch("fsmon.events", p, 0, 100_000).unwrap() {
                out.push(serde_json::from_slice(&r.value).unwrap());
            }
        }
        out
    }

    #[test]
    fn aggregation_reduces_event_volume() {
        let (_local, cloud, mut mon, mut agg) = setup();
        let mut fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), 3);
        for i in 0..5 {
            mon.publish(&fs.job_burst(octopus_types::Timestamp::from_millis(i))).unwrap();
        }
        let (seen, forwarded) = agg.run_once().unwrap();
        assert_eq!(seen, mon.published());
        assert!(forwarded > 0);
        assert!(forwarded < seen, "reduction expected: {forwarded} < {seen}");
        assert!(agg.reduction_factor() > 1.5, "factor {}", agg.reduction_factor());
        assert_eq!(cloud_events(&cloud).len() as u64, forwarded);
    }

    #[test]
    fn scratch_files_never_reach_the_cloud() {
        let (_local, cloud, mut mon, mut agg) = setup();
        let mut fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), 4);
        mon.publish(&fs.job_burst(octopus_types::Timestamp::from_millis(0))).unwrap();
        agg.run_once().unwrap();
        for e in cloud_events(&cloud) {
            let path = e["path"].as_str().unwrap();
            assert!(!path.contains("/tmp/"), "scratch path leaked: {path}");
            assert!(!path.ends_with(".tmp"));
        }
    }

    #[test]
    fn deletes_are_filtered_by_op_list() {
        let (_local, cloud, mut mon, mut agg) = setup();
        let mut fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), 5);
        mon.publish(&fs.job_burst(octopus_types::Timestamp::from_millis(0))).unwrap();
        agg.run_once().unwrap();
        for e in cloud_events(&cloud) {
            assert_ne!(e["event_type"], "deleted");
        }
    }

    #[test]
    fn dedup_window_collapses_rapid_modifications() {
        let (_local, cloud, mut mon, mut agg) = setup();
        // craft: one file modified 10 times within the window
        let events: Vec<crate::fs::FsEvent> = (0..10)
            .map(|i| crate::fs::FsEvent {
                op: FsOp::Modified,
                path: "/pfs/x/out.h5".into(),
                size: 1,
                timestamp: octopus_types::Timestamp::from_millis(i),
                fs_name: "x".into(),
            })
            .collect();
        mon.publish(&events).unwrap();
        agg.run_once().unwrap();
        assert_eq!(cloud_events(&cloud).len(), 1, "10 rapid modifies collapse to 1");
    }

    #[test]
    fn passthrough_forwards_everything() {
        let local = Cluster::new(2);
        let cloud = Cluster::new(2);
        cloud.create_topic("fsmon.events", TopicConfig::default()).unwrap();
        let mut mon = FsMonitor::new(local.clone(), "raw").unwrap();
        let mut agg = Aggregator::new(
            local,
            "raw",
            cloud,
            "fsmon.events",
            AggregatorConfig::passthrough(),
        );
        let mut fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), 9);
        mon.publish(&fs.job_burst(octopus_types::Timestamp::from_millis(0))).unwrap();
        let (seen, forwarded) = agg.run_once().unwrap();
        assert_eq!(seen, forwarded, "passthrough must not reduce");
        assert!((agg.reduction_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_runs_do_not_refforward() {
        let (_local, _cloud, mut mon, mut agg) = setup();
        let mut fs = SyntheticFs::new("pfs0", WorkloadProfile::default(), 6);
        mon.publish(&fs.job_burst(octopus_types::Timestamp::from_millis(0))).unwrap();
        let (seen1, fwd1) = agg.run_once().unwrap();
        assert!(seen1 > 0 && fwd1 > 0);
        // nothing new: second pass forwards nothing
        let (seen2, fwd2) = agg.run_once().unwrap();
        assert_eq!(seen2, 0);
        assert_eq!(fwd2, 0);
    }
}
