//! Regenerates **Fig. 4**: trigger autoscaling under processing
//! pressure. Workload: >5000 tasks, each sleeping 30 s, buffered evenly
//! across 128 partitions, consumer batch size 1. The Lambda-style
//! autoscaler evaluates pressure every minute; concurrency climbs
//! 3 → 128 within ~4 evaluations and scales down before completion.
//!
//! `cargo run --release -p octopus-bench --bin fig4 [-- eval-period-secs]`

use octopus_bench::{bar, figure_header};
use octopus_trigger::{Autoscaler, AutoscalerConfig};

const TASKS: u64 = 5_128; // "more than 5000 tasks"
const TASK_SECS: u64 = 30;
const PARTITIONS: u32 = 128;

fn main() {
    let eval_period: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    figure_header(
        "FIG. 4 — Trigger scaling: 5128 x 30s tasks on 128 partitions",
        &format!("processing pressure evaluated every {eval_period}s (Lambda uses 60s)"),
    );
    let mut scaler = Autoscaler::new(
        AutoscalerConfig { evaluation_interval_ms: eval_period * 1000, ..Default::default() },
        PARTITIONS,
    );
    let mut backlog = TASKS as f64;
    let mut t = 0u64;
    let mut peak = 0u32;
    let mut peak_at = 0u64;
    println!("{:>7} {:>9} {:>12}  concurrency", "time s", "backlog", "concurrency");
    while backlog > 0.0 {
        let concurrency = scaler.concurrency();
        peak = peak.max(concurrency);
        if peak == concurrency && peak_at == 0 && concurrency == 128 {
            peak_at = t;
        }
        println!(
            "{:>7} {:>9.0} {:>12}  {}",
            t,
            backlog,
            concurrency,
            bar(concurrency as f64, 128.0, 32)
        );
        // each worker finishes eval_period/TASK_SECS tasks per interval
        let completed = concurrency as f64 * eval_period as f64 / TASK_SECS as f64;
        backlog = (backlog - completed).max(0.0);
        t += eval_period;
        scaler.evaluate(backlog.round() as u64);
    }
    println!("{:>7} {:>9} {:>12}  (drained; scaling down)", t, 0, scaler.concurrency());
    // drain-down tail
    for _ in 0..6 {
        t += eval_period;
        let c = scaler.evaluate(0);
        println!("{:>7} {:>9} {:>12}  {}", t, 0, c, bar(c as f64, 128.0, 32));
    }
    println!("\npeak concurrency: {peak} (reached at t={peak_at}s; paper: 128 within ~4 min)");
    println!("history points recorded: {}", scaler.history().len());
    assert_eq!(peak, 128);
    assert!(peak_at <= 4 * 60 * eval_period / 60, "reached peak within four evaluations");
}
