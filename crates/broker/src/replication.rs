//! Per-broker replication executors.
//!
//! `acks=all` produces must land a batch on every in-sync follower
//! before acknowledging. Doing that inline on the producing thread
//! serializes the follower appends — replication latency becomes the
//! *sum* over followers, where the paper's Fig. 3 measures a fan-out
//! (max over followers). This module gives every broker a long-lived
//! executor thread fed by a bounded channel; the produce path submits
//! one job per follower and waits for the replies, so follower appends
//! overlap.
//!
//! ## Semantics (bit-for-bit with the old sequential loop)
//!
//! A follower replicates successfully iff, at execution time, the
//! leader→follower link is not severed, the follower is alive, and its
//! replica log accepts the append — the exact predicate the sequential
//! loop evaluated. Any failure drops the follower from the ISR
//! (Kafka's leader removes laggards), and a full executor queue counts
//! as failure too: a follower that cannot keep up with the submission
//! rate *is* a laggard, and treating it as one keeps submission
//! non-blocking, which matters because jobs are submitted while the
//! leader's log lock is held (see below).
//!
//! ## Ordering
//!
//! Jobs are submitted *under the leader's log lock*, and each broker
//! has exactly one executor draining a FIFO channel. Concurrent
//! producers therefore enqueue follower appends in leader-append
//! order, and the executor applies them in that order — follower
//! replicas converge to the leader's exact record sequence. (The old
//! sequential loop replicated *outside* any shared ordering: two
//! producers could append to the leader in one order and to a follower
//! in the other, silently diverging the replica until the next
//! resync.)
//!
//! ## No deadlocks
//!
//! Submission uses `try_send` (never blocks while holding the leader
//! lock); reply channels are sized to the follower count (worker
//! replies never block); executors take only one log lock at a time.

use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::RwLock;

use octopus_types::{PartitionId, Timestamp, TopicName};

use crate::broker::{Broker, BrokerId};
use crate::fault::FaultInjector;
use crate::record::RecordBatch;

/// Jobs queued ahead of a follower before submission starts failing
/// (and shrinking the ISR). Sized so only a genuinely stalled follower
/// ever reports Full.
const QUEUE_DEPTH: usize = 256;

/// How many `try_recv` probes (each followed by a `yield_now`) an idle
/// executor makes before parking on a blocking `recv`. Under a steady
/// produce load the next job arrives within a probe or two, so the
/// executor dodges the condvar sleep/wake. The bound is deliberately
/// tiny: on an oversubscribed machine each yield can burn a full
/// scheduler slice running an unrelated thread, so after a few misses
/// parking is strictly cheaper (and an idle cluster must not busy-wait).
const IDLE_SPIN_LIMIT: u32 = 4;

/// One follower append, executed on the follower's executor thread.
pub(crate) struct ReplicationJob {
    /// Leader broker (for the severed-link check, evaluated on the
    /// executor at execution time, exactly like the old inline loop).
    pub leader: BrokerId,
    pub topic: TopicName,
    pub partition: PartitionId,
    pub batch: Arc<RecordBatch>,
    pub now: Timestamp,
    /// The follower's incarnation at submission time. The executor
    /// refuses the job if the follower has been killed since (the
    /// epoch bumps on every kill): a batch queued before a crash must
    /// never replay onto the restarted broker's resynced log, where it
    /// would duplicate records the resync already copied.
    pub follower_epoch: u64,
    /// Where the executor reports `(follower, success)`.
    pub reply: Sender<(BrokerId, bool)>,
}

/// One executor thread per broker, each draining a bounded FIFO.
///
/// The pool grows at runtime: brokers joining the cluster get an
/// executor via [`ReplicationPool::add_broker`]. Slots are indexed by
/// broker id and never removed (retired brokers' executors idle until
/// the pool drops), so submission stays a lock-free-ish indexed send
/// behind a briefly-held read lock.
pub(crate) struct ReplicationPool {
    senders: RwLock<Vec<Sender<ReplicationJob>>>,
}

impl ReplicationPool {
    /// Spawn one executor per broker. Threads exit when the pool (the
    /// cluster) is dropped and the channels disconnect.
    pub fn new(brokers: &[Arc<Broker>], fault: FaultInjector) -> Self {
        let pool = ReplicationPool { senders: RwLock::new(Vec::with_capacity(brokers.len())) };
        for b in brokers {
            pool.add_broker(b, fault.clone());
        }
        pool
    }

    /// Spawn an executor for a broker that just joined. Must be called
    /// with ids in order: the new broker's id must equal the current
    /// slot count so `senders[id]` stays the broker's channel.
    pub fn add_broker(&self, broker: &Arc<Broker>, fault: FaultInjector) {
        let mut senders = self.senders.write();
        assert_eq!(
            senders.len(),
            broker.id().0 as usize,
            "replication pool slots must be added in broker-id order"
        );
        let (tx, rx) = bounded::<ReplicationJob>(QUEUE_DEPTH);
        let broker = Arc::clone(broker);
        std::thread::Builder::new()
            .name(format!("octopus-repl-{}", broker.id().0))
            .spawn(move || run_executor(broker, fault, rx))
            .expect("spawn replication executor");
        senders.push(tx);
    }

    /// Submit a follower append. Never blocks: a full queue (stalled
    /// follower) or a disconnected executor reports failure on the
    /// job's reply channel immediately, which the caller turns into an
    /// ISR shrink.
    pub fn submit(&self, follower: BrokerId, job: ReplicationJob) {
        match self.senders.read()[follower.0 as usize].try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                let _ = job.reply.send((follower, false));
            }
        }
    }
}

/// Executor loop: drain jobs until the cluster drops the sender side.
///
/// Durable appends are two-phase: the write happens under the replica's
/// log lock, but the fsync ticket is waited *after* the lock drops, so
/// the follower's fsync runs concurrently with the leader's (and group-
/// commits with other producers' batches on the same replica).
fn run_executor(broker: Arc<Broker>, fault: FaultInjector, rx: Receiver<ReplicationJob>) {
    'drain: loop {
        // Probe-and-yield before parking: under load the next job is
        // already queued (or lands within a timeslice), and skipping
        // the blocking recv skips a sleep/wake round-trip per job.
        let mut next = None;
        for _ in 0..IDLE_SPIN_LIMIT {
            match rx.try_recv() {
                Ok(job) => {
                    next = Some(job);
                    break;
                }
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => break 'drain,
            }
        }
        let job = match next {
            Some(job) => job,
            None => match rx.recv() {
                Ok(job) => job,
                Err(_) => break,
            },
        };
        let ok = !fault.is_severed(job.leader, broker.id())
            && broker.is_alive()
            && broker.epoch() == job.follower_epoch
            && match broker.log(&job.topic, job.partition) {
                Some(log) => {
                    let appended = log.lock().append_deferred(&job.batch, job.now);
                    match appended {
                        Ok((_, Some(ticket))) => ticket.wait().is_ok(),
                        Ok((_, None)) => true,
                        Err(_) => false,
                    }
                }
                None => false,
            };
        let _ = job.reply.send((broker.id(), ok));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;
    use crate::log::DEFAULT_SEGMENT_BYTES;
    use octopus_types::{Event, Timestamp};

    fn batch(tag: &str) -> Arc<RecordBatch> {
        Arc::new(RecordBatch::new(vec![Event::from_bytes(tag.as_bytes().to_vec())]))
    }

    fn job(tag: &str, epoch: u64, reply: &Sender<(BrokerId, bool)>) -> ReplicationJob {
        ReplicationJob {
            leader: BrokerId(0),
            topic: "t".to_string(),
            partition: 0,
            batch: batch(tag),
            now: Timestamp::from_millis(0),
            follower_epoch: epoch,
            reply: reply.clone(),
        }
    }

    fn follower() -> Arc<Broker> {
        let broker = Arc::new(Broker::new(BrokerId(1)));
        broker.host_partition("t", 0, DEFAULT_SEGMENT_BYTES).unwrap();
        broker
    }

    fn pool_of(follower: &Arc<Broker>, fault: FaultInjector) -> ReplicationPool {
        // senders are indexed by broker id, so slot 0 is a placeholder
        let brokers = vec![Arc::new(Broker::new(BrokerId(0))), Arc::clone(follower)];
        ReplicationPool::new(&brokers, fault)
    }

    #[test]
    fn executor_appends_in_submission_order() {
        let broker = follower();
        let pool = pool_of(&broker, FaultInjector::new());
        let (tx, rx) = reply_channel(1);
        for i in 0..64 {
            pool.submit(BrokerId(1), job(&format!("r{i}"), broker.epoch(), &tx));
        }
        for _ in 0..64 {
            assert_eq!(rx.recv().unwrap(), (BrokerId(1), true));
        }
        let log = broker.log("t", 0).unwrap();
        let records = log.snapshot().read(0, 128).unwrap();
        assert_eq!(records.len(), 64);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.offset, i as u64);
            assert_eq!(&rec.value[..], format!("r{i}").as_bytes());
        }
    }

    #[test]
    fn dead_broker_and_severed_link_report_failure() {
        let broker = follower();
        let severed = FaultInjector::new();
        severed.sever_link(BrokerId(0), BrokerId(1));
        let severed_pool = pool_of(&broker, severed);
        let (tx, rx) = reply_channel(1);
        severed_pool.submit(BrokerId(1), job("x", broker.epoch(), &tx));
        assert_eq!(rx.recv().unwrap(), (BrokerId(1), false));

        let pool = pool_of(&broker, FaultInjector::new());
        broker.kill();
        pool.submit(BrokerId(1), job("y", broker.epoch(), &tx));
        assert_eq!(rx.recv().unwrap(), (BrokerId(1), false));
        assert!(broker.log("t", 0).unwrap().snapshot().read(0, 8).unwrap().is_empty());
    }

    #[test]
    fn pool_grows_at_runtime() {
        let broker = follower();
        let pool = pool_of(&broker, FaultInjector::new());
        // a broker joins after the pool was built
        let joined = Arc::new(Broker::new(BrokerId(2)));
        joined.host_partition("t", 0, DEFAULT_SEGMENT_BYTES).unwrap();
        pool.add_broker(&joined, FaultInjector::new());
        let (tx, rx) = reply_channel(1);
        pool.submit(
            BrokerId(2),
            ReplicationJob {
                leader: BrokerId(0),
                topic: "t".to_string(),
                partition: 0,
                batch: batch("joined"),
                now: Timestamp::from_millis(0),
                follower_epoch: joined.epoch(),
                reply: tx,
            },
        );
        assert_eq!(rx.recv().unwrap(), (BrokerId(2), true));
        assert_eq!(joined.log("t", 0).unwrap().snapshot().read(0, 8).unwrap().len(), 1);
    }

    #[test]
    fn stale_epoch_jobs_are_fenced_after_restart() {
        let broker = follower();
        let pool = pool_of(&broker, FaultInjector::new());
        let (tx, rx) = reply_channel(1);
        // a job queued before the crash, executed after the restart,
        // must NOT append (the resync copy already covers its batch)
        let stale = broker.epoch();
        broker.kill();
        broker.restart();
        pool.submit(BrokerId(1), job("ghost", stale, &tx));
        assert_eq!(rx.recv().unwrap(), (BrokerId(1), false));
        assert!(broker.log("t", 0).unwrap().snapshot().read(0, 8).unwrap().is_empty());
        // current-epoch jobs still land
        pool.submit(BrokerId(1), job("live", broker.epoch(), &tx));
        assert_eq!(rx.recv().unwrap(), (BrokerId(1), true));
        assert_eq!(broker.log("t", 0).unwrap().snapshot().read(0, 8).unwrap().len(), 1);
    }
}

/// An executor's `(follower, success)` verdict for one job.
pub(crate) type ReplicationReply = (BrokerId, bool);

/// Build a reply channel sized so executor replies can never block.
pub(crate) fn reply_channel(
    followers: usize,
) -> (Sender<ReplicationReply>, Receiver<ReplicationReply>) {
    bounded(followers.max(1))
}
