//! IAM-style identities with access key/secret pairs and HMAC request
//! signing.
//!
//! MSK supports only AWS IAM / SCRAM authentication, so OWS acts as an
//! intermediary: it creates an IAM identity per Octopus user and returns
//! an access key + secret (`GET /create_key`, §IV-C). Producers and
//! consumers then sign broker requests with the secret; brokers verify
//! the signature and resolve the key to a principal for ACL checks.
//!
//! Signing is a SigV4-flavoured HMAC over a canonical string
//! `{key_id}\n{operation}\n{resource}\n{timestamp_ms}`, with a freshness
//! window to block replays.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use octopus_types::{Clock, OctoError, OctoResult, Timestamp, Uid, WallClock};

use crate::sha::{ct_eq, hex, hmac_sha256};

/// An access key pair returned to a client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessKey {
    /// Public key id (sent with every request).
    pub key_id: String,
    /// Secret (never sent; used to sign).
    pub secret: String,
}

/// A signed broker request, ready for verification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedRequest {
    /// Key id of the signer.
    pub key_id: String,
    /// Operation name, e.g. `produce`, `fetch`, `describe`.
    pub operation: String,
    /// Resource, e.g. the topic name.
    pub resource: String,
    /// Client timestamp (freshness check).
    pub timestamp: Timestamp,
    /// Hex HMAC-SHA256 over the canonical string.
    pub signature: String,
}

#[derive(Debug, Clone)]
struct KeyRecord {
    secret: String,
    principal: Uid,
    revoked: bool,
}

struct Inner {
    keys: HashMap<String, KeyRecord>,
    by_principal: HashMap<Uid, Vec<String>>,
    max_skew: Duration,
}

/// The IAM service: key issuance and request verification.
#[derive(Clone)]
pub struct IamService {
    inner: Arc<RwLock<Inner>>,
    clock: Arc<dyn Clock>,
    rng: Arc<parking_lot::Mutex<rand::rngs::StdRng>>,
}

impl IamService {
    /// Service with the wall clock and a 5-minute signature freshness
    /// window.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock))
    }

    /// Service with an injected clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        use rand::SeedableRng;
        IamService {
            inner: Arc::new(RwLock::new(Inner {
                keys: HashMap::new(),
                by_principal: HashMap::new(),
                max_skew: Duration::from_secs(300),
            })),
            clock,
            rng: Arc::new(parking_lot::Mutex::new(rand::rngs::StdRng::from_entropy())),
        }
    }

    /// Create an IAM identity for `principal` and return its key pair.
    /// A principal may hold several keys (rotation).
    pub fn create_key(&self, principal: Uid) -> AccessKey {
        let mut id_bytes = [0u8; 10];
        let mut secret_bytes = [0u8; 32];
        {
            let mut rng = self.rng.lock();
            rng.fill_bytes(&mut id_bytes);
            rng.fill_bytes(&mut secret_bytes);
        }
        let key = AccessKey {
            key_id: format!("OKIA{}", hex(&id_bytes).to_uppercase()),
            secret: hex(&secret_bytes),
        };
        let mut inner = self.inner.write();
        inner.keys.insert(
            key.key_id.clone(),
            KeyRecord { secret: key.secret.clone(), principal, revoked: false },
        );
        inner.by_principal.entry(principal).or_default().push(key.key_id.clone());
        key
    }

    /// Revoke a key.
    pub fn revoke_key(&self, key_id: &str) -> OctoResult<()> {
        let mut inner = self.inner.write();
        let rec = inner
            .keys
            .get_mut(key_id)
            .ok_or_else(|| OctoError::NotFound(format!("key {key_id}")))?;
        rec.revoked = true;
        Ok(())
    }

    /// All key ids issued to a principal.
    pub fn keys_of(&self, principal: Uid) -> Vec<String> {
        self.inner.read().by_principal.get(&principal).cloned().unwrap_or_default()
    }

    fn canonical(key_id: &str, operation: &str, resource: &str, ts: Timestamp) -> Vec<u8> {
        format!("{key_id}\n{operation}\n{resource}\n{}", ts.as_millis()).into_bytes()
    }

    /// Client-side: sign a request with a key pair.
    pub fn sign(key: &AccessKey, operation: &str, resource: &str, now: Timestamp) -> SignedRequest {
        let canonical = Self::canonical(&key.key_id, operation, resource, now);
        SignedRequest {
            key_id: key.key_id.clone(),
            operation: operation.to_string(),
            resource: resource.to_string(),
            timestamp: now,
            signature: hex(&hmac_sha256(key.secret.as_bytes(), &canonical)),
        }
    }

    /// Broker-side: verify a signed request and resolve the principal.
    pub fn verify(&self, req: &SignedRequest) -> OctoResult<Uid> {
        let inner = self.inner.read();
        let rec = inner
            .keys
            .get(&req.key_id)
            .ok_or_else(|| OctoError::Unauthenticated(format!("unknown key {}", req.key_id)))?;
        if rec.revoked {
            return Err(OctoError::Unauthenticated("key revoked".into()));
        }
        let now = self.clock.now();
        let skew = now.since(req.timestamp).max(req.timestamp.since(now));
        if skew > inner.max_skew {
            return Err(OctoError::Unauthenticated("signature expired (clock skew)".into()));
        }
        let canonical =
            Self::canonical(&req.key_id, &req.operation, &req.resource, req.timestamp);
        let expect = hex(&hmac_sha256(rec.secret.as_bytes(), &canonical));
        if !ct_eq(expect.as_bytes(), req.signature.as_bytes()) {
            return Err(OctoError::Unauthenticated("bad signature".into()));
        }
        Ok(rec.principal)
    }
}

impl Default for IamService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::ManualClock;

    fn setup() -> (IamService, ManualClock, Uid, AccessKey) {
        let clock = ManualClock::new(Timestamp::from_millis(1_000_000));
        let iam = IamService::with_clock(Arc::new(clock.clone()));
        let principal = Uid::from_parts(7, 7);
        let key = iam.create_key(principal);
        (iam, clock, principal, key)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (iam, clock, principal, key) = setup();
        let req = IamService::sign(&key, "produce", "fsmon.events", clock.now());
        assert_eq!(iam.verify(&req).unwrap(), principal);
    }

    #[test]
    fn tampering_is_detected() {
        let (iam, clock, _, key) = setup();
        let mut req = IamService::sign(&key, "produce", "fsmon.events", clock.now());
        req.resource = "someone.elses.topic".into();
        assert!(matches!(iam.verify(&req), Err(OctoError::Unauthenticated(_))));
        let mut req2 = IamService::sign(&key, "produce", "t", clock.now());
        req2.operation = "fetch".into();
        assert!(iam.verify(&req2).is_err());
    }

    #[test]
    fn wrong_secret_fails() {
        let (iam, clock, _, key) = setup();
        let forged = AccessKey { key_id: key.key_id.clone(), secret: "0".repeat(64) };
        let req = IamService::sign(&forged, "produce", "t", clock.now());
        assert!(iam.verify(&req).is_err());
    }

    #[test]
    fn stale_signature_rejected() {
        let (iam, clock, _, key) = setup();
        let req = IamService::sign(&key, "produce", "t", clock.now());
        clock.advance(Duration::from_secs(301));
        assert!(matches!(iam.verify(&req), Err(OctoError::Unauthenticated(_))));
    }

    #[test]
    fn revoked_key_rejected() {
        let (iam, clock, _, key) = setup();
        iam.revoke_key(&key.key_id).unwrap();
        let req = IamService::sign(&key, "produce", "t", clock.now());
        assert!(iam.verify(&req).is_err());
        assert!(iam.revoke_key("OKIAnope").is_err());
    }

    #[test]
    fn key_rotation_keeps_old_until_revoked() {
        let (iam, clock, principal, key1) = setup();
        let key2 = iam.create_key(principal);
        assert_eq!(iam.keys_of(principal).len(), 2);
        assert_ne!(key1.key_id, key2.key_id);
        let r1 = IamService::sign(&key1, "produce", "t", clock.now());
        let r2 = IamService::sign(&key2, "produce", "t", clock.now());
        assert!(iam.verify(&r1).is_ok());
        assert!(iam.verify(&r2).is_ok());
        iam.revoke_key(&key1.key_id).unwrap();
        assert!(iam.verify(&r1).is_err());
        assert!(iam.verify(&r2).is_ok());
    }

    #[test]
    fn key_ids_are_unique_and_prefixed() {
        let (iam, _, principal, _) = setup();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let k = iam.create_key(principal);
            assert!(k.key_id.starts_with("OKIA"));
            assert!(seen.insert(k.key_id));
        }
    }
}
