//! Network model: point-to-point links with propagation latency,
//! serialization bandwidth, and jitter.
//!
//! A [`Link`] is unidirectional; a host pair gets two. Message delivery
//! time is `now + latency·(1 ± jitter) + size/bandwidth + queueing`,
//! where queueing enforces that a link transmits one message at a time
//! (FIFO). This matches how the paper's remote clients see a stable
//! 46–47 ms RTT with <0.1% deviation plus throughput limited by the
//! WAN path.

use std::collections::HashMap;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a registered link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// A unidirectional network link.
#[derive(Debug, Clone)]
pub struct Link {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Serialization bandwidth in bytes/second. `f64::INFINITY` models an
    /// unconstrained path (intra-host loopback).
    pub bandwidth_bps: f64,
    /// Relative jitter applied to latency (e.g. `0.001` = ±0.1%).
    pub jitter: f64,
    /// Independent per-message loss probability.
    pub loss: f64,
    /// Time the link finishes transmitting its current backlog.
    busy_until: SimTime,
}

impl Link {
    /// A link with the given one-way latency and bandwidth.
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Self {
        Link { latency, bandwidth_bps, jitter: 0.0, loss: 0.0, busy_until: SimTime::ZERO }
    }

    /// Builder-style jitter setter.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder-style loss setter.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    fn serialization_delay(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps.is_infinite() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
        }
    }

    /// Compute the arrival time of a `bytes`-sized message sent at `now`,
    /// updating the link backlog. Returns `None` if the message is lost.
    pub fn transmit(&mut self, now: SimTime, bytes: usize, rng: &mut SimRng) -> Option<SimTime> {
        if self.loss > 0.0 && rng.chance(self.loss) {
            return None;
        }
        // FIFO serialization: transmission starts when the link is free.
        let start = if self.busy_until > now { self.busy_until } else { now };
        let tx_done = start + self.serialization_delay(bytes);
        self.busy_until = tx_done;
        let latency = if self.jitter > 0.0 {
            let k = rng.uniform(1.0 - self.jitter, 1.0 + self.jitter);
            self.latency.mul_f64(k)
        } else {
            self.latency
        };
        Some(tx_done + latency)
    }

    /// Arrival time ignoring loss/backlog mutation — for analytic checks.
    pub fn ideal_arrival(&self, now: SimTime, bytes: usize) -> SimTime {
        now + self.serialization_delay(bytes) + self.latency
    }
}

/// A registry of links between named hosts.
#[derive(Debug, Default)]
pub struct Network {
    links: Vec<Link>,
    routes: HashMap<(String, String), LinkId>,
}

impl Network {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a unidirectional link from `src` to `dst`.
    pub fn connect(&mut self, src: &str, dst: &str, link: Link) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(link);
        self.routes.insert((src.to_string(), dst.to_string()), id);
        id
    }

    /// Register symmetric links both ways; returns (src→dst, dst→src).
    pub fn connect_symmetric(&mut self, a: &str, b: &str, link: Link) -> (LinkId, LinkId) {
        let ab = self.connect(a, b, link.clone());
        let ba = self.connect(b, a, link);
        (ab, ba)
    }

    /// Look up the link from `src` to `dst`.
    pub fn route(&self, src: &str, dst: &str) -> Option<LinkId> {
        self.routes.get(&(src.to_string(), dst.to_string())).copied()
    }

    /// Transmit over a known link.
    pub fn transmit(
        &mut self,
        link: LinkId,
        now: SimTime,
        bytes: usize,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        self.links[link.0].transmit(now, bytes, rng)
    }

    /// Direct access to a link (tests, partition injection).
    pub fn link_mut(&mut self, link: LinkId) -> &mut Link {
        &mut self.links[link.0]
    }

    /// Sever a route by setting loss to 1.0 (network partition injection,
    /// §VII-B limitations discussion).
    pub fn partition(&mut self, link: LinkId) {
        self.links[link.0].loss = 1.0;
    }

    /// Heal a previously partitioned link.
    pub fn heal(&mut self, link: LinkId) {
        self.links[link.0].loss = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seeded(99)
    }

    #[test]
    fn latency_plus_serialization() {
        let mut l = Link::new(SimDuration::from_millis(23), 1e6); // 1 MB/s
        let mut r = rng();
        let arrival = l.transmit(SimTime::ZERO, 500_000, &mut r).unwrap();
        // 0.5s serialization + 23ms latency
        assert_eq!(arrival.as_millis_f64().round() as u64, 523);
    }

    #[test]
    fn infinite_bandwidth_is_pure_latency() {
        let mut l = Link::new(SimDuration::from_millis(1), f64::INFINITY);
        let mut r = rng();
        let arrival = l.transmit(SimTime::ZERO, usize::MAX / 2, &mut r).unwrap();
        assert_eq!(arrival, SimTime::ZERO + SimDuration::from_millis(1));
    }

    #[test]
    fn fifo_backlog_serializes_messages() {
        let mut l = Link::new(SimDuration::ZERO, 1000.0); // 1 KB/s
        let mut r = rng();
        let a1 = l.transmit(SimTime::ZERO, 1000, &mut r).unwrap(); // 1s
        let a2 = l.transmit(SimTime::ZERO, 1000, &mut r).unwrap(); // queued behind
        assert_eq!(a1.as_secs_f64(), 1.0);
        assert_eq!(a2.as_secs_f64(), 2.0);
        // and per-link FIFO: arrivals are non-decreasing
        assert!(a2 >= a1);
    }

    #[test]
    fn jitter_stays_within_band() {
        let mut l = Link::new(SimDuration::from_millis(100), f64::INFINITY).with_jitter(0.001);
        let mut r = rng();
        for _ in 0..1000 {
            let a = l.transmit(SimTime::ZERO, 10, &mut r).unwrap();
            let ms = a.as_millis_f64();
            assert!((99.9..=100.1).contains(&ms), "latency {ms}ms outside jitter band");
        }
    }

    #[test]
    fn loss_drops_messages() {
        let mut l = Link::new(SimDuration::ZERO, f64::INFINITY).with_loss(1.0);
        let mut r = rng();
        assert!(l.transmit(SimTime::ZERO, 10, &mut r).is_none());
    }

    #[test]
    fn network_routing_and_partition() {
        let mut net = Network::new();
        let (ab, _) = net.connect_symmetric(
            "tacc",
            "us-east-1",
            Link::new(SimDuration::from_millis(23), f64::INFINITY),
        );
        assert_eq!(net.route("tacc", "us-east-1"), Some(ab));
        assert!(net.route("us-east-1", "tacc").is_some());
        assert!(net.route("tacc", "nowhere").is_none());

        let mut r = rng();
        assert!(net.transmit(ab, SimTime::ZERO, 64, &mut r).is_some());
        net.partition(ab);
        assert!(net.transmit(ab, SimTime::ZERO, 64, &mut r).is_none());
        net.heal(ab);
        assert!(net.transmit(ab, SimTime::ZERO, 64, &mut r).is_some());
    }
}
