//! Live-path observability: one pipeline run (SDK producer → broker
//! append/replication → SDK consumer → trigger runtime → DLQ) must
//! populate every stage histogram of the cluster's shared registry,
//! and the text exposition must render them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use octopus::broker::{AckLevel, Cluster, TopicConfig};
use octopus::sdk::{Consumer, ConsumerConfig, Producer, ProducerConfig};
use octopus::trigger::{AutoscalerConfig, FunctionConfig, TriggerRuntime, TriggerSpec};
use octopus::types::{Event, Stage, TraceContext, Uid, TRACE_HEADER};

#[test]
fn every_stage_lands_in_one_registry() {
    let cluster = Cluster::new(3);
    cluster
        .create_topic(
            "events",
            TopicConfig::default().with_partitions(2).with_replication(3).with_min_insync(2),
        )
        .unwrap();
    cluster.create_topic("events.dlq", TopicConfig::default().with_partitions(1)).unwrap();

    // a trigger that always fails, so the DLQ stage fires too
    let runtime = TriggerRuntime::new(cluster.clone());
    let attempts = Arc::new(AtomicUsize::new(0));
    let attempts2 = attempts.clone();
    runtime
        .deploy(TriggerSpec {
            name: "poison".into(),
            topic: "events".into(),
            pattern: None,
            config: FunctionConfig {
                retries: 1,
                dlq_topic: Some("events.dlq".into()),
                ..FunctionConfig::default()
            },
            function: Arc::new(move |_ctx, _batch| {
                attempts2.fetch_add(1, Ordering::SeqCst);
                Err("always fails".into())
            }),
            acting_as: Uid(1),
            autoscaler: AutoscalerConfig::default(),
        })
        .unwrap();

    let producer = Producer::new(
        cluster.clone(),
        ProducerConfig { acks: AckLevel::All, linger: Duration::ZERO, ..ProducerConfig::default() },
    );
    for i in 0..20u32 {
        producer.send_sync("events", Event::from_bytes(i.to_le_bytes().to_vec())).unwrap();
    }
    producer.close();

    let mut consumer = Consumer::new(
        cluster.clone(),
        ConsumerConfig { group: "observer".into(), ..ConsumerConfig::default() },
    );
    consumer.subscribe(&["events"]).unwrap();
    let mut delivered = Vec::new();
    while delivered.len() < 20 {
        delivered.extend(consumer.poll().unwrap());
    }
    consumer.close();

    // trace headers survived the broker round-trip
    assert!(
        delivered.iter().all(|d| TraceContext::from_headers(&d.event.headers).is_some()),
        "every delivered event carries a {TRACE_HEADER} header"
    );

    runtime.poll_once("poison").unwrap();
    assert!(attempts.load(Ordering::SeqCst) > 0);

    let snap = cluster.metrics().snapshot();
    for stage in
        [Stage::ProduceAck, Stage::Append, Stage::Replicate, Stage::Fetch, Stage::Deliver, Stage::TriggerRun, Stage::Dlq]
    {
        let h = snap
            .histograms
            .get(stage.metric_name())
            .unwrap_or_else(|| panic!("{} missing from snapshot", stage.metric_name()));
        assert!(h.count() > 0, "{} recorded no samples", stage.metric_name());
    }

    // broker flow counters moved with the traffic
    assert!(snap.counters["octopus_broker_events_in_total"] >= 20);
    assert!(snap.counters["octopus_broker_events_out_total"] >= 20);

    // the text exposition renders every stage with its quantiles
    let text = snap.render_text();
    assert!(text.contains("octopus_stage_produce_ack_ns{stat=\"p99\"}"));
    assert!(text.contains("octopus_stage_dlq_ns{stat=\"count\"}"));
}
