//! Length-prefixed, CRC-framed binary framing.
//!
//! Every message on an Octopus connection — in either direction — is a
//! single frame:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  --------------------------------------------------
//!       0     2  magic            bytes "OC" (0x4F 0x43 on the wire)
//!       2     1  version          protocol version (currently 1)
//!       3     1  flags            bit 0: payload is an error response
//!       4     2  api_key          which API the payload encodes
//!       6     8  correlation_id   echoed verbatim in the response
//!      14     4  payload_len      bytes of payload that follow
//!      18     4  payload_crc      CRC32C of the payload bytes
//!      22     n  payload          api-key-specific binary body
//! ```
//!
//! The 22-byte header is fixed for all versions: a frame from any
//! future version can always be skipped or rejected without guessing.
//! `payload_len` is validated against a configurable cap *before* any
//! allocation, so a hostile peer cannot OOM the server with a 4 GiB
//! declaration; `payload_crc` is verified before the payload reaches
//! the codec. All decode paths return [`WireError`] — never panic.

use std::io::{Read, Write};

use octopus_broker::crc32c;

use crate::error::WireError;

/// Frame magic: encodes to the bytes "OC" under little-endian.
pub const MAGIC: u16 = 0x434F;
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes, identical across all protocol versions.
pub const HEADER_LEN: usize = 22;
/// Default payload cap: 16 MiB, comfortably above the largest batch the
/// SDK producer will ever emit, far below anything that could hurt.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Flag bit: the payload is an error response (`WireFault`).
pub const FLAG_ERROR: u8 = 0b0000_0001;

/// Flag bit: the payload begins with a [`WireTrace`] extension prefix
/// ([`TRACE_EXT_LEN`] bytes) carrying the request's trace context.
///
/// This is how trace identity crosses the process boundary at the
/// protocol layer without a version bump: the frame header stays the
/// fixed 22 bytes, version stays 1, and a peer built before the
/// extension (flag never set) produces frames the new codec decodes
/// unchanged — [`Frame::body`] of an untraced frame is the whole
/// payload. The CRC covers prefix + body together, so the extension
/// inherits the frame's corruption detection.
pub const FLAG_TRACE: u8 = 0b0000_0010;

/// Encoded size of the [`WireTrace`] payload prefix: trace id (8) +
/// parent span id (8) + trace flags (1).
pub const TRACE_EXT_LEN: usize = 17;

/// Bit 0 of the trace-extension flags byte: the sender sampled this
/// trace (the receiver should record spans for it too).
const TRACE_FLAG_SAMPLED: u8 = 0b0000_0001;

/// The frame-level trace context: stamped by a client under
/// [`FLAG_TRACE`] so the serving broker joins the same distributed
/// trace (same trace id, causally parented spans) without guessing
/// from payload contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTrace {
    /// The trace this request belongs to.
    pub trace_id: u64,
    /// Span id of the sender-side span this request descends from
    /// (e.g. the client's `produce→ack` root span), 0 for none.
    pub parent_span_id: u64,
    /// Whether the sender sampled the trace.
    pub sampled: bool,
}

impl WireTrace {
    /// Serialize as the fixed-size payload prefix.
    pub fn encode(&self) -> [u8; TRACE_EXT_LEN] {
        let mut out = [0u8; TRACE_EXT_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.parent_span_id.to_le_bytes());
        out[16] = if self.sampled { TRACE_FLAG_SAMPLED } else { 0 };
        out
    }

    /// Parse the fixed-size prefix; unknown trace-flag bits are
    /// ignored so the flags byte can grow without breaking old peers.
    pub fn decode(buf: &[u8]) -> Result<WireTrace, WireError> {
        if buf.len() < TRACE_EXT_LEN {
            return Err(WireError::Truncated { needed: TRACE_EXT_LEN, have: buf.len() });
        }
        let trace_id = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let parent_span_id = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        Ok(WireTrace { trace_id, parent_span_id, sampled: buf[16] & TRACE_FLAG_SAMPLED != 0 })
    }
}

/// A decoded frame: header metadata plus the raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub api_key: u16,
    pub flags: u8,
    pub correlation_id: u64,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn new(api_key: u16, correlation_id: u64, payload: Vec<u8>) -> Self {
        Frame { api_key, flags: 0, correlation_id, payload }
    }

    pub fn error(api_key: u16, correlation_id: u64, payload: Vec<u8>) -> Self {
        Frame { api_key, flags: FLAG_ERROR, correlation_id, payload }
    }

    pub fn is_error(&self) -> bool {
        self.flags & FLAG_ERROR != 0
    }

    /// A request frame carrying the trace extension: `trace` is
    /// prepended to `payload` and [`FLAG_TRACE`] is set.
    pub fn traced(api_key: u16, correlation_id: u64, trace: WireTrace, payload: Vec<u8>) -> Self {
        let mut full = Vec::with_capacity(TRACE_EXT_LEN + payload.len());
        full.extend_from_slice(&trace.encode());
        full.extend_from_slice(&payload);
        Frame { api_key, flags: FLAG_TRACE, correlation_id, payload: full }
    }

    /// The trace extension, when [`FLAG_TRACE`] is set. A flagged
    /// frame too short for the prefix is a typed error, not a panic.
    pub fn trace(&self) -> Result<Option<WireTrace>, WireError> {
        if self.flags & FLAG_TRACE == 0 {
            return Ok(None);
        }
        WireTrace::decode(&self.payload).map(Some)
    }

    /// The api-key payload body: everything after the trace prefix
    /// when [`FLAG_TRACE`] is set, the whole payload otherwise — so a
    /// v1 (pre-extension) frame reads back byte-identical.
    pub fn body(&self) -> Result<&[u8], WireError> {
        if self.flags & FLAG_TRACE == 0 {
            return Ok(&self.payload);
        }
        if self.payload.len() < TRACE_EXT_LEN {
            return Err(WireError::Truncated { needed: TRACE_EXT_LEN, have: self.payload.len() });
        }
        Ok(&self.payload[TRACE_EXT_LEN..])
    }

    /// Serialize this frame to bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.push(self.flags);
        out.extend_from_slice(&self.api_key.to_le_bytes());
        out.extend_from_slice(&self.correlation_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32c(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// The parsed fixed header, before the payload has been read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub version: u8,
    pub flags: u8,
    pub api_key: u16,
    pub correlation_id: u64,
    pub payload_len: u32,
    pub payload_crc: u32,
}

/// Parse and validate the fixed 22-byte header.
///
/// Rejects bad magic, unsupported versions, and payload lengths above
/// `max_payload` — all before a single payload byte is read, so the
/// oversized-declaration attack costs the server nothing.
pub fn decode_header(buf: &[u8], max_payload: u32) -> Result<FrameHeader, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated { needed: HEADER_LEN, have: buf.len() });
    }
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = buf[2];
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let flags = buf[3];
    let api_key = u16::from_le_bytes([buf[4], buf[5]]);
    let correlation_id = u64::from_le_bytes([
        buf[6], buf[7], buf[8], buf[9], buf[10], buf[11], buf[12], buf[13],
    ]);
    let payload_len = u32::from_le_bytes([buf[14], buf[15], buf[16], buf[17]]);
    if payload_len > max_payload {
        return Err(WireError::FrameTooLarge { declared: payload_len, cap: max_payload });
    }
    let payload_crc = u32::from_le_bytes([buf[18], buf[19], buf[20], buf[21]]);
    Ok(FrameHeader { version, flags, api_key, correlation_id, payload_len, payload_crc })
}

/// Decode one frame from a byte buffer.
///
/// Returns the frame and the number of bytes consumed, so callers can
/// iterate over a pipelined stream. This is the pure function the fuzz
/// proptests hammer: for *any* input it returns `Ok` or a typed error.
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<(Frame, usize), WireError> {
    let header = decode_header(buf, max_payload)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated { needed: total, have: buf.len() });
    }
    let payload = &buf[HEADER_LEN..total];
    let actual = crc32c(payload);
    if actual != header.payload_crc {
        return Err(WireError::CrcMismatch { expected: header.payload_crc, actual });
    }
    Ok((
        Frame {
            api_key: header.api_key,
            flags: header.flags,
            correlation_id: header.correlation_id,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Read exactly one frame from a blocking reader.
///
/// Payload allocation happens only after the declared length passed the
/// cap check, and the CRC is verified before the frame is returned.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Frame, WireError> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head)?;
    let header = decode_header(&head, max_payload)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    r.read_exact(&mut payload)?;
    let actual = crc32c(&payload);
    if actual != header.payload_crc {
        return Err(WireError::CrcMismatch { expected: header.payload_crc, actual });
    }
    Ok(Frame {
        api_key: header.api_key,
        flags: header.flags,
        correlation_id: header.correlation_id,
        payload,
    })
}

/// Write one frame to a blocking writer and flush it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode())?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = Frame::new(7, 42, b"hello octopus".to_vec());
        let bytes = f.encode();
        let (back, used) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = Frame::new(0, 0, vec![]);
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        let (back, _) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Frame::new(1, 1, vec![1, 2, 3]).encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Frame::new(1, 1, vec![]).encode();
        bytes[2] = VERSION + 1;
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn oversized_declaration_rejected_before_allocation() {
        let mut bytes = Frame::new(1, 1, vec![]).encode();
        // declare a 3 GiB payload; the decoder must reject on the cap,
        // not attempt the allocation and find the buffer short
        bytes[14..18].copy_from_slice(&(3u32 << 30).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut bytes = Frame::new(1, 1, b"payload".to_vec()).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(WireError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn traced_frame_roundtrips_trace_and_body() {
        let trace = WireTrace { trace_id: 99, parent_span_id: 1585, sampled: true };
        let f = Frame::traced(1, 7, trace, b"batch bytes".to_vec());
        let bytes = f.encode();
        let (back, _) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back.trace().unwrap(), Some(trace));
        assert_eq!(back.body().unwrap(), b"batch bytes");
        assert!(!back.is_error());
    }

    #[test]
    fn untraced_frame_body_is_whole_payload() {
        let f = Frame::new(2, 3, b"plain".to_vec());
        assert_eq!(f.trace().unwrap(), None);
        assert_eq!(f.body().unwrap(), b"plain");
    }

    #[test]
    fn unsampled_trace_bit_roundtrips() {
        let trace = WireTrace { trace_id: 5, parent_span_id: 0, sampled: false };
        let f = Frame::traced(1, 1, trace, vec![]);
        assert_eq!(f.trace().unwrap(), Some(trace));
        assert!(f.body().unwrap().is_empty());
    }

    #[test]
    fn flagged_frame_too_short_for_trace_is_typed_error() {
        // a hostile peer sets FLAG_TRACE but ships fewer bytes than
        // the prefix: both accessors must fail typed, never slice-panic
        let f = Frame { api_key: 1, flags: FLAG_TRACE, correlation_id: 0, payload: vec![0u8; 5] };
        assert!(matches!(f.trace(), Err(WireError::Truncated { .. })));
        assert!(matches!(f.body(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn truncated_frame_reports_need() {
        let bytes = Frame::new(1, 1, b"0123456789".to_vec()).encode();
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }
}
