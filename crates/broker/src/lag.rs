//! Consumer-lag tracking: log-end offsets vs committed offsets.
//!
//! The paper's operators watch per-application consumer lag to decide
//! when trigger concurrency must scale (§V); this module derives that
//! signal inside the broker, where both halves of the subtraction are
//! authoritative: the partition log-end offset (advanced on every
//! append) and each group's committed offset (advanced on every
//! commit). Lag is published two ways — as per-group × per-partition
//! gauges (`octopus_consumer_lag{...}`) plus a max-lag rollup per group
//! (`octopus_consumer_group_max_lag{...}`), and as a queryable
//! [`LagReport`] served by OWS `GET /lag/{group}`.
//!
//! Committed offsets live in the group coordinator and *survive
//! rebalances* (a generation bump must not reset lag to the log end);
//! the tracker therefore only ever widens or narrows the window, never
//! forgets a commit.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_types::obs::labeled;
use octopus_types::{MetricsRegistry, Offset, PartitionId, TopicName};

/// Lag of one group on one partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionLag {
    /// Topic name.
    pub topic: TopicName,
    /// Partition index.
    pub partition: PartitionId,
    /// Log-end offset (next offset to be written).
    pub end: Offset,
    /// Group's committed offset (next offset to be consumed).
    pub committed: Offset,
    /// `end − committed`, saturating.
    pub lag: u64,
}

/// Point-in-time lag summary for one consumer group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LagReport {
    /// Group id.
    pub group: String,
    /// Sum of per-partition lags.
    pub total: u64,
    /// Largest single-partition lag.
    pub max: u64,
    /// Per-partition detail, sorted by (topic, partition).
    pub partitions: Vec<PartitionLag>,
}

#[derive(Debug, Default)]
struct LagState {
    /// Log-end offset per partition (from the append path).
    ends: HashMap<(TopicName, PartitionId), Offset>,
    /// Committed offset per group per partition (from the commit path).
    committed: HashMap<String, HashMap<(TopicName, PartitionId), Offset>>,
}

/// Derives and publishes consumer lag. One instance per cluster,
/// shared between the partition append path and the group coordinator.
#[derive(Debug)]
pub struct LagTracker {
    state: Mutex<LagState>,
    registry: Arc<MetricsRegistry>,
}

impl LagTracker {
    /// Tracker publishing into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        LagTracker { state: Mutex::new(LagState::default()), registry }
    }

    /// Note a new log-end offset for a partition (call after every
    /// append). Refreshes the lag gauges of every group consuming it.
    pub fn on_append(&self, topic: &str, partition: PartitionId, end: Offset) {
        let mut st = self.state.lock();
        let key = (topic.to_string(), partition);
        let slot = st.ends.entry(key.clone()).or_insert(0);
        // log ends only move forward; a stale reader must not regress
        // the gauge
        if end <= *slot && *slot != 0 {
            return;
        }
        *slot = (*slot).max(end);
        let groups: Vec<String> = st
            .committed
            .iter()
            .filter(|(_, parts)| parts.contains_key(&key))
            .map(|(g, _)| g.clone())
            .collect();
        for group in groups {
            self.publish(&st, &group, &key);
        }
        drop(st);
    }

    /// Note a committed offset for a group (call on every commit).
    /// `end_hint` lets callers who already know the log end seed it, so
    /// lag is correct even for partitions that have seen no append
    /// since the tracker was created.
    pub fn on_commit(
        &self,
        group: &str,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        end_hint: Option<Offset>,
    ) {
        let mut st = self.state.lock();
        let key = (topic.to_string(), partition);
        if let Some(end) = end_hint {
            let slot = st.ends.entry(key.clone()).or_insert(0);
            *slot = (*slot).max(end);
        }
        let slot = st
            .committed
            .entry(group.to_string())
            .or_default()
            .entry(key.clone())
            .or_insert(0);
        // commits are monotonic (matching the coordinator's rule)
        *slot = (*slot).max(offset);
        self.publish(&st, group, &key);
    }

    /// Drop all state for a topic (topic deletion); zeroes the affected
    /// gauges so the exposition does not report lag against a log that
    /// no longer exists.
    pub fn forget_topic(&self, topic: &str) {
        let mut st = self.state.lock();
        st.ends.retain(|(t, _), _| t != topic);
        let mut touched: Vec<(String, (TopicName, PartitionId))> = Vec::new();
        for (group, parts) in st.committed.iter_mut() {
            parts.retain(|(t, p), _| {
                if t == topic {
                    touched.push((group.clone(), (t.clone(), *p)));
                    false
                } else {
                    true
                }
            });
        }
        for (group, key) in &touched {
            self.gauge(group, key).set(0);
        }
        let groups: Vec<String> =
            touched.into_iter().map(|(g, _)| g).collect();
        for group in groups {
            self.rollup(&st, &group);
        }
    }

    /// Current lag report for `group`, or `None` if the group has never
    /// committed.
    pub fn report(&self, group: &str) -> Option<LagReport> {
        let st = self.state.lock();
        let parts = st.committed.get(group)?;
        let mut partitions: Vec<PartitionLag> = parts
            .iter()
            .map(|(key, &committed)| {
                let end = st.ends.get(key).copied().unwrap_or(committed);
                PartitionLag {
                    topic: key.0.clone(),
                    partition: key.1,
                    end,
                    committed,
                    lag: end.saturating_sub(committed),
                }
            })
            .collect();
        partitions.sort_by(|a, b| (&a.topic, a.partition).cmp(&(&b.topic, b.partition)));
        Some(LagReport {
            group: group.to_string(),
            total: partitions.iter().map(|p| p.lag).sum(),
            max: partitions.iter().map(|p| p.lag).max().unwrap_or(0),
            partitions,
        })
    }

    /// Groups the tracker knows about (those that have committed).
    pub fn groups(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut gs: Vec<String> = st.committed.keys().cloned().collect();
        gs.sort();
        gs
    }

    fn gauge(&self, group: &str, key: &(TopicName, PartitionId)) -> Arc<octopus_types::obs::Gauge> {
        self.registry.gauge(&labeled(
            "octopus_consumer_lag",
            &[
                ("group", group),
                ("topic", &key.0),
                ("partition", &key.1.to_string()),
            ],
        ))
    }

    /// Refresh the per-partition gauge and the group rollup for one
    /// (group, partition) pair. Caller holds the state lock.
    fn publish(&self, st: &LagState, group: &str, key: &(TopicName, PartitionId)) {
        let end = st.ends.get(key).copied().unwrap_or(0);
        let committed = st
            .committed
            .get(group)
            .and_then(|parts| parts.get(key))
            .copied()
            .unwrap_or(0);
        self.gauge(group, key).set(end.saturating_sub(committed) as i64);
        self.rollup(st, group);
    }

    /// Recompute the max-lag rollup gauge for `group`. Caller holds the
    /// state lock.
    fn rollup(&self, st: &LagState, group: &str) {
        let max = st
            .committed
            .get(group)
            .map(|parts| {
                parts
                    .iter()
                    .map(|(key, &committed)| {
                        let end = st.ends.get(key).copied().unwrap_or(committed);
                        end.saturating_sub(committed)
                    })
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        self.registry
            .gauge(&labeled("octopus_consumer_group_max_lag", &[("group", group)]))
            .set(max as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> (LagTracker, Arc<MetricsRegistry>) {
        let reg = Arc::new(MetricsRegistry::new());
        (LagTracker::new(Arc::clone(&reg)), reg)
    }

    fn lag_gauge(reg: &MetricsRegistry, group: &str, topic: &str, p: u32) -> i64 {
        reg.gauge(&labeled(
            "octopus_consumer_lag",
            &[("group", group), ("topic", topic), ("partition", &p.to_string())],
        ))
        .get()
    }

    fn max_gauge(reg: &MetricsRegistry, group: &str) -> i64 {
        reg.gauge(&labeled("octopus_consumer_group_max_lag", &[("group", group)])).get()
    }

    #[test]
    fn lag_rises_on_append_and_converges_on_commit() {
        let (t, reg) = tracker();
        t.on_commit("g", "orders", 0, 0, None);
        t.on_append("orders", 0, 10);
        assert_eq!(lag_gauge(&reg, "g", "orders", 0), 10);
        assert_eq!(max_gauge(&reg, "g"), 10);
        t.on_commit("g", "orders", 0, 10, None);
        assert_eq!(lag_gauge(&reg, "g", "orders", 0), 0);
        assert_eq!(max_gauge(&reg, "g"), 0);
        let r = t.report("g").unwrap();
        assert_eq!(r.total, 0);
        assert_eq!(r.partitions[0].end, 10);
        assert_eq!(r.partitions[0].committed, 10);
    }

    #[test]
    fn commits_are_monotonic_and_ends_never_regress() {
        let (t, reg) = tracker();
        t.on_append("t", 0, 100);
        t.on_commit("g", "t", 0, 40, None);
        // a stale commit must not widen the gauge again
        t.on_commit("g", "t", 0, 20, None);
        assert_eq!(lag_gauge(&reg, "g", "t", 0), 60);
        // a stale end must not narrow it
        t.on_append("t", 0, 50);
        assert_eq!(lag_gauge(&reg, "g", "t", 0), 60);
    }

    #[test]
    fn max_rollup_takes_worst_partition() {
        let (t, reg) = tracker();
        t.on_commit("g", "t", 0, 5, Some(10)); // lag 5
        t.on_commit("g", "t", 1, 0, Some(50)); // lag 50
        assert_eq!(max_gauge(&reg, "g"), 50);
        let r = t.report("g").unwrap();
        assert_eq!(r.total, 55);
        assert_eq!(r.max, 50);
        assert_eq!(r.partitions.len(), 2);
    }

    #[test]
    fn unknown_group_has_no_report() {
        let (t, _reg) = tracker();
        t.on_append("t", 0, 10);
        assert!(t.report("nobody").is_none());
        assert!(t.groups().is_empty());
    }

    #[test]
    fn forget_topic_zeroes_gauges() {
        let (t, reg) = tracker();
        t.on_commit("g", "t", 0, 0, Some(25));
        assert_eq!(lag_gauge(&reg, "g", "t", 0), 25);
        t.forget_topic("t");
        assert_eq!(lag_gauge(&reg, "g", "t", 0), 0);
        assert_eq!(max_gauge(&reg, "g"), 0);
        assert!(t.report("g").map(|r| r.partitions.is_empty()).unwrap_or(true));
    }
}
