//! The networked [`Transport`]: a correlation-id-multiplexed TCP client.
//!
//! One [`TcpTransport`] owns at most one connection to a
//! [`crate::WireServer`]. Requests from any number of SDK threads are
//! written under a send lock, each stamped with a fresh correlation
//! id; a dedicated reader thread routes response frames back to the
//! waiting caller through a per-request channel, so requests pipeline
//! on the socket instead of queueing behind each other's round trips.
//!
//! Failure model: a dead socket fails every in-flight request with a
//! *retriable* `Unavailable`, and the next call re-dials and
//! re-authenticates transparently. Combined with the SDK producer's
//! retry layer and idempotent stamps, a severed connection costs acked
//! records nothing — the delivery-guarantee drill in the integration
//! tests runs exactly this path. Authentication failures surface as
//! non-retriable `Unauthenticated` so a revoked credential fails fast
//! instead of hot-looping the handshake.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use octopus_auth::scram::{auth_message, client_proof, verify_server_signature};
use octopus_auth::Permission;
use octopus_broker::{
    key_partition, AckLevel, HealthReport, LagReport, MemberAssignment, ProduceReceipt,
    ProducerIdentity, ReassignStatus, Record, RecordBatch, TopicConfig, TxnOffset,
};
use octopus_types::obs::Counter;
use octopus_types::{
    span_id_for, Event, MetricsRegistry, OctoError, OctoResult, Offset, PartitionId,
    RegistrySnapshot, Span, SpanSink, Stage, StageMetrics, Timestamp, TopicName, TraceContext,
    Uid,
};

use crate::codec::{HandshakeRequest, HandshakeResponse, OffsetSpec, Request, Response};
use crate::error::WireFault;
use crate::frame::{read_frame, Frame, WireTrace, DEFAULT_MAX_PAYLOAD};
use crate::transport::Transport;

/// How many `NotLeader` bounces one produce call follows before
/// surfacing the (retriable) error to the caller's retry layer.
const PRODUCE_ROUTE_ATTEMPTS: usize = 4;

/// Client credentials presented in the wire handshake.
#[derive(Debug, Clone)]
pub enum Credentials {
    /// No credentials (server must allow anonymous connections).
    Anonymous,
    /// Bearer token introspected by the server's auth service.
    Token(String),
    /// SCRAM username/password; the password never crosses the wire.
    Scram { username: String, password: String },
}

/// Tuning knobs for a [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpTransportConfig {
    /// Diagnostic label sent in the handshake.
    pub client_id: String,
    pub credentials: Credentials,
    /// Per-request deadline; expiry surfaces as retriable `Timeout`.
    pub request_timeout: Duration,
    /// How long cached partition counts stay fresh.
    pub metadata_ttl: Duration,
    /// Maximum accepted response payload.
    pub max_payload: u32,
    /// Client-side trace sampling: every Nth trace id gets a span and
    /// a wire-level trace stamp. `0` disables tracing entirely.
    pub trace_sample_every: u64,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        TcpTransportConfig {
            client_id: "octopus-client".to_string(),
            credentials: Credentials::Anonymous,
            request_timeout: Duration::from_secs(10),
            metadata_ttl: Duration::from_secs(2),
            max_payload: DEFAULT_MAX_PAYLOAD,
            trace_sample_every: 0,
        }
    }
}

/// One live authenticated connection.
struct Connection {
    /// Write half; writes are serialized by the mutex, one whole frame
    /// per critical section so frames never interleave.
    writer: Mutex<TcpStream>,
    /// Requests awaiting their response frame, by correlation id.
    pending: Mutex<HashMap<u64, Sender<Result<Frame, OctoError>>>>,
    alive: AtomicBool,
    /// Principal the server authenticated us as.
    principal: Option<Uid>,
    /// Shared poisoned-connection counter; bumped once per connection.
    poisoned: Arc<Counter>,
}

impl Connection {
    /// Mark dead and fail every in-flight request retriably.
    fn poison(&self) {
        if self.alive.swap(false, Ordering::AcqRel) {
            self.poisoned.inc();
        }
        let mut pending = self.pending.lock();
        for (_, tx) in pending.drain() {
            let _ = tx.send(Err(OctoError::Unavailable("connection lost".into())));
        }
    }
}

/// Connection-resilience counters, registered in the transport's
/// [`MetricsRegistry`] so chaos drills can assert the client really
/// re-dialed / re-authenticated / poisoned a dead socket.
struct NetCounters {
    connects: Arc<Counter>,
    redials: Arc<Counter>,
    reauths: Arc<Counter>,
    auth_failures: Arc<Counter>,
    poisoned: Arc<Counter>,
    /// Produce calls bounced with `NotLeader` because the cached
    /// metadata pointed at a demoted broker; each bounce invalidates
    /// the cache and re-routes instead of waiting out the TTL.
    stale_metadata_retries: Arc<Counter>,
}

impl NetCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        NetCounters {
            connects: registry.counter("octopus_tcp_connects_total"),
            redials: registry.counter("octopus_tcp_redials_total"),
            reauths: registry.counter("octopus_tcp_reauths_total"),
            auth_failures: registry.counter("octopus_tcp_auth_failures_total"),
            poisoned: registry.counter("octopus_tcp_poisoned_connections_total"),
            stale_metadata_retries: registry.counter("octopus_tcp_stale_metadata_retries_total"),
        }
    }
}

struct TcpInner {
    addr: String,
    config: TcpTransportConfig,
    conn: Mutex<Option<Arc<Connection>>>,
    next_corr: AtomicU64,
    round_robin: AtomicU64,
    /// topic → (partition count, fetched at)
    meta: Mutex<HashMap<TopicName, (u32, Instant)>>,
    /// broker id → (address, lazily dialed transport): the routing
    /// table `NotLeader` bounces re-route through.
    peers: Mutex<HashMap<u32, (String, Option<TcpTransport>)>>,
    /// (topic, partition) → leader broker id learned from `NotLeader`
    /// hints; consulted before the primary address on produce.
    leader_hints: Mutex<HashMap<(TopicName, PartitionId), u32>>,
    metrics: Arc<MetricsRegistry>,
    stage_metrics: StageMetrics,
    spans: Arc<SpanSink>,
    net: NetCounters,
}

/// A [`Transport`] speaking the binary protocol over TCP.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl TcpTransport {
    /// Create a transport for `addr` (e.g. `"127.0.0.1:4150"`). The
    /// connection is dialed lazily on the first request.
    pub fn connect(addr: impl Into<String>, config: TcpTransportConfig) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let stage_metrics = StageMetrics::new(Arc::clone(&metrics));
        let net = NetCounters::new(&metrics);
        let spans = if config.trace_sample_every == 0 {
            SpanSink::disabled()
        } else {
            SpanSink::new(config.trace_sample_every)
        };
        TcpTransport {
            inner: Arc::new(TcpInner {
                addr: addr.into(),
                config,
                conn: Mutex::new(None),
                next_corr: AtomicU64::new(1),
                round_robin: AtomicU64::new(0),
                meta: Mutex::new(HashMap::new()),
                peers: Mutex::new(HashMap::new()),
                leader_hints: Mutex::new(HashMap::new()),
                metrics,
                stage_metrics,
                spans: Arc::new(spans),
                net,
            }),
        }
    }

    /// Dial and authenticate eagerly, surfacing handshake errors now
    /// rather than on the first data request.
    pub fn ensure_connected(&self) -> OctoResult<()> {
        self.connection().map(|_| ())
    }

    /// The principal the server authenticated this client as (dials if
    /// not yet connected).
    pub fn principal(&self) -> OctoResult<Option<Uid>> {
        Ok(self.connection()?.principal)
    }

    fn connection(&self) -> OctoResult<Arc<Connection>> {
        let mut slot = self.inner.conn.lock();
        if let Some(conn) = slot.as_ref() {
            if conn.alive.load(Ordering::Acquire) {
                return Ok(Arc::clone(conn));
            }
        }
        // a dead connection in the slot means this dial is a recovery
        // re-dial (and its handshake a re-authentication), not a first
        // connect — chaos drills assert on exactly this distinction
        let redial = slot.is_some();
        if redial {
            self.inner.net.redials.inc();
        }
        let conn = self.dial()?;
        if redial {
            self.inner.net.reauths.inc();
        }
        *slot = Some(Arc::clone(&conn));
        Ok(conn)
    }

    /// Dial, authenticate, and start the reader thread.
    fn dial(&self) -> OctoResult<Arc<Connection>> {
        let cfg = &self.inner.config;
        let stream = TcpStream::connect(&self.inner.addr)
            .map_err(|e| OctoError::Unavailable(format!("connect {}: {e}", self.inner.addr)))?;
        let _ = stream.set_nodelay(true);
        // the handshake is synchronous: bound it by the request timeout
        let _ = stream.set_read_timeout(Some(cfg.request_timeout));
        let principal = self.handshake(&stream).map_err(|e| {
            if matches!(e, OctoError::Unauthenticated(_)) {
                self.inner.net.auth_failures.inc();
            }
            e
        })?;
        self.inner.net.connects.inc();
        // the reader thread must block indefinitely; per-request
        // deadlines are enforced on the caller's channel instead
        let _ = stream.set_read_timeout(None);

        let reader_stream = stream
            .try_clone()
            .map_err(|e| OctoError::Unavailable(format!("clone stream: {e}")))?;
        let conn = Arc::new(Connection {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
            principal,
            poisoned: Arc::clone(&self.inner.net.poisoned),
        });
        let reader_conn = Arc::clone(&conn);
        let max_payload = cfg.max_payload;
        std::thread::spawn(move || {
            let mut stream = reader_stream;
            loop {
                match read_frame(&mut stream, max_payload) {
                    Ok(frame) => {
                        let waiter = reader_conn.pending.lock().remove(&frame.correlation_id);
                        if let Some(tx) = waiter {
                            let _ = tx.send(Ok(frame));
                        }
                        // a response nobody waits for anymore (timed
                        // out) is dropped — correlation ids are never
                        // reused on a connection, so no mismatch risk
                    }
                    Err(_) => {
                        reader_conn.poison();
                        return;
                    }
                }
            }
        });
        Ok(conn)
    }

    /// Run the authentication exchange on a fresh socket.
    fn handshake(&self, stream: &TcpStream) -> OctoResult<Option<Uid>> {
        let cfg = &self.inner.config;
        match &cfg.credentials {
            Credentials::Anonymous => {
                let resp = self.handshake_round(
                    stream,
                    HandshakeRequest::Anonymous { client_id: cfg.client_id.clone() },
                )?;
                match resp {
                    HandshakeResponse::Welcome { principal } => Ok(principal),
                    other => Err(OctoError::Unauthenticated(format!(
                        "unexpected handshake reply: {other:?}"
                    ))),
                }
            }
            Credentials::Token(token) => {
                let resp = self.handshake_round(
                    stream,
                    HandshakeRequest::Token {
                        client_id: cfg.client_id.clone(),
                        token: token.clone(),
                    },
                )?;
                match resp {
                    HandshakeResponse::Welcome { principal } => Ok(principal),
                    other => Err(OctoError::Unauthenticated(format!(
                        "unexpected handshake reply: {other:?}"
                    ))),
                }
            }
            Credentials::Scram { username, password } => {
                let client_nonce = Uid::fresh().to_string();
                let challenge = self.handshake_round(
                    stream,
                    HandshakeRequest::ScramFirst {
                        client_id: cfg.client_id.clone(),
                        username: username.clone(),
                        nonce: client_nonce.clone(),
                    },
                )?;
                let HandshakeResponse::ScramChallenge { nonce, salt, iterations } = challenge
                else {
                    return Err(OctoError::Unauthenticated(
                        "expected scram challenge".into(),
                    ));
                };
                if !nonce.starts_with(&client_nonce) {
                    // a replayed or spliced challenge would carry a
                    // foreign nonce; refuse before proving anything
                    return Err(OctoError::Unauthenticated("scram nonce mismatch".into()));
                }
                let msg = auth_message(username, &client_nonce, &nonce, &salt, iterations);
                let proof = client_proof(password, &salt, iterations, &msg);
                let welcome = self.handshake_round(
                    stream,
                    HandshakeRequest::ScramFinal {
                        username: username.clone(),
                        nonce: nonce.clone(),
                        proof,
                    },
                )?;
                let HandshakeResponse::ScramWelcome { principal, server_signature } = welcome
                else {
                    return Err(OctoError::Unauthenticated("expected scram welcome".into()));
                };
                if !verify_server_signature(password, &salt, iterations, &msg, &server_signature)
                {
                    return Err(OctoError::Unauthenticated(
                        "server failed mutual authentication".into(),
                    ));
                }
                Ok(principal)
            }
        }
    }

    /// One synchronous handshake round trip on the raw socket.
    fn handshake_round(
        &self,
        mut stream: &TcpStream,
        hs: HandshakeRequest,
    ) -> OctoResult<HandshakeResponse> {
        let corr = self.inner.next_corr.fetch_add(1, Ordering::Relaxed);
        let req = Request::Handshake(hs);
        let frame = Frame::new(req.api_key() as u16, corr, req.encode());
        stream.write_all(&frame.encode()).map_err(|e| OctoError::Unavailable(e.to_string()))?;
        let reply = read_frame(&mut stream, self.inner.config.max_payload)
            .map_err(|e| OctoError::Unavailable(format!("handshake read: {e}")))?;
        if reply.is_error() {
            let fault = WireFault::decode(&reply.payload)
                .map_err(|e| OctoError::Serde(e.to_string()))?;
            return Err(fault.into());
        }
        match Response::decode(crate::codec::ApiKey::Handshake, &reply.payload)
            .map_err(|e| OctoError::Serde(e.to_string()))?
        {
            Response::Handshake(h) => Ok(h),
            _ => Err(OctoError::Serde("non-handshake response".into())),
        }
    }

    /// Send one request and wait for its response.
    fn call(&self, req: Request) -> OctoResult<Response> {
        let conn = self.connection()?;
        let corr = self.inner.next_corr.fetch_add(1, Ordering::Relaxed);
        let api_key = req.api_key();
        let (tx, rx) = bounded(1);
        conn.pending.lock().insert(corr, tx);
        let frame = match request_trace(&self.inner.spans, &req) {
            Some(trace) => Frame::traced(api_key as u16, corr, trace, req.encode()),
            None => Frame::new(api_key as u16, corr, req.encode()),
        };
        {
            let mut writer = conn.writer.lock();
            if let Err(e) = writer.write_all(&frame.encode()) {
                drop(writer);
                conn.pending.lock().remove(&corr);
                conn.poison();
                return Err(OctoError::Unavailable(format!("send: {e}")));
            }
        }
        let reply = match rx.recv_timeout(self.inner.config.request_timeout) {
            Ok(r) => r?,
            Err(_) => {
                conn.pending.lock().remove(&corr);
                return Err(OctoError::Timeout(format!(
                    "no response within {:?}",
                    self.inner.config.request_timeout
                )));
            }
        };
        if reply.is_error() {
            let fault = WireFault::decode(&reply.payload)
                .map_err(|e| OctoError::Serde(e.to_string()))?;
            return Err(fault.into());
        }
        Response::decode(api_key, &reply.payload).map_err(|e| OctoError::Serde(e.to_string()))
    }

    /// Partition count with a TTL cache (metadata is one round trip).
    fn cached_partition_count(&self, topic: &str) -> OctoResult<u32> {
        {
            let meta = self.inner.meta.lock();
            if let Some((n, at)) = meta.get(topic) {
                if at.elapsed() < self.inner.config.metadata_ttl {
                    return Ok(*n);
                }
            }
        }
        let n = match self.call(Request::Metadata { topic: Some(topic.to_string()) })? {
            Response::Metadata { topics } => topics
                .first()
                .map(|t| t.partitions)
                .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?,
            _ => return Err(OctoError::Serde("bad metadata response".into())),
        };
        self.inner.meta.lock().insert(topic.to_string(), (n, Instant::now()));
        Ok(n)
    }

    fn unit(&self, req: Request) -> OctoResult<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(OctoError::Serde(format!("expected unit response, got {other:?}"))),
        }
    }

    /// Scrape the remote broker's metrics registry (and, when
    /// `include_spans`, its span snapshot) over the wire.
    pub fn describe_metrics(&self, include_spans: bool) -> OctoResult<RemoteMetrics> {
        match self.call(Request::DescribeMetrics { include_spans })? {
            Response::DescribeMetrics { broker_id, snapshot_json, spans_json } => {
                let snapshot: RegistrySnapshot = serde_json::from_slice(&snapshot_json)
                    .map_err(|e| OctoError::Serde(format!("registry snapshot: {e}")))?;
                let spans: Vec<Span> = serde_json::from_slice(&spans_json)
                    .map_err(|e| OctoError::Serde(format!("span snapshot: {e}")))?;
                Ok(RemoteMetrics { broker_id, snapshot, spans })
            }
            _ => Err(OctoError::Serde("bad describe-metrics response".into())),
        }
    }

    /// Register the wire address of another broker in the fleet.
    /// Produce requests bounced with `NotLeader` re-route to the
    /// hinted leader's address immediately instead of waiting out the
    /// metadata TTL. The peer connection is dialed lazily.
    pub fn add_peer(&self, broker_id: u32, addr: impl Into<String>) {
        self.inner.peers.lock().insert(broker_id, (addr.into(), None));
    }

    /// Drop every cached metadata entry for `topic` (partition counts
    /// and leader hints). Called when a server reply proves the cache
    /// stale, so the next request refetches instead of serving the TTL
    /// out.
    fn invalidate_metadata(&self, topic: &str) {
        self.inner.meta.lock().remove(topic);
        self.inner.leader_hints.lock().retain(|(t, _), _| t != topic);
    }

    /// The lazily-dialed transport for a registered peer broker.
    fn peer_transport(&self, broker_id: u32) -> Option<TcpTransport> {
        let mut peers = self.inner.peers.lock();
        let (addr, slot) = peers.get_mut(&broker_id)?;
        if slot.is_none() {
            *slot = Some(TcpTransport::connect(addr.clone(), self.inner.config.clone()));
        }
        slot.clone()
    }

    /// Ask the serving broker to move one partition replica from
    /// broker `from` to broker `to`, copying at most
    /// `throttle_bytes_per_sec` during catch-up (`u64::MAX` =
    /// unthrottled). Blocks until the move commits; returns the
    /// post-move assignment epoch.
    pub fn alter_partition_assignment(
        &self,
        topic: &str,
        partition: PartitionId,
        from: u32,
        to: u32,
        throttle_bytes_per_sec: u64,
    ) -> OctoResult<u64> {
        match self.call(Request::AlterPartitionAssignment {
            topic: topic.to_string(),
            partition,
            from,
            to,
            throttle_bytes_per_sec,
        })? {
            Response::AlterPartitionAssignment { epoch } => Ok(epoch),
            _ => Err(OctoError::Serde("bad alter-assignment response".into())),
        }
    }

    /// Snapshot the remote broker's active and recent reassignments.
    pub fn describe_reassignments(&self) -> OctoResult<Vec<ReassignStatus>> {
        match self.call(Request::DescribeReassignments)? {
            Response::DescribeReassignments { reassignments_json } => {
                serde_json::from_slice(&reassignments_json)
                    .map_err(|e| OctoError::Serde(format!("reassignments: {e}")))
            }
            _ => Err(OctoError::Serde("bad describe-reassignments response".into())),
        }
    }

    /// Scrape the remote broker's health rollup and consumer lag.
    pub fn describe_health(&self) -> OctoResult<RemoteHealth> {
        match self.call(Request::DescribeHealth)? {
            Response::DescribeHealth { report_json, lag_json } => {
                let report: HealthReport = serde_json::from_slice(&report_json)
                    .map_err(|e| OctoError::Serde(format!("health report: {e}")))?;
                let lag: Vec<LagReport> = serde_json::from_slice(&lag_json)
                    .map_err(|e| OctoError::Serde(format!("lag reports: {e}")))?;
                Ok(RemoteHealth { report, lag })
            }
            _ => Err(OctoError::Serde("bad describe-health response".into())),
        }
    }
}

/// One broker's `DescribeMetrics` scrape, decoded.
#[derive(Debug, Clone)]
pub struct RemoteMetrics {
    /// The serving broker's id (distinguishes brokers in a fleet merge).
    pub broker_id: u32,
    pub snapshot: RegistrySnapshot,
    pub spans: Vec<Span>,
}

/// One broker's `DescribeHealth` scrape, decoded.
#[derive(Debug, Clone)]
pub struct RemoteHealth {
    pub report: HealthReport,
    pub lag: Vec<LagReport>,
}

/// The wire-level trace for a request, if it should carry one:
/// produce-path requests are stamped with the first event's trace
/// context so the serving broker's Append/Replicate spans and this
/// client's ProduceAck span share one trace id across the process
/// boundary.
fn request_trace(spans: &SpanSink, req: &Request) -> Option<WireTrace> {
    let headers = match req {
        Request::Produce { batch, .. } => &batch.events.first()?.headers,
        Request::TxnProduce { events, .. } => &events.first()?.headers,
        _ => return None,
    };
    let ctx = TraceContext::from_headers(headers)?;
    Some(WireTrace {
        trace_id: ctx.trace_id,
        parent_span_id: span_id_for(ctx.trace_id, Stage::ProduceAck),
        sampled: spans.sampled(ctx.trace_id),
    })
}

impl Transport for TcpTransport {
    fn describe(&self) -> String {
        format!("tcp://{}", self.inner.addr)
    }

    fn topic_exists(&self, topic: &str) -> bool {
        self.cached_partition_count(topic).is_ok()
    }

    fn topics(&self) -> OctoResult<Vec<TopicName>> {
        match self.call(Request::Metadata { topic: None })? {
            Response::Metadata { topics } => Ok(topics.into_iter().map(|t| t.name).collect()),
            _ => Err(OctoError::Serde("bad metadata response".into())),
        }
    }

    fn topic_config(&self, topic: &str) -> OctoResult<TopicConfig> {
        match self.call(Request::Metadata { topic: Some(topic.to_string()) })? {
            Response::Metadata { topics } => {
                let meta = topics
                    .into_iter()
                    .next()
                    .ok_or_else(|| OctoError::UnknownTopic(topic.to_string()))?;
                serde_json::from_slice(&meta.config_json)
                    .map_err(|e| OctoError::Serde(e.to_string()))
            }
            _ => Err(OctoError::Serde("bad metadata response".into())),
        }
    }

    fn create_topic(&self, topic: &str, config: TopicConfig) -> OctoResult<()> {
        let config_json =
            serde_json::to_vec(&config).map_err(|e| OctoError::Serde(e.to_string()))?;
        self.unit(Request::CreateTopic { topic: topic.to_string(), config_json })
    }

    fn delete_topic(&self, topic: &str) -> OctoResult<()> {
        self.inner.meta.lock().remove(topic);
        self.unit(Request::DeleteTopic { topic: topic.to_string() })
    }

    fn partition_count(&self, topic: &str) -> OctoResult<u32> {
        self.cached_partition_count(topic)
    }

    fn partition_for(&self, topic: &str, key: Option<&[u8]>) -> OctoResult<PartitionId> {
        let n = self.cached_partition_count(topic)?;
        Ok(match key {
            // the same hash the broker's default partitioner uses, so
            // keyed events land where an in-process producer would put
            // them
            Some(k) => key_partition(k, n),
            None => {
                (self.inner.round_robin.fetch_add(1, Ordering::Relaxed) % n.max(1) as u64) as u32
            }
        })
    }

    fn authorize(&self, _topic: &str, _principal: Option<Uid>, _perm: Permission) -> OctoResult<()> {
        // the server enforces ACLs against the handshake principal; a
        // remote client's self-declared principal is not an input
        Ok(())
    }

    fn produce_batch(
        &self,
        topic: &str,
        partition: PartitionId,
        batch: RecordBatch,
        acks: AckLevel,
    ) -> OctoResult<ProduceReceipt> {
        // route straight to the last known leader if a NotLeader
        // bounce taught us one for this partition
        let mut via = self
            .inner
            .leader_hints
            .lock()
            .get(&(topic.to_string(), partition))
            .copied()
            .and_then(|id| self.peer_transport(id));
        let mut last_err: Option<OctoError> = None;
        for _ in 0..PRODUCE_ROUTE_ATTEMPTS {
            let req = Request::Produce {
                topic: topic.to_string(),
                partition,
                batch: batch.clone(),
                acks,
            };
            let res = match &via {
                Some(peer) => peer.call(req),
                None => self.call(req),
            };
            match res {
                Ok(Response::Produce(r)) => return Ok(r),
                Ok(_) => return Err(OctoError::Serde("bad produce response".into())),
                Err(OctoError::NotLeader { leader, .. }) => {
                    // the cache lied: drop it, remember the hinted
                    // leader, and retry there right away rather than
                    // serving stale metadata until the TTL expires
                    self.invalidate_metadata(topic);
                    self.inner.net.stale_metadata_retries.inc();
                    self.inner
                        .leader_hints
                        .lock()
                        .insert((topic.to_string(), partition), leader);
                    let err =
                        OctoError::NotLeader { topic: topic.to_string(), partition, leader };
                    match self.peer_transport(leader) {
                        Some(next) => via = Some(next),
                        // no route to the hinted leader: surface the
                        // retriable error to the SDK's retry layer
                        None => return Err(err),
                    }
                    last_err = Some(err);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| OctoError::Unavailable("produce rerouting exhausted".into())))
    }

    fn fetch(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
        _principal: Option<Uid>,
    ) -> OctoResult<Vec<Record>> {
        match self.call(Request::Fetch {
            topic: topic.to_string(),
            partition,
            offset,
            max_records: max_records.min(u32::MAX as usize) as u32,
        })? {
            Response::Fetch { records } => Ok(records),
            _ => Err(OctoError::Serde("bad fetch response".into())),
        }
    }

    fn fetch_committed(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
    ) -> OctoResult<(Vec<Record>, Offset)> {
        match self.call(Request::FetchCommitted {
            topic: topic.to_string(),
            partition,
            offset,
            max_records: max_records.min(u32::MAX as usize) as u32,
        })? {
            Response::FetchCommitted { records, next } => Ok((records, next)),
            _ => Err(OctoError::Serde("bad fetch response".into())),
        }
    }

    fn earliest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        match self.call(Request::ListOffsets {
            topic: topic.to_string(),
            partition,
            spec: OffsetSpec::Earliest,
        })? {
            Response::ListOffsets { offset } => Ok(offset),
            _ => Err(OctoError::Serde("bad offsets response".into())),
        }
    }

    fn latest_offset(&self, topic: &str, partition: PartitionId) -> OctoResult<Offset> {
        match self.call(Request::ListOffsets {
            topic: topic.to_string(),
            partition,
            spec: OffsetSpec::Latest,
        })? {
            Response::ListOffsets { offset } => Ok(offset),
            _ => Err(OctoError::Serde("bad offsets response".into())),
        }
    }

    fn offset_for_timestamp(
        &self,
        topic: &str,
        partition: PartitionId,
        ts: Timestamp,
    ) -> OctoResult<Offset> {
        match self.call(Request::ListOffsets {
            topic: topic.to_string(),
            partition,
            spec: OffsetSpec::Timestamp(ts.0),
        })? {
            Response::ListOffsets { offset } => Ok(offset),
            _ => Err(OctoError::Serde("bad offsets response".into())),
        }
    }

    fn group_join(
        &self,
        group: &str,
        member: &str,
        topics: Vec<TopicName>,
        counts: &HashMap<TopicName, u32>,
    ) -> OctoResult<MemberAssignment> {
        let counts: Vec<(String, u32)> =
            counts.iter().map(|(t, n)| (t.clone(), *n)).collect();
        match self.call(Request::GroupJoin {
            group: group.to_string(),
            member: member.to_string(),
            topics,
            counts,
        })? {
            Response::GroupJoin { assignment } => Ok(assignment),
            _ => Err(OctoError::Serde("bad join response".into())),
        }
    }

    fn group_assignment(
        &self,
        group: &str,
        member: &str,
    ) -> OctoResult<Option<MemberAssignment>> {
        match self.call(Request::GroupHeartbeat {
            group: group.to_string(),
            member: member.to_string(),
        })? {
            Response::GroupHeartbeat { assignment } => Ok(assignment),
            _ => Err(OctoError::Serde("bad heartbeat response".into())),
        }
    }

    fn group_leave(
        &self,
        group: &str,
        member: &str,
        counts: &HashMap<TopicName, u32>,
    ) -> OctoResult<()> {
        let counts: Vec<(String, u32)> =
            counts.iter().map(|(t, n)| (t.clone(), *n)).collect();
        self.unit(Request::GroupLeave {
            group: group.to_string(),
            member: member.to_string(),
            counts,
        })
    }

    fn offset_commit(
        &self,
        group: &str,
        generation: u64,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
    ) -> OctoResult<()> {
        self.unit(Request::OffsetCommit {
            group: group.to_string(),
            generation,
            topic: topic.to_string(),
            partition,
            offset,
        })
    }

    fn offset_committed(
        &self,
        group: &str,
        topic: &str,
        partition: PartitionId,
    ) -> OctoResult<Option<Offset>> {
        match self.call(Request::OffsetFetch {
            group: group.to_string(),
            topic: topic.to_string(),
            partition,
        })? {
            Response::OffsetFetch { offset } => Ok(offset),
            _ => Err(OctoError::Serde("bad offset-fetch response".into())),
        }
    }

    fn register_producer(&self, name: &str) -> OctoResult<ProducerIdentity> {
        match self.call(Request::RegisterPid { name: name.to_string() })? {
            Response::RegisterPid { id } => Ok(id),
            _ => Err(OctoError::Serde("bad register-pid response".into())),
        }
    }

    fn txn_begin(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.unit(Request::TxnBegin { name: name.to_string(), id })
    }

    fn txn_produce(
        &self,
        name: &str,
        id: ProducerIdentity,
        topic: &str,
        partition: PartitionId,
        events: Vec<Event>,
    ) -> OctoResult<ProduceReceipt> {
        match self.call(Request::TxnProduce {
            name: name.to_string(),
            id,
            topic: topic.to_string(),
            partition,
            events,
        })? {
            Response::Produce(r) => Ok(r),
            _ => Err(OctoError::Serde("bad txn-produce response".into())),
        }
    }

    fn txn_send_offsets(
        &self,
        name: &str,
        id: ProducerIdentity,
        offsets: Vec<TxnOffset>,
    ) -> OctoResult<()> {
        self.unit(Request::TxnOffsets { name: name.to_string(), id, offsets })
    }

    fn txn_commit(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.unit(Request::TxnCommit { name: name.to_string(), id })
    }

    fn txn_abort(&self, name: &str, id: ProducerIdentity) -> OctoResult<()> {
        self.unit(Request::TxnAbort { name: name.to_string(), id })
    }

    fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.metrics)
    }

    fn stage_metrics(&self) -> StageMetrics {
        self.inner.stage_metrics.clone()
    }

    fn span_sink(&self) -> Arc<SpanSink> {
        Arc::clone(&self.inner.spans)
    }
}
