//! Durability drills for the PR-10 storage stack: compressed batches
//! under power loss, and cold-tier hydration under reader contention.
//!
//! The contracts exercised here:
//!
//! 1. **Synced prefix survives compressed appends** — a power loss
//!    landing while LZ4 batch frames are in flight may tear the
//!    unsynced tail, but every record covered by the last fsync must
//!    come back intact, and recovery must leave the log appendable.
//! 2. **Single-flight hydration** — many threads fetching the same
//!    cold segment concurrently produce identical results and exactly
//!    one hydration per segment: the cold store is hit once, not once
//!    per reader.

use std::sync::Arc;

use bytes::Bytes;
use octopus_broker::log::PartitionLog;
use octopus_broker::store::PartitionStore;
use octopus_broker::tier::FsColdStore;
use octopus_broker::{
    Compression, FlushPolicy, Record, RecordBatch, SeekMode, StoreMetrics, StoreOptions, TempDir,
};
use octopus_types::{Event, Header, MetricsRegistry, Timestamp};

fn metrics() -> StoreMetrics {
    StoreMetrics::new(&MetricsRegistry::new())
}

fn compressed_opts() -> StoreOptions {
    StoreOptions {
        index_interval_bytes: 256,
        compression: Compression::Lz4,
        ..StoreOptions::default()
    }
}

/// Power loss mid-append with compression on: for a spread of entropy
/// seeds (each tears a different suffix of the unsynced bytes), the
/// synced prefix survives byte-for-byte, nothing torn is ever served,
/// and the recovered log accepts appends at the right offset.
#[test]
fn power_loss_during_compressed_appends_keeps_synced_prefix() {
    for entropy in [0u64, 1, 42, 0xDEAD_BEEF, 0x00C0_FFEE, u64::MAX] {
        let tmp = TempDir::new("octopus-data-durab");
        let dir = tmp.path().join("p");
        // Small segments so batches roll mid-run; OsManaged so the
        // tail is genuinely unsynced when the power goes.
        let (mut log, _) = PartitionLog::open_durable_with(
            1024,
            &dir,
            FlushPolicy::OsManaged,
            metrics(),
            compressed_opts(),
        )
        .unwrap();
        for i in 0..12u64 {
            let payload = format!("synced-{i}-{}", "x".repeat(40));
            log.append(&RecordBatch::new(vec![Event::from_bytes(payload.into_bytes())]), Timestamp::now())
                .unwrap();
        }
        log.sync_store().unwrap();
        let synced = log.end_offset();
        for i in 0..8u64 {
            let payload = format!("at-risk-{i}-{}", "y".repeat(40));
            log.append(&RecordBatch::new(vec![Event::from_bytes(payload.into_bytes())]), Timestamp::now())
                .unwrap();
        }
        log.power_loss(entropy).unwrap();
        log.recover().unwrap();

        assert!(
            log.end_offset() >= synced,
            "entropy {entropy:#x}: synced prefix torn ({} < {synced})",
            log.end_offset()
        );
        let survivors = log.read(0, 100).unwrap();
        assert!(survivors.iter().all(|r| r.verify()), "entropy {entropy:#x}: corrupt record served");
        for (i, r) in survivors.iter().take(synced as usize).enumerate() {
            assert_eq!(r.offset, i as u64);
            assert!(
                r.value.starts_with(format!("synced-{i}-").as_bytes()),
                "entropy {entropy:#x}: synced record {i} lost its payload"
            );
        }
        // offsets stay dense after the cut: whatever survived of the
        // at-risk run is a prefix, never a gap
        for (i, r) in survivors.iter().enumerate() {
            assert_eq!(r.offset, i as u64, "entropy {entropy:#x}: offset gap after recovery");
        }

        // recovered log accepts appends and a cold reopen agrees
        let end = log.end_offset();
        let got = log
            .append(&RecordBatch::new(vec![Event::from_bytes(&b"post-loss"[..])]), Timestamp::now())
            .unwrap();
        assert_eq!(got, end);
        log.sync_store().unwrap();
        drop(log);
        let (reopened, _) = PartitionLog::open_durable_with(
            1024,
            &dir,
            FlushPolicy::OsManaged,
            metrics(),
            compressed_opts(),
        )
        .unwrap();
        assert_eq!(reopened.end_offset(), end + 1);
        assert_eq!(&reopened.read(end, 1).unwrap()[0].value[..], b"post-loss");
    }
}

fn rec(offset: u64, value: &[u8]) -> Record {
    let mut r = Record {
        offset,
        append_time: Timestamp::from_millis(offset * 10),
        key: None,
        value: Bytes::copy_from_slice(value),
        headers: vec![Header { key: "h".into(), value: b"v".to_vec() }],
        producer_time: Timestamp::from_millis(offset * 10),
        crc: 0,
        eos: None,
    };
    r.crc = r.compute_crc();
    r
}

/// Eight threads race reads through two cold segments: everyone gets
/// the same records, and each segment is hydrated exactly once — the
/// per-segment lock makes hydration single-flight, not once-per-reader.
#[test]
fn concurrent_cold_fetches_hydrate_once() {
    let tmp = TempDir::new("octopus-data-durab");
    let cold = TempDir::new("octopus-cold-durab");
    let dir = tmp.path().join("p");
    let m = metrics();
    let opts = StoreOptions {
        cold: Some(Arc::new(FsColdStore::new(cold.path()))),
        compression: Compression::Lz4,
        ..StoreOptions::default()
    };
    let (mut store, _, _) =
        PartitionStore::open_with(&dir, FlushPolicy::PerBatch, m.clone(), opts).unwrap();
    for seg in 0..3u64 {
        let base = seg * 20;
        let batch: Vec<Record> = (0..20)
            .map(|i| rec(base + i, format!("cold-{}", base + i).repeat(6).as_bytes()))
            .collect();
        store.append_batch(&batch, base).unwrap();
    }
    store.commit_batch().unwrap();
    assert_eq!(store.offload_now().unwrap(), 2, "both sealed segments went cold");
    assert_eq!(m.tier_hydration_count(), 0);

    let expected = store.read_records(0, usize::MAX, SeekMode::LinearScan).unwrap();
    assert_eq!(expected.len(), 60);
    // LinearScan hydrated both segments; evict them again so the
    // threaded probe starts from a fully cold state.
    assert_eq!(store.offload_now().unwrap(), 2);
    let hydrations_before = m.tier_hydration_count();

    std::thread::scope(|scope| {
        let store = &store;
        let expected = &expected;
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let got = store.read_records(0, usize::MAX, SeekMode::Indexed).unwrap();
                    assert_eq!(&got, expected, "reader saw different records");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(
        m.tier_hydration_count() - hydrations_before,
        2,
        "hydration ran more than once per cold segment"
    );
    // the segments are hot now: another read hydrates nothing
    let after = m.tier_hydration_count();
    store.read_records(0, usize::MAX, SeekMode::Indexed).unwrap();
    assert_eq!(m.tier_hydration_count(), after);
}
