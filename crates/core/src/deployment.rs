//! The local deployment: every Octopus component wired together.
//!
//! Mirrors Fig. 2: users authenticate against the (Globus-Auth-like)
//! authorization server, interact with OWS to provision topics and
//! credentials, and their producers/consumers talk to the event fabric,
//! which enforces the ACLs OWS manages. Topic ownership lives in the
//! replicated coordination service; triggers run in the trigger runtime.

use std::path::PathBuf;
use std::sync::Arc;

use octopus_auth::{AccessToken, AclStore, AuthServer, IamService, Scope};
use octopus_broker::{Cluster, FlushPolicy};
use octopus_chaos::{execute_plan, ChaosTarget, FaultPlan, FaultTrace};
use octopus_ows::{FunctionRegistry, OwsConfig, OwsService, OWS_SCOPE};
use octopus_sdk::{
    Consumer, ConsumerConfig, LoginManager, OctopusClient, Producer, ProducerConfig, TokenStore,
};
use octopus_trigger::TriggerRuntime;
use octopus_types::{OctoResult, SpanSink, Uid};
use octopus_zoo::ZooService;

/// Builder for [`Octopus`].
pub struct OctopusBuilder {
    brokers: usize,
    zoo_replicas: usize,
    rate_limit: Option<(f64, f64)>,
    chaos: Option<FaultPlan>,
    spans: Option<Arc<SpanSink>>,
    data_dir: Option<PathBuf>,
    flush_policy: FlushPolicy,
}

impl OctopusBuilder {
    /// Number of fabric brokers (default 2 — the paper's baseline).
    pub fn brokers(mut self, n: usize) -> Self {
        self.brokers = n;
        self
    }

    /// Number of coordination-service replicas (default 3).
    pub fn zoo_replicas(mut self, n: usize) -> Self {
        self.zoo_replicas = n;
        self
    }

    /// Per-identity OWS rate limit (requests/sec, burst).
    pub fn rate_limit(mut self, per_sec: f64, burst: f64) -> Self {
        self.rate_limit = Some((per_sec, burst));
        self
    }

    /// Attach a chaos [`FaultPlan`] to the deployment. The plan is not
    /// executed at build time; call [`Octopus::run_chaos`] once the
    /// workload is running to inject it against the live components.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Attach a [`SpanSink`] so the live path records causal spans
    /// (produce → append → replicate → fetch → deliver). Without one
    /// the deployment runs with tracing disabled.
    pub fn spans(mut self, sink: Arc<SpanSink>) -> Self {
        self.spans = Some(sink);
        self
    }

    /// Persist the fabric's partition logs and committed offsets under
    /// `dir`. Relaunching over the same directory recovers every topic,
    /// record, and committed offset a previous deployment flushed.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// When durable appends are fsynced (default
    /// [`FlushPolicy::PerBatch`]); only meaningful with
    /// [`OctopusBuilder::data_dir`].
    pub fn flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.flush_policy = policy;
        self
    }

    /// Wire everything and return the running deployment.
    pub fn build(self) -> OctoResult<Octopus> {
        let auth = AuthServer::new();
        let iam = IamService::new();
        let acl = AclStore::new();
        let zoo = ZooService::new(self.zoo_replicas);
        let mut cluster_builder = Cluster::builder(self.brokers).acl(acl.clone()).zoo(zoo.clone());
        if let Some(sink) = self.spans {
            cluster_builder = cluster_builder.spans(sink);
        }
        if let Some(dir) = self.data_dir {
            cluster_builder = cluster_builder.data_dir(dir).flush_policy(self.flush_policy);
        }
        let cluster = cluster_builder.try_build()?;
        let triggers = TriggerRuntime::new(cluster.clone());
        let registry = FunctionRegistry::new();
        let ows = OwsService::new(
            auth.clone(),
            iam.clone(),
            acl.clone(),
            zoo.clone(),
            cluster.clone(),
            triggers.clone(),
            registry.clone(),
            OwsConfig { rate_limit: self.rate_limit },
        );
        // the SDK application is a registered OAuth client
        let sdk_client = auth.register_client("octopus-sdk", vec![]);
        Ok(Octopus {
            auth,
            iam,
            acl,
            zoo,
            cluster,
            triggers,
            registry,
            ows,
            sdk_client_id: sdk_client.id,
            chaos: self.chaos,
        })
    }
}

/// A fully wired local Octopus deployment.
pub struct Octopus {
    auth: AuthServer,
    iam: IamService,
    acl: AclStore,
    zoo: ZooService,
    cluster: Cluster,
    triggers: TriggerRuntime,
    registry: FunctionRegistry,
    ows: OwsService,
    sdk_client_id: Uid,
    chaos: Option<FaultPlan>,
}

impl Octopus {
    /// Launch with defaults: 2 brokers, 3 coordination replicas, a
    /// `uchicago.edu` and an `anl.gov` identity provider.
    pub fn launch() -> OctoResult<Octopus> {
        let octo = Octopus::builder().build()?;
        octo.auth.register_provider("uchicago.edu", "University of Chicago");
        octo.auth.register_provider("anl.gov", "Argonne National Laboratory");
        Ok(octo)
    }

    /// Start customizing a deployment.
    pub fn builder() -> OctopusBuilder {
        OctopusBuilder {
            brokers: 2,
            zoo_replicas: 3,
            rate_limit: None,
            chaos: None,
            spans: None,
            data_dir: None,
            flush_policy: FlushPolicy::PerBatch,
        }
    }

    /// The chaos plan attached at build time, if any.
    pub fn chaos_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_ref()
    }

    /// Execute the attached chaos plan against this deployment's live
    /// cluster and coordination service, aiming log-corruption faults
    /// at `topic`. Returns `None` when no plan was attached.
    pub fn run_chaos(&self, topic: &str) -> Option<FaultTrace> {
        let plan = self.chaos.as_ref()?;
        let target = ChaosTarget {
            cluster: self.cluster.clone(),
            zoo: Some(self.zoo.clone()),
            topic: topic.to_string(),
        };
        Some(execute_plan(&target, plan))
    }

    /// Register an identity provider (campus login).
    pub fn register_provider(&self, domain: &str, display_name: &str) {
        self.auth.register_provider(domain, display_name);
    }

    /// Register a user under an existing provider.
    pub fn register_user(&self, username: &str, password: &str) -> OctoResult<Uid> {
        self.auth.register_user(username, password)
    }

    /// Authenticate and return a [`UserSession`] with cached tokens.
    pub fn login(&self, username: &str, password: &str) -> OctoResult<UserSession> {
        let store = Arc::new(TokenStore::in_memory());
        let lm = LoginManager::new(self.auth.clone(), self.sdk_client_id, store);
        let token = lm.login(username, password, vec![Scope::new(OWS_SCOPE)])?;
        let (_, info) = (self.auth.introspect(&token).0, self.auth.introspect(&token).1);
        let identity = info.expect("fresh token").identity;
        Ok(UserSession {
            ows: self.ows.clone(),
            cluster: self.cluster.clone(),
            login: lm,
            token,
            identity,
        })
    }

    /// The event fabric (direct access for infrastructure components).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The trigger runtime.
    pub fn triggers(&self) -> &TriggerRuntime {
        &self.triggers
    }

    /// The trigger-function registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The web service (route-level access).
    pub fn ows(&self) -> &OwsService {
        &self.ows
    }

    /// The coordination service.
    pub fn zoo(&self) -> &ZooService {
        &self.zoo
    }

    /// The ACL store.
    pub fn acl(&self) -> &AclStore {
        &self.acl
    }

    /// The IAM service.
    pub fn iam(&self) -> &IamService {
        &self.iam
    }

    /// The authorization server.
    pub fn auth(&self) -> &AuthServer {
        &self.auth
    }
}

/// An authenticated user's handle on the deployment.
pub struct UserSession {
    ows: OwsService,
    cluster: Cluster,
    login: LoginManager,
    token: AccessToken,
    identity: Uid,
}

impl UserSession {
    /// The authenticated identity.
    pub fn identity(&self) -> Uid {
        self.identity
    }

    /// The current bearer token.
    pub fn token(&self) -> &AccessToken {
        &self.token
    }

    /// A typed OWS client bound to this session's token.
    pub fn client(&self) -> OctopusClient {
        OctopusClient::new(self.ows.clone(), self.token.clone())
    }

    /// A producer authorized as this identity (broker-side ACL checks
    /// apply).
    pub fn producer(&self) -> Producer {
        Producer::with_principal(
            self.cluster.clone(),
            ProducerConfig::default(),
            Some(self.identity),
        )
    }

    /// A producer with custom configuration.
    pub fn producer_with(&self, config: ProducerConfig) -> Producer {
        Producer::with_principal(self.cluster.clone(), config, Some(self.identity))
    }

    /// A consumer in `group`, authorized as this identity.
    pub fn consumer(&self, group: &str) -> Consumer {
        Consumer::with_principal(
            self.cluster.clone(),
            ConsumerConfig { group: group.into(), ..Default::default() },
            Some(self.identity),
        )
    }

    /// Refresh the session's token (normally automatic via the login
    /// manager).
    pub fn refresh(&mut self) -> OctoResult<()> {
        self.token = self.login.refresh()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_types::{Event, OctoError};

    fn deployment() -> Octopus {
        let octo = Octopus::launch().unwrap();
        octo.register_user("alice@uchicago.edu", "pw").unwrap();
        octo.register_user("bob@anl.gov", "pw").unwrap();
        octo
    }

    #[test]
    fn launch_and_login() {
        let octo = deployment();
        let session = octo.login("alice@uchicago.edu", "pw").unwrap();
        assert_ne!(session.identity(), Uid::NIL);
        assert!(octo.login("alice@uchicago.edu", "wrong").is_err());
        assert!(octo.login("nobody@uchicago.edu", "pw").is_err());
    }

    #[test]
    fn end_to_end_topic_publish_consume() {
        let octo = deployment();
        let session = octo.login("alice@uchicago.edu", "pw").unwrap();
        session.client().register_topic("t", serde_json::Value::Null).unwrap();
        let producer = session.producer();
        producer.send_sync("t", Event::from_bytes(&b"hello"[..])).unwrap();
        let mut consumer = session.consumer("g");
        consumer.subscribe(&["t"]).unwrap();
        let events = consumer.poll().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(&events[0].event.payload[..], b"hello");
    }

    #[test]
    fn acl_isolation_between_users() {
        let octo = deployment();
        let alice = octo.login("alice@uchicago.edu", "pw").unwrap();
        let bob = octo.login("bob@anl.gov", "pw").unwrap();
        alice.client().register_topic("alice-private", serde_json::Value::Null).unwrap();
        // bob cannot produce, consume, or even see the topic
        let bp = bob.producer();
        assert!(matches!(
            bp.send_sync("alice-private", Event::from_bytes(&b"x"[..])),
            Err(OctoError::Unauthorized(_))
        ));
        let mut bc = bob.consumer("bg");
        assert!(bc.subscribe(&["alice-private"]).is_err());
        assert!(bob.client().list_topics().unwrap().is_empty());
        // sharing via the OWS route makes it visible
        alice.client().grant("alice-private", bob.identity(), &["read", "describe"]).unwrap();
        assert_eq!(bob.client().list_topics().unwrap(), vec!["alice-private"]);
        let mut bc = bob.consumer("bg2");
        bc.subscribe(&["alice-private"]).unwrap();
    }

    #[test]
    fn topic_ownership_recorded_in_zoo() {
        let octo = deployment();
        let session = octo.login("alice@uchicago.edu", "pw").unwrap();
        session.client().register_topic("recorded", serde_json::Value::Null).unwrap();
        assert!(octo.zoo().exists("/octopus/owners/recorded").unwrap());
        assert!(octo.zoo().exists("/octopus/topics/recorded").unwrap());
    }

    #[test]
    fn session_refresh_rotates_token() {
        let octo = deployment();
        let mut session = octo.login("alice@uchicago.edu", "pw").unwrap();
        let old = session.token().clone();
        session.refresh().unwrap();
        assert_ne!(session.token(), &old);
        // new token still works
        session.client().register_topic("after-refresh", serde_json::Value::Null).unwrap();
    }

    #[test]
    fn builder_knobs() {
        let octo = Octopus::builder().brokers(4).zoo_replicas(1).build().unwrap();
        assert_eq!(octo.cluster().broker_count(), 4);
        assert_eq!(octo.zoo().replica_count(), 1);
    }
}
