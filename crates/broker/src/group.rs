//! Consumer groups: membership, generation-numbered rebalances, range
//! assignment, and committed offsets.
//!
//! "Each Lambda function is given its own MSK consumer group, meaning
//! that many instances of the Lambda function can retrieve events
//! without affecting other consumers of the topic" (§IV-D), and
//! "consumers periodically commit consuming offsets, which provides an
//! at-least-once delivery guarantee" (§IV-F). Both behaviours live here.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use octopus_types::{OctoError, OctoResult, Offset, PartitionId, TopicName};

use crate::lag::LagTracker;
use crate::store::{OffsetCheckpoint, OffsetEntry};

/// A member's view of its assignment after a (re)join.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberAssignment {
    /// Generation this assignment belongs to; commits from older
    /// generations are rejected (fencing).
    pub generation: u64,
    /// Partitions assigned to this member.
    pub partitions: Vec<(TopicName, PartitionId)>,
}

/// A member registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMember {
    /// Unique member id within the group.
    pub member_id: String,
    /// Topics the member subscribes to.
    pub topics: BTreeSet<TopicName>,
}

#[derive(Debug, Default)]
struct GroupState {
    generation: u64,
    members: BTreeMap<String, GroupMember>,
    assignments: HashMap<String, Vec<(TopicName, PartitionId)>>,
    offsets: HashMap<(TopicName, PartitionId), Offset>,
    /// Partition counts merged across every join/leave call. A caller
    /// only knows the counts of topics *it* subscribes to, so a
    /// rebalance driven by the caller's map alone would skip topics
    /// other members subscribe to — orphaning their partitions until
    /// those members happen to rejoin.
    known_counts: HashMap<TopicName, u32>,
}

impl GroupState {
    /// Fold a caller's partition counts into the group's merged view.
    /// Counts only grow (partition shrink is impossible broker-side),
    /// so `max` resolves stale callers racing a partition expansion.
    fn learn_counts(&mut self, partition_counts: &HashMap<TopicName, u32>) {
        for (topic, &count) in partition_counts {
            let slot = self.known_counts.entry(topic.clone()).or_insert(count);
            *slot = (*slot).max(count);
        }
    }

    /// Range assignment: for each topic, partitions are split into
    /// contiguous ranges over the sorted member list.
    fn rebalance(&mut self) {
        self.generation += 1;
        self.assignments.clear();
        if self.members.is_empty() {
            return;
        }
        // collect all subscribed topics
        let mut topics: BTreeSet<&TopicName> = BTreeSet::new();
        for m in self.members.values() {
            topics.extend(m.topics.iter());
        }
        for topic in topics {
            let Some(&count) = self.known_counts.get(topic) else { continue };
            let subscribers: Vec<&String> = self
                .members
                .values()
                .filter(|m| m.topics.contains(topic))
                .map(|m| &m.member_id)
                .collect();
            if subscribers.is_empty() {
                continue;
            }
            let n = subscribers.len() as u32;
            let per = count / n;
            let extra = count % n;
            let mut next = 0u32;
            for (i, member) in subscribers.iter().enumerate() {
                let take = per + u32::from((i as u32) < extra);
                let parts: Vec<(TopicName, PartitionId)> =
                    (next..next + take).map(|p| (topic.clone(), p)).collect();
                next += take;
                self.assignments.entry((*member).clone()).or_default().extend(parts);
            }
        }
    }
}

/// The group coordinator, shared by all clients of a cluster.
#[derive(Clone, Default)]
pub struct GroupCoordinator {
    groups: Arc<Mutex<HashMap<String, GroupState>>>,
    /// Lag tracker to notify on every commit, so the lag gauges narrow
    /// the moment a consumer makes progress (not on the next scrape).
    lag: Option<Arc<LagTracker>>,
    /// Durable checkpoint: committed offsets survive cold restarts.
    checkpoint: Option<Arc<OffsetCheckpoint>>,
}

impl GroupCoordinator {
    /// Empty coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A coordinator that reports every commit to `lag`.
    pub fn with_lag_tracker(lag: Arc<LagTracker>) -> Self {
        GroupCoordinator { groups: Arc::default(), lag: Some(lag), checkpoint: None }
    }

    /// Attach a durable offset checkpoint: every commit is counted and
    /// every `n`-th persists the full offset snapshot atomically.
    pub fn attach_checkpoint(&mut self, checkpoint: Arc<OffsetCheckpoint>) {
        self.checkpoint = Some(checkpoint);
    }

    /// Merge offsets restored from a checkpoint into the coordinator
    /// (cold-restart path). Restored offsets never rewind live progress:
    /// a higher in-memory commit wins.
    pub fn restore_offsets(&self, entries: Vec<OffsetEntry>) {
        let mut groups = self.groups.lock();
        for e in entries {
            let state = groups.entry(e.group).or_default();
            let slot = state.offsets.entry((e.topic, e.partition)).or_insert(e.offset);
            *slot = (*slot).max(e.offset);
        }
    }

    /// Snapshot every committed offset across every group.
    pub fn offsets_snapshot(&self) -> Vec<OffsetEntry> {
        let groups = self.groups.lock();
        Self::snapshot_locked(&groups)
    }

    fn snapshot_locked(groups: &HashMap<String, GroupState>) -> Vec<OffsetEntry> {
        let mut out = Vec::new();
        for (group, state) in groups.iter() {
            for ((topic, partition), offset) in &state.offsets {
                out.push(OffsetEntry {
                    group: group.clone(),
                    topic: topic.clone(),
                    partition: *partition,
                    offset: *offset,
                });
            }
        }
        out
    }

    /// Persist the current offsets immediately (graceful shutdown).
    pub fn checkpoint_now(&self) -> OctoResult<()> {
        let Some(ckpt) = &self.checkpoint else { return Ok(()) };
        ckpt.write_now(&self.offsets_snapshot())
    }

    /// Join (or re-join) a group, triggering a rebalance. Returns this
    /// member's assignment for the new generation.
    pub fn join(
        &self,
        group: &str,
        member_id: &str,
        topics: Vec<TopicName>,
        partition_counts: &HashMap<TopicName, u32>,
    ) -> MemberAssignment {
        let mut groups = self.groups.lock();
        let state = groups.entry(group.to_string()).or_default();
        state.members.insert(
            member_id.to_string(),
            GroupMember { member_id: member_id.to_string(), topics: topics.into_iter().collect() },
        );
        state.learn_counts(partition_counts);
        state.rebalance();
        MemberAssignment {
            generation: state.generation,
            partitions: state.assignments.get(member_id).cloned().unwrap_or_default(),
        }
    }

    /// Leave a group, triggering a rebalance for the remaining members.
    pub fn leave(
        &self,
        group: &str,
        member_id: &str,
        partition_counts: &HashMap<TopicName, u32>,
    ) {
        let mut groups = self.groups.lock();
        if let Some(state) = groups.get_mut(group) {
            state.members.remove(member_id);
            state.learn_counts(partition_counts);
            state.rebalance();
        }
    }

    /// The current generation of a group (0 if it has never formed).
    pub fn generation(&self, group: &str) -> u64 {
        self.groups.lock().get(group).map(|s| s.generation).unwrap_or(0)
    }

    /// The current assignment of a member (after someone else's join may
    /// have rebalanced it away).
    pub fn assignment_of(&self, group: &str, member_id: &str) -> Option<MemberAssignment> {
        let groups = self.groups.lock();
        let state = groups.get(group)?;
        state.members.contains_key(member_id).then(|| MemberAssignment {
            generation: state.generation,
            partitions: state.assignments.get(member_id).cloned().unwrap_or_default(),
        })
    }

    /// Number of members in a group.
    pub fn member_count(&self, group: &str) -> usize {
        self.groups.lock().get(group).map(|s| s.members.len()).unwrap_or(0)
    }

    /// Commit an offset with generation fencing: commits from a stale
    /// generation are rejected so a zombie consumer cannot clobber
    /// progress after a rebalance.
    pub fn commit(
        &self,
        group: &str,
        generation: u64,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
    ) -> OctoResult<()> {
        let mut groups = self.groups.lock();
        let state = groups
            .get_mut(group)
            .ok_or_else(|| OctoError::NotFound(format!("group {group}")))?;
        if generation != state.generation {
            return Err(OctoError::RebalanceInProgress(format!(
                "commit from generation {generation}, current {}",
                state.generation
            )));
        }
        // Fenced commits are monotonic: redelivered batches must not
        // rewind group progress. Offset-reset tooling that genuinely
        // wants to move backwards uses `commit_unchecked`.
        let slot = state.offsets.entry((topic.to_string(), partition)).or_insert(offset);
        *slot = (*slot).max(offset);
        let committed = *slot;
        let snapshot = self.checkpoint.as_ref().map(|_| Self::snapshot_locked(&groups));
        drop(groups); // never notify observers under the group lock
        if let (Some(ckpt), Some(snapshot)) = (&self.checkpoint, snapshot) {
            ckpt.note_commit(&snapshot);
        }
        if let Some(lag) = &self.lag {
            lag.on_commit(group, topic, partition, committed, None);
        }
        Ok(())
    }

    /// Commit without generation fencing (standalone consumers that
    /// manage their own partitions, and triggers tracking lag).
    pub fn commit_unchecked(&self, group: &str, topic: &str, partition: PartitionId, offset: Offset) {
        let mut groups = self.groups.lock();
        let state = groups.entry(group.to_string()).or_default();
        state.offsets.insert((topic.to_string(), partition), offset);
        let snapshot = self.checkpoint.as_ref().map(|_| Self::snapshot_locked(&groups));
        drop(groups);
        if let (Some(ckpt), Some(snapshot)) = (&self.checkpoint, snapshot) {
            ckpt.note_commit(&snapshot);
        }
        if let Some(lag) = &self.lag {
            lag.on_commit(group, topic, partition, offset, None);
        }
    }

    /// The committed offset of a partition, if any.
    pub fn committed(&self, group: &str, topic: &str, partition: PartitionId) -> Option<Offset> {
        self.groups
            .lock()
            .get(group)?
            .offsets
            .get(&(topic.to_string(), partition))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u32)]) -> HashMap<TopicName, u32> {
        pairs.iter().map(|(t, n)| (t.to_string(), *n)).collect()
    }

    #[test]
    fn single_member_gets_everything() {
        let gc = GroupCoordinator::new();
        let pc = counts(&[("t", 4)]);
        let a = gc.join("g", "m1", vec!["t".into()], &pc);
        assert_eq!(a.generation, 1);
        assert_eq!(a.partitions.len(), 4);
    }

    #[test]
    fn partitions_partition_across_members() {
        let gc = GroupCoordinator::new();
        let pc = counts(&[("t", 5)]);
        gc.join("g", "m1", vec!["t".into()], &pc);
        gc.join("g", "m2", vec!["t".into()], &pc);
        let a1 = gc.assignment_of("g", "m1").unwrap();
        let a2 = gc.assignment_of("g", "m2").unwrap();
        // disjoint and complete
        let mut all: Vec<u32> = a1
            .partitions
            .iter()
            .chain(a2.partitions.iter())
            .map(|(_, p)| *p)
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // uneven split: 3 + 2
        assert_eq!(a1.partitions.len().max(a2.partitions.len()), 3);
        assert_eq!(a1.partitions.len().min(a2.partitions.len()), 2);
    }

    #[test]
    fn join_bumps_generation_and_invalidates_old_commits() {
        let gc = GroupCoordinator::new();
        let pc = counts(&[("t", 2)]);
        let a1 = gc.join("g", "m1", vec!["t".into()], &pc);
        gc.commit("g", a1.generation, "t", 0, 5).unwrap();
        // second member joins: generation bumps
        gc.join("g", "m2", vec!["t".into()], &pc);
        let err = gc.commit("g", a1.generation, "t", 0, 9).unwrap_err();
        assert!(matches!(err, OctoError::RebalanceInProgress(_)));
        // committed offset from the valid generation survives
        assert_eq!(gc.committed("g", "t", 0), Some(5));
    }

    #[test]
    fn leave_rebalances_remaining() {
        let gc = GroupCoordinator::new();
        let pc = counts(&[("t", 4)]);
        gc.join("g", "m1", vec!["t".into()], &pc);
        gc.join("g", "m2", vec!["t".into()], &pc);
        assert_eq!(gc.member_count("g"), 2);
        gc.leave("g", "m1", &pc);
        assert_eq!(gc.member_count("g"), 1);
        let a2 = gc.assignment_of("g", "m2").unwrap();
        assert_eq!(a2.partitions.len(), 4, "survivor owns all partitions");
        assert!(gc.assignment_of("g", "m1").is_none());
    }

    #[test]
    fn multi_topic_subscription() {
        let gc = GroupCoordinator::new();
        let pc = counts(&[("a", 2), ("b", 2)]);
        gc.join("g", "m1", vec!["a".into(), "b".into()], &pc);
        gc.join("g", "m2", vec!["b".into()], &pc);
        let a1 = gc.assignment_of("g", "m1").unwrap();
        let a2 = gc.assignment_of("g", "m2").unwrap();
        // m1 is the only subscriber of `a`
        assert_eq!(a1.partitions.iter().filter(|(t, _)| t == "a").count(), 2);
        // `b` is split
        assert_eq!(a1.partitions.iter().filter(|(t, _)| t == "b").count(), 1);
        assert_eq!(a2.partitions.iter().filter(|(t, _)| t == "b").count(), 1);
    }

    #[test]
    fn independent_groups_do_not_interfere() {
        let gc = GroupCoordinator::new();
        let pc = counts(&[("t", 2)]);
        let a = gc.join("g1", "m", vec!["t".into()], &pc);
        let b = gc.join("g2", "m", vec!["t".into()], &pc);
        assert_eq!(a.partitions.len(), 2);
        assert_eq!(b.partitions.len(), 2);
        gc.commit("g1", 1, "t", 0, 10).unwrap();
        assert_eq!(gc.committed("g1", "t", 0), Some(10));
        assert_eq!(gc.committed("g2", "t", 0), None);
    }

    #[test]
    fn more_members_than_partitions_leaves_some_idle() {
        let gc = GroupCoordinator::new();
        let pc = counts(&[("t", 2)]);
        for m in ["m1", "m2", "m3"] {
            gc.join("g", m, vec!["t".into()], &pc);
        }
        let sizes: Vec<usize> = ["m1", "m2", "m3"]
            .iter()
            .map(|m| gc.assignment_of("g", m).unwrap().partitions.len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 2);
        assert!(sizes.contains(&0), "one member is idle");
    }

    /// Every (topic, partition) the group subscribes to must be owned by
    /// exactly one member — no orphans, no double-assignment.
    fn assert_complete_and_disjoint(
        gc: &GroupCoordinator,
        group: &str,
        members: &[&str],
        expected: &[(&str, u32)],
    ) {
        let mut owned: HashMap<(TopicName, PartitionId), Vec<String>> = HashMap::new();
        for m in members {
            if let Some(a) = gc.assignment_of(group, m) {
                for part in a.partitions {
                    owned.entry(part).or_default().push((*m).to_string());
                }
            }
        }
        for (topic, count) in expected {
            for p in 0..*count {
                let owners = owned.get(&((*topic).to_string(), p));
                assert!(
                    owners.is_some(),
                    "{topic}/{p} is orphaned (members: {members:?})"
                );
                assert_eq!(
                    owners.unwrap().len(),
                    1,
                    "{topic}/{p} double-assigned to {:?}",
                    owners.unwrap()
                );
            }
        }
    }

    #[test]
    fn churn_never_orphans_or_double_assigns() {
        // Regression: rebalance used to consult only the *calling*
        // member's partition counts. A member subscribed to topic "a"
        // lost all its partitions the moment a member subscribed only
        // to "b" joined (the rebalance skipped "a" — counts unknown),
        // orphaning "a" until its subscriber happened to rejoin.
        let gc = GroupCoordinator::new();
        let a_counts = counts(&[("a", 3)]);
        let b_counts = counts(&[("b", 5)]);

        gc.join("g", "alice", vec!["a".into()], &a_counts);
        // bob joins knowing nothing about topic "a"
        gc.join("g", "bob", vec!["b".into()], &b_counts);
        assert_complete_and_disjoint(&gc, "g", &["alice", "bob"], &[("a", 3), ("b", 5)]);

        // heavier churn: joiners/leavers with disjoint topic knowledge
        let ab_counts = counts(&[("a", 3), ("b", 5)]);
        gc.join("g", "carol", vec!["a".into(), "b".into()], &ab_counts);
        assert_complete_and_disjoint(&gc, "g", &["alice", "bob", "carol"], &[("a", 3), ("b", 5)]);
        gc.leave("g", "alice", &a_counts);
        assert_complete_and_disjoint(&gc, "g", &["bob", "carol"], &[("a", 3), ("b", 5)]);
        gc.leave("g", "bob", &b_counts);
        // carol is the sole survivor; both topics must be fully hers
        assert_complete_and_disjoint(&gc, "g", &["carol"], &[("a", 3), ("b", 5)]);
        let c = gc.assignment_of("g", "carol").unwrap();
        assert_eq!(c.partitions.len(), 8);
    }

    #[test]
    fn partition_growth_is_learned_across_members() {
        let gc = GroupCoordinator::new();
        gc.join("g", "m1", vec!["t".into()], &counts(&[("t", 2)]));
        // m2 saw the topic after a partition expansion to 6
        gc.join("g", "m2", vec!["t".into()], &counts(&[("t", 6)]));
        assert_complete_and_disjoint(&gc, "g", &["m1", "m2"], &[("t", 6)]);
        // a stale caller (still thinks 2) must not shrink the view
        gc.leave("g", "m2", &counts(&[("t", 2)]));
        assert_complete_and_disjoint(&gc, "g", &["m1"], &[("t", 6)]);
    }

    #[test]
    fn commit_unchecked_bypasses_fencing() {
        let gc = GroupCoordinator::new();
        gc.commit_unchecked("standalone", "t", 0, 42);
        assert_eq!(gc.committed("standalone", "t", 0), Some(42));
        assert!(gc.commit("nogroup", 1, "t", 0, 1).is_err());
    }
}
