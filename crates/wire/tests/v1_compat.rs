//! Wire-compat regression: frames produced by a v1 peer — built
//! before the `FLAG_TRACE` payload-prefix extension existed — must
//! decode bit-for-bit identically against the new codec, and the
//! extension itself must be invisible to the parts of the frame a v1
//! reader understands (header layout, version byte, CRC coverage).

use octopus_wire::frame::{
    decode_frame, decode_header, Frame, WireTrace, DEFAULT_MAX_PAYLOAD, FLAG_TRACE, HEADER_LEN,
    TRACE_EXT_LEN, VERSION,
};
use octopus_wire::{ApiKey, Request};

/// Hand-roll the exact bytes a pre-extension encoder emitted: the
/// fixed 22-byte header with flags 0 followed by the raw payload.
/// Deliberately not built through `Frame::encode` so the test keeps
/// failing if the header layout ever drifts.
fn v1_frame_bytes(api_key: u16, correlation_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&0x434Fu16.to_le_bytes()); // "OC"
    out.push(1); // version
    out.push(0); // flags: no error, no trace — the v1 world
    out.extend_from_slice(&api_key.to_le_bytes());
    out.extend_from_slice(&correlation_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&octopus_broker::crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn v1_frame_decodes_against_the_new_codec() {
    // a real v1 request payload, not just opaque bytes
    let req = Request::Metadata { topic: Some("sdl.actions".to_string()) };
    let payload = req.encode();
    let bytes = v1_frame_bytes(ApiKey::Metadata as u16, 77, &payload);

    let (frame, used) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("v1 frame decodes");
    assert_eq!(used, bytes.len());
    assert_eq!(frame.api_key, ApiKey::Metadata as u16);
    assert_eq!(frame.correlation_id, 77);
    // no trace extension: body is the whole payload, verbatim
    assert_eq!(frame.trace().unwrap(), None);
    assert_eq!(frame.body().unwrap(), &payload[..]);
    let decoded = Request::decode(ApiKey::Metadata, frame.body().unwrap()).unwrap();
    assert_eq!(decoded, req);
}

#[test]
fn v1_and_new_encoders_agree_on_untraced_frames() {
    // the new encoder, asked for an untraced frame, must emit exactly
    // the bytes the v1 encoder did — v1 receivers keep working
    let payload = b"payload".to_vec();
    let new = Frame::new(3, 123, payload.clone()).encode();
    let old = v1_frame_bytes(3, 123, &payload);
    assert_eq!(new, old);
}

#[test]
fn traced_frame_keeps_the_v1_header_layout() {
    let trace = WireTrace { trace_id: 40, parent_span_id: 641, sampled: true };
    let inner = b"body".to_vec();
    let bytes = Frame::traced(1, 9, trace, inner.clone()).encode();

    // version byte unchanged: the extension is a flag, not a version
    let header = decode_header(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(header.version, VERSION);
    assert_eq!(header.flags & FLAG_TRACE, FLAG_TRACE);
    assert_eq!(header.payload_len as usize, TRACE_EXT_LEN + inner.len());

    // full round trip separates prefix from body again
    let (frame, _) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(frame.trace().unwrap(), Some(trace));
    assert_eq!(frame.body().unwrap(), &inner[..]);
}

#[test]
fn trace_prefix_is_covered_by_the_frame_crc() {
    let trace = WireTrace { trace_id: 8, parent_span_id: 0, sampled: false };
    let mut bytes = Frame::traced(1, 1, trace, b"x".to_vec()).encode();
    // flip one bit inside the trace prefix (first payload byte)
    bytes[HEADER_LEN] ^= 0x01;
    assert!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).is_err(),
        "corrupted trace prefix must fail the CRC, not decode"
    );
}
