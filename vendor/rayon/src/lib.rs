//! Hermetic stand-in for `rayon`.
//!
//! Exposes `par_iter`/`into_par_iter` with `map`/`filter`/`reduce`/
//! `for_each`/`sum`/`collect`, all executing **sequentially** on the
//! calling thread. The workspace uses rayon only to fan out
//! independent simulation runs, so sequential execution changes
//! wall-clock time, never results.

/// Common traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// A "parallel" iterator — a thin wrapper over a standard iterator.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<F, U>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> U,
    {
        ParIter { inner: self.inner.map(f) }
    }

    /// Keep items satisfying `pred`.
    pub fn filter<F>(self, pred: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter { inner: self.inner.filter(pred) }
    }

    /// Fold with an identity constructor, rayon-style.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    /// Sum the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }
}

/// Owned conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::IntoIter> {
        ParIter { inner: self.into_iter() }
    }
}

/// By-reference conversion (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a reference).
    type Item: 'a;
    /// Borrowing conversion into a [`ParIter`].
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_collect() {
        let xs = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let max = xs.par_iter().map(|&x| x).reduce(|| 0, |a, b| a.max(b));
        assert_eq!(max, 4);
        let total: u64 = vec![1u64, 2, 3].into_par_iter().sum();
        assert_eq!(total, 6);
    }
}
