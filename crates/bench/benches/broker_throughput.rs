//! Criterion benches of the *real* threaded broker (not the DES model):
//! produce/consume throughput vs event size, acks level, partition
//! count, and broker count — verifying that the in-process fabric shows
//! the same orderings Table III reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use octopus_broker::{AckLevel, Cluster, RecordBatch, TopicConfig};
use octopus_types::Event;

fn batch_of(n: usize, size: usize) -> RecordBatch {
    RecordBatch::new((0..n).map(|_| Event::from_bytes(vec![0u8; size])).collect())
}

fn cluster_with(brokers: usize, partitions: u32, rep: u32) -> Cluster {
    let c = Cluster::new(brokers);
    c.create_topic(
        "bench",
        TopicConfig::default().with_partitions(partitions).with_replication(rep),
    )
    .expect("topic");
    c
}

/// Table III rows 1/2/5: event size sweep (batched produce, acks=0).
fn produce_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("produce_by_size");
    for size in [32usize, 1024, 4096] {
        let cluster = cluster_with(2, 2, 2);
        let batch = batch_of(100, size);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut p = 0u32;
            b.iter(|| {
                p = (p + 1) % 2;
                cluster.produce_batch("bench", p, batch.clone(), AckLevel::None).unwrap()
            });
        });
    }
    group.finish();
}

/// Table III rows 2/3/4: acks sweep.
fn produce_by_acks(c: &mut Criterion) {
    let mut group = c.benchmark_group("produce_by_acks");
    for (name, acks) in [("acks0", AckLevel::None), ("acks1", AckLevel::Leader), ("acksall", AckLevel::All)] {
        let cluster = cluster_with(2, 2, 2);
        let batch = batch_of(100, 1024);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(name), &acks, |b, &acks| {
            b.iter(|| cluster.produce_batch("bench", 0, batch.clone(), acks).unwrap());
        });
    }
    group.finish();
}

/// Table III rows 6-8: partition/broker scaling under contention
/// (4 producer threads).
fn produce_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("produce_scaling");
    for (name, brokers, partitions) in
        [("2b2p", 2usize, 2u32), ("2b4p", 2, 4), ("4b4p", 4, 4)]
    {
        let cluster = cluster_with(brokers, partitions, 2);
        group.throughput(Throughput::Elements(400));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..4u32 {
                        let cluster = cluster.clone();
                        let batch = batch_of(100, 1024);
                        s.spawn(move || {
                            cluster
                                .produce_batch(
                                    "bench",
                                    t % partitions,
                                    batch,
                                    AckLevel::Leader,
                                )
                                .unwrap();
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

/// The read path: fetch throughput from a prefilled partition.
fn consume_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("consume_fetch");
    for size in [32usize, 1024] {
        let cluster = cluster_with(2, 1, 2);
        for _ in 0..100 {
            cluster.produce_batch("bench", 0, batch_of(100, size), AckLevel::Leader).unwrap();
        }
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut offset = 0u64;
            b.iter(|| {
                let recs = cluster.fetch("bench", 0, offset, 1000).unwrap();
                offset = recs.last().map(|r| r.offset + 1).unwrap_or(0) % 9000;
                recs.len()
            });
        });
    }
    group.finish();
}

/// Ablation: client-side batching is the throughput lever (DESIGN.md §4.2).
fn produce_batching_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("produce_batching_ablation");
    for batch_size in [1usize, 10, 100, 1000] {
        let cluster = cluster_with(2, 2, 2);
        let batch = batch_of(batch_size, 1024);
        group.throughput(Throughput::Elements(batch_size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch_size), &batch_size, |b, _| {
            b.iter(|| cluster.produce_batch("bench", 0, batch.clone(), AckLevel::Leader).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    produce_by_size,
    produce_by_acks,
    produce_scaling,
    consume_fetch,
    produce_batching_ablation
);
criterion_main!(benches);
